//! The client-session finite state machine.
//!
//! Each replica runs one client [`Session`] per peer it syncs *to*
//! (the responder side is stateless — see [`crate::net::replica`]).
//! The FSM follows the framed-protocol idiom of PPP's LCP/IPCP control
//! machines: explicit states, an explicit message per transition, and
//! timeouts that retransmit a bounded number of times before giving up.
//!
//! ```text
//!          connect()            ConnectAccept          NegotiateAccept
//! Closed ────────────► Connecting ─────────► Negotiating ─────────► Established
//!    ▲                     │ timeout ×N           │ timeout ×N            │
//!    │◄────────────────────┴──────────────────────┘                close()│
//!    │                                 CloseAck │ timeout ×N              ▼
//!    └──────────────────────────────────────────┴──────────────────── Closing
//! ```
//!
//! Every *caller-driven* transition ([`Session::connect`],
//! [`Session::close`]) returns `Result<_, NetError>` and refuses states
//! it is invalid in. Peer messages are matched against the state:
//! the expected answer advances the FSM; a duplicate or stale message
//! (the transport redelivers and reorders by design) is tolerated and
//! reported as [`SessionEvent::Ignored`] rather than an error; an
//! explicit protocol refusal ([`Message::NegotiateReject`]) surfaces as
//! [`NetError::UnsupportedVersion`].
//!
//! Time is virtual: the caller passes the transport tick into every
//! operation, and [`Session::poll`] answers "retransmit this", "keep
//! waiting" or "give up" — a handshake timeout closes the session (the
//! replica layer reconnects on the next sync round), a teardown timeout
//! force-closes it (best-effort close, the peer holds no state anyway).

use super::frame::{Message, NetError, PROTOCOL_VERSION};

/// The client FSM states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionState {
    /// No session. The only state a connect may start from, and the
    /// only terminal state a quiesced replica set may leave behind.
    Closed,
    /// `ConnectRequest` sent, waiting for `ConnectAccept`.
    Connecting,
    /// `NegotiateRequest` sent, waiting for `NegotiateAccept`.
    Negotiating,
    /// Handshake complete: digest offers may flow.
    Established,
    /// `CloseRequest` sent, waiting for `CloseAck`.
    Closing,
}

impl SessionState {
    /// The state's name, for errors and reports.
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Closed => "Closed",
            SessionState::Connecting => "Connecting",
            SessionState::Negotiating => "Negotiating",
            SessionState::Established => "Established",
            SessionState::Closing => "Closing",
        }
    }
}

/// Retransmission policy, in virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Ticks to wait for the expected answer before retransmitting.
    pub timeout_ticks: u64,
    /// Retransmissions before the session gives up on the current
    /// exchange.
    pub max_retransmits: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            timeout_ticks: 8,
            max_retransmits: 5,
        }
    }
}

/// What a peer message did to the session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// The message advanced the FSM and `reply` must be sent.
    Advanced {
        /// The message to send to the peer.
        reply: Message,
    },
    /// The handshake completed: the session is `Established`.
    Established,
    /// Teardown completed: the session is `Closed`.
    Closed,
    /// A duplicate or stale message; nothing changed.
    Ignored,
}

/// What [`Session::poll`] decided at the current tick.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionPoll {
    /// Nothing due: keep waiting (or nothing pending at all).
    Idle,
    /// The pending message timed out within budget — resend this.
    Retransmit(Message),
    /// The retransmit budget is exhausted; the session closed itself.
    /// Handshake timeouts mean the peer is unreachable (reconnect on a
    /// later round); a teardown timeout is a successful best-effort
    /// close.
    TimedOut {
        /// The state the session gave up in.
        state: SessionState,
    },
}

/// One directed client session to a peer replica.
#[derive(Debug, Clone)]
pub struct Session {
    peer: u32,
    state: SessionState,
    config: SessionConfig,
    pending: Option<Message>,
    deadline: Option<u64>,
    retransmits_left: u32,
    total_retransmits: u64,
    resets: u64,
}

impl Session {
    /// A closed session to `peer`.
    pub fn new(peer: u32, config: SessionConfig) -> Self {
        Self {
            peer,
            state: SessionState::Closed,
            config,
            pending: None,
            deadline: None,
            retransmits_left: 0,
            total_retransmits: 0,
            resets: 0,
        }
    }

    /// The peer this session talks to.
    pub fn peer(&self) -> u32 {
        self.peer
    }

    /// The current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Retransmissions performed over the session's lifetime.
    pub fn total_retransmits(&self) -> u64 {
        self.total_retransmits
    }

    /// Times the session gave up and closed itself (handshake timeouts).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// True in the states a quiesced replica set may leave a session in.
    pub fn is_settled(&self) -> bool {
        matches!(self.state, SessionState::Closed | SessionState::Established)
    }

    fn arm(&mut self, now: u64, message: Message) -> Message {
        self.pending = Some(message.clone());
        self.deadline = Some(now + self.config.timeout_ticks);
        self.retransmits_left = self.config.max_retransmits;
        message
    }

    fn disarm(&mut self) {
        self.pending = None;
        self.deadline = None;
    }

    /// Start the handshake. Only valid from `Closed`; returns the
    /// `ConnectRequest` to send.
    pub fn connect(&mut self, now: u64) -> Result<Message, NetError> {
        if self.state != SessionState::Closed {
            return Err(NetError::InvalidTransition {
                state: self.state.name(),
                event: "connect",
            });
        }
        self.state = SessionState::Connecting;
        Ok(self.arm(now, Message::ConnectRequest))
    }

    /// Start teardown. Valid from any open state (an unfinished
    /// handshake may be abandoned); returns the `CloseRequest` to send.
    pub fn close(&mut self, now: u64) -> Result<Message, NetError> {
        match self.state {
            SessionState::Closed | SessionState::Closing => Err(NetError::InvalidTransition {
                state: self.state.name(),
                event: "close",
            }),
            SessionState::Connecting | SessionState::Negotiating | SessionState::Established => {
                self.state = SessionState::Closing;
                Ok(self.arm(now, Message::CloseRequest))
            }
        }
    }

    /// Feed a peer message into the FSM at virtual tick `now`.
    ///
    /// The expected answer for the current state advances the machine;
    /// anything else — duplicates from the transport, answers to an
    /// exchange the session already abandoned — is [`SessionEvent::Ignored`].
    /// A `NegotiateReject` is the one message that is an *error*: the
    /// peer explicitly refused the protocol version, so retrying cannot
    /// help.
    pub fn on_message(&mut self, message: &Message, now: u64) -> Result<SessionEvent, NetError> {
        match (self.state, message) {
            (SessionState::Connecting, Message::ConnectAccept) => {
                self.state = SessionState::Negotiating;
                let reply = self.arm(
                    now,
                    Message::NegotiateRequest {
                        version: PROTOCOL_VERSION,
                    },
                );
                Ok(SessionEvent::Advanced { reply })
            }
            (SessionState::Negotiating, Message::NegotiateAccept { version }) => {
                if *version != PROTOCOL_VERSION {
                    // An accept for a version we never proposed is a
                    // protocol violation, not a negotiation outcome.
                    return Err(NetError::Malformed(format!(
                        "NegotiateAccept for version {version}, proposed {PROTOCOL_VERSION}"
                    )));
                }
                self.state = SessionState::Established;
                self.disarm();
                Ok(SessionEvent::Established)
            }
            (SessionState::Negotiating, Message::NegotiateReject { supported }) => {
                self.state = SessionState::Closed;
                self.disarm();
                Err(NetError::UnsupportedVersion {
                    version: PROTOCOL_VERSION,
                    supported: *supported,
                })
            }
            (SessionState::Closing, Message::CloseAck) => {
                self.state = SessionState::Closed;
                self.disarm();
                Ok(SessionEvent::Closed)
            }
            _ => Ok(SessionEvent::Ignored),
        }
    }

    /// Check the retransmission timer at virtual tick `now`.
    pub fn poll(&mut self, now: u64) -> SessionPoll {
        let Some(deadline) = self.deadline else {
            return SessionPoll::Idle;
        };
        if now < deadline {
            return SessionPoll::Idle;
        }
        if self.retransmits_left > 0 {
            self.retransmits_left -= 1;
            self.total_retransmits += 1;
            self.deadline = Some(now + self.config.timeout_ticks);
            return SessionPoll::Retransmit(
                self.pending.clone().expect("armed deadline has a message"),
            );
        }
        // Budget exhausted: the session gives up. Teardown timeouts are
        // a successful best-effort close (the responder holds no state);
        // handshake timeouts are a reset the replica layer may retry.
        let state = self.state;
        if state != SessionState::Closing {
            self.resets += 1;
        }
        self.state = SessionState::Closed;
        self.disarm();
        SessionPoll::TimedOut { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SessionConfig {
        SessionConfig {
            timeout_ticks: 2,
            max_retransmits: 1,
        }
    }

    #[test]
    fn happy_path_walks_every_state() {
        let mut s = Session::new(1, SessionConfig::default());
        assert_eq!(s.state(), SessionState::Closed);
        assert!(s.is_settled());

        assert_eq!(s.connect(0).unwrap(), Message::ConnectRequest);
        assert_eq!(s.state(), SessionState::Connecting);
        assert!(!s.is_settled());

        let event = s.on_message(&Message::ConnectAccept, 1).unwrap();
        assert_eq!(
            event,
            SessionEvent::Advanced {
                reply: Message::NegotiateRequest {
                    version: PROTOCOL_VERSION,
                },
            }
        );
        assert_eq!(s.state(), SessionState::Negotiating);

        let event = s
            .on_message(
                &Message::NegotiateAccept {
                    version: PROTOCOL_VERSION,
                },
                2,
            )
            .unwrap();
        assert_eq!(event, SessionEvent::Established);
        assert_eq!(s.state(), SessionState::Established);
        assert!(s.is_settled());

        assert_eq!(s.close(3).unwrap(), Message::CloseRequest);
        assert_eq!(s.state(), SessionState::Closing);
        assert_eq!(
            s.on_message(&Message::CloseAck, 4).unwrap(),
            SessionEvent::Closed
        );
        assert_eq!(s.state(), SessionState::Closed);
        assert_eq!(s.total_retransmits(), 0);
        assert_eq!(s.resets(), 0);
    }

    #[test]
    fn invalid_caller_transitions_are_errors() {
        let mut s = Session::new(1, SessionConfig::default());
        assert!(matches!(
            s.close(0),
            Err(NetError::InvalidTransition {
                state: "Closed",
                event: "close",
            })
        ));
        s.connect(0).unwrap();
        assert!(matches!(
            s.connect(1),
            Err(NetError::InvalidTransition {
                state: "Connecting",
                event: "connect",
            })
        ));
        // An open handshake may be abandoned…
        s.close(1).unwrap();
        // …but a second close may not race the first.
        assert!(s.close(2).is_err());
    }

    #[test]
    fn duplicates_and_stale_answers_are_ignored() {
        let mut s = Session::new(1, SessionConfig::default());
        s.connect(0).unwrap();
        s.on_message(&Message::ConnectAccept, 1).unwrap();
        // The transport redelivers the ConnectAccept: no state change.
        assert_eq!(
            s.on_message(&Message::ConnectAccept, 1).unwrap(),
            SessionEvent::Ignored
        );
        assert_eq!(s.state(), SessionState::Negotiating);
        // A CloseAck nobody asked for is ignored too.
        assert_eq!(
            s.on_message(&Message::CloseAck, 2).unwrap(),
            SessionEvent::Ignored
        );
    }

    #[test]
    fn negotiate_reject_surfaces_the_supported_version() {
        let mut s = Session::new(1, SessionConfig::default());
        s.connect(0).unwrap();
        s.on_message(&Message::ConnectAccept, 1).unwrap();
        let err = s
            .on_message(&Message::NegotiateReject { supported: 0 }, 2)
            .unwrap_err();
        assert_eq!(
            err,
            NetError::UnsupportedVersion {
                version: PROTOCOL_VERSION,
                supported: 0,
            }
        );
        assert_eq!(s.state(), SessionState::Closed);
    }

    #[test]
    fn mismatched_accept_is_malformed() {
        let mut s = Session::new(1, SessionConfig::default());
        s.connect(0).unwrap();
        s.on_message(&Message::ConnectAccept, 1).unwrap();
        assert!(matches!(
            s.on_message(&Message::NegotiateAccept { version: 9 }, 2),
            Err(NetError::Malformed(_))
        ));
    }

    #[test]
    fn timeout_retransmits_then_gives_up() {
        let mut s = Session::new(1, quick());
        s.connect(0).unwrap();
        assert_eq!(s.poll(1), SessionPoll::Idle, "deadline not reached");
        assert_eq!(
            s.poll(2),
            SessionPoll::Retransmit(Message::ConnectRequest),
            "first deadline retransmits"
        );
        assert_eq!(s.total_retransmits(), 1);
        assert_eq!(s.poll(3), SessionPoll::Idle, "timer re-armed");
        assert_eq!(
            s.poll(4),
            SessionPoll::TimedOut {
                state: SessionState::Connecting,
            }
        );
        assert_eq!(s.state(), SessionState::Closed, "gave up cleanly");
        assert_eq!(s.resets(), 1, "handshake timeout counts as a reset");
        // A fresh connect is legal again.
        assert!(s.connect(5).is_ok());
    }

    #[test]
    fn teardown_timeout_force_closes_without_a_reset() {
        let mut s = Session::new(1, quick());
        s.connect(0).unwrap();
        s.on_message(&Message::ConnectAccept, 0).unwrap();
        s.on_message(
            &Message::NegotiateAccept {
                version: PROTOCOL_VERSION,
            },
            0,
        )
        .unwrap();
        s.close(0).unwrap();
        assert_eq!(s.poll(2), SessionPoll::Retransmit(Message::CloseRequest));
        assert_eq!(
            s.poll(4),
            SessionPoll::TimedOut {
                state: SessionState::Closing,
            }
        );
        assert_eq!(s.state(), SessionState::Closed);
        assert_eq!(s.resets(), 0, "best-effort close is not a reset");
    }

    /// Satellite audit: once `CloseRequest` ("Bye") has been sent, no
    /// flood of duplicated, delayed or stale frames may corrupt the
    /// teardown — the state stays monotone through `Closing`: the only
    /// transition out is `CloseAck → Closed`, and `Closed` is absorbing
    /// until the caller reconnects.
    #[test]
    fn post_bye_floods_keep_teardown_monotone() {
        // Everything the replica layer ever feeds a client session,
        // including the answers a slow transport redelivers after the
        // close: handshake accepts, a reject, and close acks.
        let frames = [
            Message::ConnectAccept,
            Message::NegotiateAccept {
                version: PROTOCOL_VERSION,
            },
            Message::NegotiateReject { supported: 0 },
            Message::CloseAck,
        ];
        for seed in 0..128u64 {
            let mut s = Session::new(1, SessionConfig::default());
            s.connect(0).unwrap();
            s.on_message(&Message::ConnectAccept, 1).unwrap();
            s.on_message(
                &Message::NegotiateAccept {
                    version: PROTOCOL_VERSION,
                },
                2,
            )
            .unwrap();
            s.close(3).unwrap();
            assert_eq!(s.state(), SessionState::Closing);

            // A seeded splitmix64 walk: duplicates and arbitrary
            // interleavings of every frame kind, delivered post-Bye.
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for step in 0..32u64 {
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                let frame = &frames[(x % frames.len() as u64) as usize];
                let before = s.state();
                let event = s
                    .on_message(frame, 4 + step)
                    .expect("post-Bye frames never error the FSM");
                let after = s.state();
                match (before, after) {
                    (SessionState::Closing, SessionState::Closing) => {
                        assert_eq!(event, SessionEvent::Ignored);
                    }
                    (SessionState::Closing, SessionState::Closed) => {
                        assert_eq!(frame, &Message::CloseAck);
                        assert_eq!(event, SessionEvent::Closed);
                    }
                    (SessionState::Closed, SessionState::Closed) => {
                        assert_eq!(event, SessionEvent::Ignored);
                    }
                    other => panic!("teardown went non-monotone: {other:?} on {frame:?}"),
                }
            }
            // Whatever the flood did, the timer cannot resurrect the
            // exchange after the ack landed.
            if s.state() == SessionState::Closed {
                assert_eq!(s.poll(1_000), SessionPoll::Idle);
            }
        }
    }

    #[test]
    fn established_session_has_no_timer() {
        let mut s = Session::new(1, quick());
        s.connect(0).unwrap();
        s.on_message(&Message::ConnectAccept, 0).unwrap();
        s.on_message(
            &Message::NegotiateAccept {
                version: PROTOCOL_VERSION,
            },
            0,
        )
        .unwrap();
        assert_eq!(s.poll(1_000), SessionPoll::Idle);
    }
}
