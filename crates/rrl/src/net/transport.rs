//! The simulated, seeded, fault-injectable message transport.
//!
//! [`SimTransport`] moves framed bytes between numbered endpoints in
//! *virtual time*: `send` schedules a delivery at least one tick in the
//! future, [`step`](SimTransport::step) advances the clock by one tick
//! and moves everything due into per-endpoint inboxes. There are no
//! threads and no wall clock anywhere — every delivery decision is a
//! pure function of the transport's deterministic state plus the
//! [`FaultInjector`] network hooks, which are
//! themselves pure functions of the monotone message id (and the tick,
//! for partitions). Two runs over the same fault plan therefore deliver
//! byte-identical messages in an identical order.
//!
//! Fault semantics per `send`:
//!
//! * **partition** — `partitioned(now, from, to)` drops the message at
//!   the sender and counts it separately from plain drops,
//! * **drop** — `drop_message(id)` silently loses the message,
//! * **delay / reorder** — delivery lands at `now + 1 + delay_ticks(id)`;
//!   unequal delays reorder messages between the same pair,
//! * **duplicate** — `duplicate_message(id)` schedules a second copy one
//!   tick after the first.
//!
//! Deliveries due on the same tick are handed out sorted by
//! `(deliver_at, message id)`, so even "simultaneous" arrivals have one
//! deterministic order.
//!
//! Since the `simkit` kernel landed, the transport's tick counter is a
//! [`simkit::VirtualClock`] and its in-flight set a [`simkit::EventHeap`]
//! keyed by `(deliver_at, msg_id)` via
//! [`schedule_keyed`](simkit::EventHeap::schedule_keyed) — the same
//! `(deliver_at, seq_id)` rule the whole runtime orders events by. The
//! observable behavior is byte-identical to the pre-kernel hand-rolled
//! loop.

use std::collections::VecDeque;

use obskit::Recorder;
use simkit::{EventHeap, VirtualClock};

use crate::inject::FaultInjector;

use super::frame::NetError;

/// One delivered message, as the receiving endpoint sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sending endpoint.
    pub from: u32,
    /// Receiving endpoint.
    pub to: u32,
    /// The transport-assigned monotone message id.
    pub msg_id: u64,
    /// The framed bytes exactly as sent.
    pub payload: Vec<u8>,
}

/// A message still in flight (its `(deliver_at, msg_id)` ordering lives
/// in the event heap's key, not here).
#[derive(Debug)]
struct InFlight {
    msg_id: u64,
    from: u32,
    to: u32,
    payload: Vec<u8>,
}

/// Transport-level counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// `send` calls accepted (faulted or not).
    pub sent: u64,
    /// Messages moved into an inbox (duplicates count individually).
    pub delivered: u64,
    /// Messages lost to `drop_message`.
    pub dropped: u64,
    /// Extra copies scheduled by `duplicate_message`.
    pub duplicated: u64,
    /// Messages lost to a partitioned link.
    pub partitioned: u64,
}

/// The virtual-time message fabric between a set of replicas.
pub struct SimTransport<'a> {
    endpoints: u32,
    clock: VirtualClock,
    next_msg_id: u64,
    in_flight: EventHeap<InFlight>,
    inboxes: Vec<VecDeque<Delivery>>,
    faults: Option<&'a dyn FaultInjector>,
    recorder: Option<&'a dyn Recorder>,
    stats: TransportStats,
}

impl std::fmt::Debug for SimTransport<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("endpoints", &self.endpoints)
            .field("now", &self.clock.now())
            .field("in_flight", &self.in_flight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> SimTransport<'a> {
    /// A healthy transport between `endpoints` endpoints (clamped ≥ 1).
    pub fn new(endpoints: u32) -> Self {
        let endpoints = endpoints.max(1);
        Self {
            endpoints,
            clock: VirtualClock::new(),
            next_msg_id: 0,
            in_flight: EventHeap::new(),
            inboxes: (0..endpoints).map(|_| VecDeque::new()).collect(),
            faults: None,
            recorder: None,
            stats: TransportStats::default(),
        }
    }

    /// Thread a fault injector's network hooks into every send (builder
    /// form).
    #[must_use]
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Mirror every [`TransportStats`] increment into a telemetry
    /// recorder as `net.*` counters (builder form).
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Bump a telemetry counter, if a recorder is attached.
    fn note(&self, key: obskit::Key, delta: u64) {
        if let Some(recorder) = self.recorder {
            recorder.counter_add(key, delta);
        }
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Number of endpoints.
    pub fn endpoints(&self) -> u32 {
        self.endpoints
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// True when nothing is in flight (inboxes may still hold
    /// deliveries).
    pub fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// True when nothing is in flight *and* every inbox is drained.
    pub fn quiet(&self) -> bool {
        self.idle() && self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// Send framed bytes from `from` to `to`. Returns the assigned
    /// message id — assigned even when a fault consumes the message, so
    /// fault decisions for later messages never shift.
    pub fn send(&mut self, from: u32, to: u32, payload: Vec<u8>) -> Result<u64, NetError> {
        for endpoint in [from, to] {
            if endpoint >= self.endpoints {
                return Err(NetError::UnknownReplica {
                    replica: endpoint,
                    replicas: self.endpoints as usize,
                });
            }
        }
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.sent += 1;
        self.note("net.sent", 1);

        if let Some(faults) = self.faults {
            if faults.partitioned(self.clock.now(), from, to) {
                self.stats.partitioned += 1;
                self.note("net.partitioned", 1);
                return Ok(msg_id);
            }
            if faults.drop_message(msg_id) {
                self.stats.dropped += 1;
                self.note("net.dropped", 1);
                return Ok(msg_id);
            }
        }

        let delay = 1 + self.faults.map_or(0, |f| f.delay_ticks(msg_id));
        if delay > 1 {
            self.note("net.delayed", 1);
        }
        let deliver_at = self.clock.now() + delay;
        if self.faults.is_some_and(|f| f.duplicate_message(msg_id)) {
            self.stats.duplicated += 1;
            self.note("net.duplicated", 1);
            self.in_flight.schedule_keyed(
                deliver_at + 1,
                msg_id,
                InFlight {
                    msg_id,
                    from,
                    to,
                    payload: payload.clone(),
                },
            );
        }
        self.in_flight.schedule_keyed(
            deliver_at,
            msg_id,
            InFlight {
                msg_id,
                from,
                to,
                payload,
            },
        );
        Ok(msg_id)
    }

    /// Advance virtual time by one tick and move every due message into
    /// its destination inbox, in `(deliver_at, msg_id)` order (the event
    /// heap's pop order). Returns the number of messages delivered this
    /// tick.
    pub fn step(&mut self) -> usize {
        let now = self.clock.advance(1);
        let mut delivered = 0usize;
        while self.in_flight.peek().is_some_and(|(at, _)| at <= now) {
            let m = self.in_flight.pop().expect("peeked").event;
            delivered += 1;
            self.stats.delivered += 1;
            self.inboxes[m.to as usize].push_back(Delivery {
                from: m.from,
                to: m.to,
                msg_id: m.msg_id,
                payload: m.payload,
            });
        }
        if delivered > 0 {
            self.note("net.delivered", delivered as u64);
        }
        delivered
    }

    /// Pop the next delivery for `endpoint`, in arrival order.
    pub fn recv(&mut self, endpoint: u32) -> Option<Delivery> {
        self.inboxes.get_mut(endpoint as usize)?.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test injector exercising every network hook deterministically.
    struct NetFaults;

    impl FaultInjector for NetFaults {
        fn delay_ticks(&self, msg_id: u64) -> u64 {
            // Reorder: even ids arrive 2 ticks later than odd ids.
            if msg_id.is_multiple_of(2) {
                2
            } else {
                0
            }
        }
        fn drop_message(&self, msg_id: u64) -> bool {
            msg_id == 3
        }
        fn duplicate_message(&self, msg_id: u64) -> bool {
            msg_id == 1
        }
        fn partitioned(&self, tick: u64, from: u32, to: u32) -> bool {
            tick < 1 && from == 0 && to == 2
        }
    }

    fn drain(t: &mut SimTransport<'_>, endpoint: u32) -> Vec<u64> {
        let mut ids = Vec::new();
        while let Some(d) = t.recv(endpoint) {
            assert_eq!(d.to, endpoint);
            ids.push(d.msg_id);
        }
        ids
    }

    #[test]
    fn healthy_transport_delivers_in_order_next_tick() {
        let mut t = SimTransport::new(2);
        t.send(0, 1, vec![1]).unwrap();
        t.send(0, 1, vec![2]).unwrap();
        assert!(!t.idle());
        assert_eq!(t.step(), 2);
        assert!(t.idle() && !t.quiet());
        assert_eq!(drain(&mut t, 1), vec![0, 1]);
        assert!(t.quiet());
        let s = t.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (2, 2, 0));
    }

    #[test]
    fn unknown_endpoint_is_an_error() {
        let mut t = SimTransport::new(2);
        assert!(matches!(
            t.send(0, 5, vec![]),
            Err(NetError::UnknownReplica {
                replica: 5,
                replicas: 2,
            })
        ));
        assert!(t.recv(9).is_none());
    }

    #[test]
    fn faults_drop_duplicate_delay_and_partition() {
        let faults = NetFaults;
        let mut t = SimTransport::new(3).with_faults(&faults);
        // id 0: partitioned at tick 0 (0 → 2).
        t.send(0, 2, vec![0]).unwrap();
        // id 1: duplicated.
        t.send(0, 1, vec![1]).unwrap();
        // id 2: delayed 2 extra ticks.
        t.send(0, 1, vec![2]).unwrap();
        // id 3: dropped.
        t.send(0, 1, vec![3]).unwrap();

        // Tick 1: id 1's first copy (odd → no extra delay).
        t.step();
        assert_eq!(drain(&mut t, 1), vec![1]);
        // Tick 2: id 1's duplicate copy.
        t.step();
        assert_eq!(drain(&mut t, 1), vec![1]);
        // Tick 3: id 2 finally lands — reordered behind both copies.
        t.step();
        assert_eq!(drain(&mut t, 1), vec![2]);
        assert!(t.quiet());
        assert_eq!(drain(&mut t, 2), Vec::<u64>::new(), "partition ate id 0");

        let s = t.stats();
        assert_eq!(s.sent, 4);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.duplicated, 1);
        assert_eq!(s.partitioned, 1);
    }

    #[test]
    fn partition_heals_when_the_tick_moves_on() {
        let faults = NetFaults;
        let mut t = SimTransport::new(3).with_faults(&faults);
        t.step(); // now = 1: the 0 → 2 partition window has passed
        t.send(0, 2, vec![7]).unwrap();
        // Even id → 2 extra delay ticks: due at tick 4, three steps out.
        t.step();
        t.step();
        t.step();
        assert_eq!(drain(&mut t, 2).len(), 1);
        assert_eq!(t.stats().partitioned, 0);
    }

    #[test]
    fn same_tick_deliveries_sort_by_message_id() {
        struct SameTick;
        impl FaultInjector for SameTick {
            fn delay_ticks(&self, msg_id: u64) -> u64 {
                // id 0 waits 1 extra tick, id 1 none: both land at tick 2.
                1 - msg_id.min(1)
            }
        }
        let faults = SameTick;
        let mut t = SimTransport::new(2).with_faults(&faults);
        t.send(0, 1, vec![]).unwrap(); // id 0, due tick 2
        t.step();
        t.send(0, 1, vec![]).unwrap(); // id 1, due tick 2
        t.step();
        assert_eq!(drain(&mut t, 1), vec![0, 1], "id order breaks the tie");
    }
}
