//! The length-framed, versioned wire format.
//!
//! A frame is `[length: u32 BE][version: u16 BE][payload]` where
//! `length` counts the version word plus the payload, and the payload is
//! the [`Message`] in its serde JSON wire form — the same serialization
//! family every other persisted artifact of this workspace uses, so a
//! captured frame is inspectable with any JSON tool. [`encode`] never
//! fails; [`decode`] returns `Result<_, NetError>` for every way real
//! bytes go wrong: truncation (with exactly how many bytes would be
//! needed, so a stream reader knows how much more to buffer), an
//! oversized length prefix, a version this build does not speak, and a
//! payload that is not a well-formed message.

use serde::{Deserialize, Serialize};

use super::reconcile::{ModelDigest, ReplicatedModel};

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `length` (version word + payload). Anything larger is
/// rejected before allocation — a corrupt length prefix must not look
/// like a 4 GiB message.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of frame header preceding the payload: length word + version.
const HEADER: usize = 6;

/// Why a frame or a session operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The buffer ends before the frame does. `needed` is the total
    /// byte count the frame requires (or the minimal header size when
    /// even the length prefix is incomplete).
    Truncated {
        /// Bytes the complete frame needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// The claimed frame length.
        length: usize,
        /// The enforced bound.
        max: usize,
    },
    /// The frame speaks a protocol version this build does not.
    UnsupportedVersion {
        /// Version the frame (or peer) declared.
        version: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The payload is not a well-formed message.
    Malformed(String),
    /// A session was driven through a transition its state forbids.
    InvalidTransition {
        /// The state the session was in.
        state: &'static str,
        /// The operation that was attempted.
        event: &'static str,
    },
    /// A session exhausted its retransmit budget without an answer.
    SessionTimeout {
        /// Peer replica the session was talking to.
        peer: u32,
        /// The state the session gave up in.
        state: &'static str,
    },
    /// A message was addressed to a replica the set does not contain.
    UnknownReplica {
        /// The requested replica id.
        replica: u32,
        /// Number of replicas in the set.
        replicas: usize,
    },
    /// Anti-entropy sync did not quiesce within the tick budget.
    ConvergeTimeout {
        /// Virtual ticks spent before giving up.
        ticks: u64,
        /// The link the set blames for the stall, when one can be named.
        culprit: Option<ConvergeCulprit>,
    },
}

/// The link a [`NetError::ConvergeTimeout`] blames: the session that had
/// burned the most retransmit budget (or was otherwise unsettled) when
/// the tick budget ran out. Without this a hostile drop plan looks like
/// a silent spin — the culprit names exactly which replica pair and FSM
/// state to go look at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergeCulprit {
    /// Replica whose client session stalled.
    pub replica: u32,
    /// Peer the session was talking to.
    pub peer: u32,
    /// Session FSM state at the timeout.
    pub state: &'static str,
    /// Times that session exhausted its retransmit budget and reset.
    pub resets: u64,
}

impl std::fmt::Display for ConvergeCulprit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {} -> {} stuck {} after {} session resets",
            self.replica, self.peer, self.state, self.resets
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            NetError::FrameTooLarge { length, max } => {
                write!(f, "frame length {length} exceeds the {max}-byte bound")
            }
            NetError::UnsupportedVersion { version, supported } => write!(
                f,
                "protocol version {version} not supported (this build speaks {supported})"
            ),
            NetError::Malformed(detail) => write!(f, "malformed message payload: {detail}"),
            NetError::InvalidTransition { state, event } => {
                write!(f, "session cannot {event} from the {state} state")
            }
            NetError::SessionTimeout { peer, state } => write!(
                f,
                "session to replica {peer} exhausted its retransmits while {state}"
            ),
            NetError::UnknownReplica { replica, replicas } => {
                write!(f, "no replica {replica} in a set of {replicas}")
            }
            NetError::ConvergeTimeout { ticks, culprit } => {
                write!(f, "replica set failed to quiesce within {ticks} ticks")?;
                if let Some(culprit) = culprit {
                    write!(f, " ({culprit})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Every message of the replication protocol.
///
/// The handshake triple (`Connect*`, `Negotiate*`) and the close pair
/// drive the client-session FSM in [`crate::net::session`]; the digest
/// exchange (`DigestOffer` → `DigestReply` → `PushModels`) is the
/// anti-entropy payload a session carries once `Established`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Client → responder: open a session.
    ConnectRequest,
    /// Responder → client: session open, proceed to negotiation.
    ConnectAccept,
    /// Client → responder: propose a protocol version.
    NegotiateRequest {
        /// The version the client speaks.
        version: u16,
    },
    /// Responder → client: version agreed, session is established.
    NegotiateAccept {
        /// The agreed version (echoed back).
        version: u16,
    },
    /// Responder → client: version refused; the session closes.
    NegotiateReject {
        /// The version the responder supports instead.
        supported: u16,
    },
    /// Client → responder: everything I hold, as digests.
    DigestOffer {
        /// Digest of every replicated entry the sender holds.
        digests: Vec<ModelDigest>,
    },
    /// Responder → client: what I need from you, and what you need from
    /// me. An empty reply means the pair is in sync.
    DigestReply {
        /// Applications whose offered stamp beat the responder's — the
        /// client should push these entries.
        want: Vec<String>,
        /// Entries the responder holds that beat the offer.
        entries: Vec<ReplicatedModel>,
    },
    /// Client → responder: full payloads for requested applications.
    PushModels {
        /// The entries being shipped.
        entries: Vec<ReplicatedModel>,
    },
    /// Client → responder: read-repair — send me your entries for these
    /// applications (the requester missed in its local repository and a
    /// peer digest says you hold a model). Answered with
    /// [`Message::PushModels`] for whatever subset the responder holds.
    PullModels {
        /// Applications the requester wants filled in.
        applications: Vec<String>,
    },
    /// Client → responder: tear the session down.
    CloseRequest,
    /// Responder → client: teardown acknowledged.
    CloseAck,
}

/// Frame a message for the wire. Panics never: a message always has a
/// JSON form and [`MAX_FRAME`] comfortably exceeds any real payload.
pub fn encode(message: &Message) -> Vec<u8> {
    let payload = serde_json::to_string(message).expect("messages always serialize");
    let length = payload.len() + 2;
    debug_assert!(length <= MAX_FRAME, "oversized protocol message");
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(length as u32).to_be_bytes());
    out.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decode one frame from the front of `bytes`. Returns the message and
/// the number of bytes consumed, so a stream reader can decode
/// back-to-back frames from one buffer.
pub fn decode(bytes: &[u8]) -> Result<(Message, usize), NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Truncated {
            needed: HEADER,
            have: bytes.len(),
        });
    }
    let length = u32::from_be_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if length > MAX_FRAME {
        return Err(NetError::FrameTooLarge {
            length,
            max: MAX_FRAME,
        });
    }
    if length < 2 {
        return Err(NetError::Malformed(format!(
            "frame length {length} cannot hold the version word"
        )));
    }
    let total = 4 + length;
    if bytes.len() < total {
        return Err(NetError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let version = u16::from_be_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(NetError::UnsupportedVersion {
            version,
            supported: PROTOCOL_VERSION,
        });
    }
    let payload = std::str::from_utf8(&bytes[6..total])
        .map_err(|e| NetError::Malformed(format!("payload is not UTF-8: {e}")))?;
    let message = serde_json::from_str(payload).map_err(|e| NetError::Malformed(format!("{e}")))?;
    Ok((message, total))
}

#[cfg(test)]
mod tests {
    use super::super::reconcile::Stamp;
    use super::*;

    fn sample() -> Message {
        Message::DigestOffer {
            digests: vec![ModelDigest {
                application: "miniMD".into(),
                stamp: Stamp {
                    version: 2,
                    publisher: 1,
                },
                content: 0xDEAD_BEEF,
            }],
        }
    }

    #[test]
    fn every_message_kind_round_trips() {
        let messages = [
            Message::ConnectRequest,
            Message::ConnectAccept,
            Message::NegotiateRequest { version: 1 },
            Message::NegotiateAccept { version: 1 },
            Message::NegotiateReject { supported: 1 },
            sample(),
            Message::DigestReply {
                want: vec!["miniMD".into()],
                entries: vec![ReplicatedModel {
                    application: "Lulesh".into(),
                    fingerprint: 9,
                    model_json: "{}".into(),
                    expected: vec![("r0".into(), 12.5)],
                    stamp: Stamp {
                        version: 1,
                        publisher: 0,
                    },
                }],
            },
            Message::PushModels { entries: vec![] },
            Message::PullModels {
                applications: vec!["miniMD".into(), "Lulesh".into()],
            },
            Message::CloseRequest,
            Message::CloseAck,
        ];
        for message in messages {
            let bytes = encode(&message);
            let (back, consumed) = decode(&bytes).expect("round trip");
            assert_eq!(back, message);
            assert_eq!(consumed, bytes.len(), "whole frame consumed");
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let mut stream = encode(&Message::ConnectRequest);
        stream.extend_from_slice(&encode(&sample()));
        let (first, used) = decode(&stream).unwrap();
        assert_eq!(first, Message::ConnectRequest);
        let (second, rest) = decode(&stream[used..]).unwrap();
        assert_eq!(second, sample());
        assert_eq!(used + rest, stream.len());
    }

    #[test]
    fn truncation_reports_how_much_is_needed() {
        let bytes = encode(&sample());
        assert_eq!(
            decode(&bytes[..3]),
            Err(NetError::Truncated { needed: 6, have: 3 })
        );
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]),
            Err(NetError::Truncated {
                needed: bytes.len(),
                have: bytes.len() - 1,
            })
        );
    }

    #[test]
    fn version_and_length_guards_reject() {
        let mut bytes = encode(&Message::ConnectRequest);
        bytes[5] = 99; // version low byte
        assert_eq!(
            decode(&bytes),
            Err(NetError::UnsupportedVersion {
                version: 99,
                supported: PROTOCOL_VERSION,
            })
        );

        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut oversized = huge.to_vec();
        oversized.extend_from_slice(&[0; 8]);
        assert_eq!(
            decode(&oversized),
            Err(NetError::FrameTooLarge {
                length: MAX_FRAME + 1,
                max: MAX_FRAME,
            })
        );

        let runt = 1u32.to_be_bytes();
        let mut short = runt.to_vec();
        short.extend_from_slice(&[0, 0]);
        assert!(matches!(decode(&short), Err(NetError::Malformed(_))));
    }

    #[test]
    fn garbage_payload_is_malformed_not_a_panic() {
        let payload = b"{not a message";
        let mut bytes = ((payload.len() + 2) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
        bytes.extend_from_slice(payload);
        assert!(matches!(decode(&bytes), Err(NetError::Malformed(_))));
    }

    #[test]
    fn errors_display_their_condition() {
        let cases: Vec<(NetError, &str)> = vec![
            (NetError::Truncated { needed: 6, have: 2 }, "truncated"),
            (NetError::FrameTooLarge { length: 9, max: 8 }, "exceeds"),
            (
                NetError::UnsupportedVersion {
                    version: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (NetError::Malformed("x".into()), "malformed"),
            (
                NetError::InvalidTransition {
                    state: "Closed",
                    event: "close",
                },
                "Closed",
            ),
            (
                NetError::SessionTimeout {
                    peer: 3,
                    state: "Connecting",
                },
                "replica 3",
            ),
            (
                NetError::UnknownReplica {
                    replica: 7,
                    replicas: 2,
                },
                "replica 7",
            ),
            (
                NetError::ConvergeTimeout {
                    ticks: 10,
                    culprit: None,
                },
                "10 ticks",
            ),
            (
                NetError::ConvergeTimeout {
                    ticks: 10,
                    culprit: Some(ConvergeCulprit {
                        replica: 0,
                        peer: 1,
                        state: "Connecting",
                        resets: 4,
                    }),
                },
                "link 0 -> 1 stuck Connecting after 4 session resets",
            ),
        ];
        for (error, needle) in cases {
            let text = error.to_string();
            assert!(text.contains(needle), "{text:?} lacks {needle:?}");
        }
    }
}
