//! Replicated model serving over a simulated, fault-injectable network.
//!
//! The paper's tuning-model repository is a single shared store; this
//! module lifts it to a small replicated system while keeping the
//! runtime's core property — *everything is deterministic under a
//! seed*. The layers, bottom-up:
//!
//! * [`frame`] — the length-framed, versioned wire format and
//!   [`NetError`]. Every decode is a `Result`; malformed bytes are data,
//!   not panics.
//! * [`transport`] — [`SimTransport`], virtual-time message passing
//!   where delay, drop, duplication, reorder and partition are pure
//!   functions of `(fault plan, message id, tick)` via the
//!   [`FaultInjector`](crate::FaultInjector) network hooks.
//! * [`session`] — the per-peer client FSM
//!   (`Closed → Connecting → Negotiating → Established → Closing`),
//!   with virtual-time timeouts and bounded retransmission, in the
//!   spirit of PPP's LCP: negotiate first, move data only once both
//!   sides agree on a protocol version.
//! * [`reconcile`] — [`Stamp`] ordering (version first, publisher id as
//!   the tie-break), [`VersionVector`] high-water tracking and the
//!   replicated entry/digest types. The total order on stamps is what
//!   makes every replica pick the same winner.
//! * [`replica`] — [`Replica`] (a repository plus replication state)
//!   and [`ReplicaSet`], which drives anti-entropy digest sync over the
//!   transport until every replica holds a bit-identical model map.
//!
//! The scheduler consumes all of this through one seam:
//! [`RepositoryHandle`](crate::repository::RepositoryHandle), which
//! both the plain repository and a [`Replica`] implement — see
//! [`ClusterScheduler::run_replicated`](crate::ClusterScheduler::run_replicated).

pub mod frame;
pub mod reconcile;
pub mod replica;
pub mod session;
pub mod transport;

pub use frame::{decode, encode, ConvergeCulprit, Message, NetError, MAX_FRAME, PROTOCOL_VERSION};
pub use reconcile::{ModelDigest, ReplicatedModel, Stamp, VersionVector};
pub use replica::{ConvergeReport, Replica, ReplicaConfig, ReplicaSet, ReplicaStats};
pub use session::{Session, SessionConfig, SessionEvent, SessionPoll, SessionState};
pub use transport::{Delivery, SimTransport, TransportStats};
