//! Errors on the user-facing runtime path.
//!
//! Every operation of the event-driven runtime API — repository serving
//! (single-threaded or through the sharded
//! [`SharedRepository`](crate::SharedRepository)),
//! [`crate::RuntimeSession`] transitions, [`crate::ClusterScheduler`]
//! placement and execution — returns `Result<_, RuntimeError>`. Nothing on
//! this path panics: a corrupt model file, a foreign configuration or a
//! mis-sequenced region event all surface as values. The parallel event
//! loop keeps error reporting deterministic too: when several workers
//! fail, [`ClusterScheduler::run_parallel`](crate::ClusterScheduler::run_parallel)
//! returns the error of the earliest-*submitted* failing job, not the
//! first thread to lose the race — and an erroring worker releases every
//! calibration latch it led so no healthy worker deadlocks behind it.

use std::fmt;

use simnode::SystemConfig;

/// Why a runtime operation could not proceed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A serialized tuning model could not be read from storage.
    Io(std::io::Error),
    /// Stored bytes were not a valid tuning model.
    Parse(serde_json::Error),
    /// The repository holds no model for this application/workload and no
    /// calibration fallback is configured.
    NoModel {
        /// Application that requested a model.
        application: String,
        /// Workload fingerprint that missed.
        fingerprint: u64,
    },
    /// A region event named a region the benchmark does not contain, so
    /// the simulator cannot execute it.
    UnknownRegion {
        /// Application whose session received the event.
        application: String,
        /// The unresolvable region name.
        region: String,
    },
    /// An event arrived while a region was still open. Regions are flat
    /// (the phase loop executes them in sequence), so `region_enter`,
    /// `phase_complete` and `finish` all require the previous region to
    /// have exited.
    RegionStillOpen {
        /// The region that is still open.
        open: String,
        /// The event that was attempted.
        event: String,
    },
    /// `region_exit` without a matching `region_enter`.
    NoOpenRegion {
        /// The region whose exit was requested.
        requested: String,
    },
    /// `region_exit` for a different region than the open one.
    RegionMismatch {
        /// The region currently open.
        open: String,
        /// The region whose exit was requested.
        requested: String,
    },
    /// A served tuning model contains a configuration the target node
    /// cannot apply (thread count beyond the topology or a frequency
    /// outside the DVFS/UFS domains).
    UnsupportedConfig {
        /// Application whose model carried the configuration.
        application: String,
        /// The offending configuration.
        config: SystemConfig,
    },
    /// The job's launch (initial) configuration cannot be applied on this
    /// node — the caller's fault, not the model's.
    UnsupportedInitial {
        /// The offending launch configuration.
        config: SystemConfig,
    },
    /// A cluster scheduler was created over a cluster with no nodes.
    EmptyCluster,
    /// A scheduled job could not run on the node it was placed on: the
    /// node's capabilities ([`simnode::Node::supports`]) rejected the
    /// served model or launch configuration, *and* the scheduler's
    /// degraded path (a static run at the node-clamped default) was
    /// impossible too. Unlike the session-level
    /// [`RuntimeError::UnsupportedConfig`], this names the job and the
    /// node, so scenario reports and shrinker output can point at the
    /// culprit placement. (Ordinarily a capability-gap rejection does
    /// *not* surface as an error at all — the scheduler degrades the job
    /// and records a [`JobRejection`](crate::JobRejection) in its
    /// outcome.)
    JobRejected {
        /// The job that was placed on an incapable node.
        job: String,
        /// The node that rejected it.
        node_id: u32,
        /// Application whose model carried the configuration.
        application: String,
        /// The rejected configuration.
        config: SystemConfig,
    },
    /// Online calibration needs more exploration iterations than the job
    /// has phase iterations, so the tuner cannot converge before the job
    /// ends. Launch the job at the calibration fallback instead, or pick a
    /// cheaper [`SearchStrategy`](ptf::SearchStrategy).
    ExplorationBudget {
        /// Application whose calibration was planned.
        application: String,
        /// Exploration iterations the plan needs (worst case).
        needed: u32,
        /// Phase iterations the job actually has.
        available: u32,
    },
    /// Drift-triggered re-calibration of a region was refused: the job
    /// does not have enough remaining visits of the region to measure the
    /// re-exploration neighbourhood, or the session is not in a state that
    /// can re-calibrate (still calibrating, or serving a model without
    /// drift expectations).
    RecalibrationRefused {
        /// Application whose session refused.
        application: String,
        /// The region that would have been re-calibrated.
        region: String,
        /// Region visits the scoped re-exploration needs.
        needed: u32,
        /// Region visits remaining before the job finishes.
        remaining: u32,
    },
    /// The online tuner could not generate its exploration candidates —
    /// the design-time strategy machinery rejected the analysis inputs
    /// (e.g. the model-based strategy without a trained energy model).
    Planning(ptf::TuningError),
    /// Replicated serving failed below the repository: a wire-format,
    /// session or convergence error from the [`crate::net`] stack (e.g.
    /// `run_replicated` addressed a replica the set does not contain).
    Replication(crate::net::NetError),
    /// The discrete-event service quiesced with jobs still unfinished —
    /// its event heap ran dry while queued work remained, which a
    /// well-formed churn schedule cannot cause (queued jobs are re-placed
    /// off drained and failed nodes, and placement falls back to the full
    /// fleet when every node is unavailable). Indicates an internal
    /// scheduling bug, not a scenario problem.
    ServiceStalled {
        /// Jobs that never finished.
        unfinished: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "cannot read tuning model: {e}"),
            RuntimeError::Parse(e) => write!(f, "stored tuning model is corrupt: {e}"),
            RuntimeError::NoModel {
                application,
                fingerprint,
            } => write!(
                f,
                "no tuning model for `{application}` (workload {fingerprint:016x}) \
                 and no calibration fallback configured"
            ),
            RuntimeError::UnknownRegion {
                application,
                region,
            } => write!(f, "application `{application}` has no region `{region}`"),
            RuntimeError::RegionStillOpen { open, event } => {
                write!(f, "cannot {event} while region `{open}` is still open")
            }
            RuntimeError::NoOpenRegion { requested } => write!(
                f,
                "region_exit(`{requested}`) without a matching region_enter"
            ),
            RuntimeError::RegionMismatch { open, requested } => {
                write!(f, "region_exit(`{requested}`) while `{open}` is open")
            }
            RuntimeError::UnsupportedConfig {
                application,
                config,
            } => write!(
                f,
                "model for `{application}` serves {config}, which this node cannot apply"
            ),
            RuntimeError::UnsupportedInitial { config } => write!(
                f,
                "initial configuration {config} cannot be applied on this node"
            ),
            RuntimeError::EmptyCluster => {
                write!(f, "cluster scheduler needs at least one node")
            }
            RuntimeError::JobRejected {
                job,
                node_id,
                application,
                config,
            } => write!(
                f,
                "job `{job}` ({application}) rejected by node {node_id}: \
                 it cannot apply {config} and no degraded configuration fits"
            ),
            RuntimeError::ExplorationBudget {
                application,
                needed,
                available,
            } => write!(
                f,
                "online calibration of `{application}` exhausted its exploration budget: \
                 needs {needed} exploration iterations but the job has only {available} \
                 phase iterations"
            ),
            RuntimeError::RecalibrationRefused {
                application,
                region,
                needed,
                remaining,
            } => write!(
                f,
                "drift re-calibration of `{region}` in `{application}` refused: \
                 needs {needed} more visits of the region, only {remaining} remain"
            ),
            RuntimeError::Planning(e) => {
                write!(f, "online exploration planning failed: {e}")
            }
            RuntimeError::Replication(e) => {
                write!(f, "replicated serving failed: {e}")
            }
            RuntimeError::ServiceStalled { unfinished } => write!(
                f,
                "discrete-event service quiesced with {unfinished} unfinished job(s)"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::Parse(e) => Some(e),
            RuntimeError::Planning(e) => Some(e),
            RuntimeError::Replication(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_condition() {
        let e = RuntimeError::NoModel {
            application: "Lulesh".into(),
            fingerprint: 0xABCD,
        };
        assert!(format!("{e}").contains("Lulesh"));
        assert!(format!("{e}").contains("000000000000abcd"));

        let e = RuntimeError::RegionMismatch {
            open: "a".into(),
            requested: "b".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("`a`") && s.contains("`b`"));

        let e = RuntimeError::UnsupportedConfig {
            application: "x".into(),
            config: SystemConfig::new(24, 2600, 3000),
        };
        assert!(format!("{e}").contains("2.6"));

        let e = RuntimeError::UnsupportedInitial {
            config: SystemConfig::new(48, 2500, 3000),
        };
        assert!(format!("{e}").contains("initial configuration"));

        assert!(format!("{}", RuntimeError::EmptyCluster).contains("node"));

        let e = RuntimeError::JobRejected {
            job: "job-7".into(),
            node_id: 3,
            application: "Lulesh".into(),
            config: SystemConfig::new(24, 2500, 3000),
        };
        let s = format!("{e}");
        assert!(
            s.contains("job-7") && s.contains("node 3") && s.contains("Lulesh"),
            "{s}"
        );

        let e = RuntimeError::ExplorationBudget {
            application: "Lulesh".into(),
            needed: 63,
            available: 30,
        };
        let s = format!("{e}");
        assert!(s.contains("exploration budget") && s.contains("63") && s.contains("30"));

        let e = RuntimeError::RecalibrationRefused {
            application: "miniMD".into(),
            region: "compute_force".into(),
            needed: 9,
            remaining: 2,
        };
        let s = format!("{e}");
        assert!(s.contains("re-calibration") && s.contains("compute_force"));
        assert!(s.contains('9') && s.contains('2'));

        let e = RuntimeError::Planning(ptf::TuningError::MissingModel {
            strategy: "model-based-neighbourhood",
        });
        assert!(format!("{e}").contains("planning failed"));

        let e = RuntimeError::Replication(crate::net::NetError::UnknownReplica {
            replica: 9,
            replicas: 4,
        });
        let s = format!("{e}");
        assert!(
            s.contains("replicated serving failed") && s.contains('9'),
            "{s}"
        );
    }

    #[test]
    fn planning_has_a_source() {
        use std::error::Error as _;
        let e = RuntimeError::Planning(ptf::TuningError::EmptyCandidates {
            stage: "online phase exploration",
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn io_and_parse_have_sources() {
        use std::error::Error as _;
        let io = RuntimeError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        let net = RuntimeError::Replication(crate::net::NetError::ConvergeTimeout {
            ticks: 10,
            culprit: None,
        });
        assert!(net.source().is_some());
        let plain = RuntimeError::EmptyCluster;
        assert!(plain.source().is_none());
    }
}
