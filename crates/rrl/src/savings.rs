//! Static vs dynamic tuning comparison (Table VI), on the event-driven
//! runtime API.
//!
//! The per-benchmark protocol of Section V-D:
//!
//! 1. run the benchmark uninstrumented at the platform default
//!    (24 threads, 2.5|3.0 GHz),
//! 2. run it uninstrumented at the best static configuration (Table V),
//! 3. run it with Score-P instrumentation under the RRL — here a
//!    [`RuntimeSession`] serving the tuning model from design-time
//!    analysis,
//! 4. compute job-energy / CPU-energy / time savings relative to the
//!    default run,
//! 5. decompose the dynamic run's time penalty into the *configuration
//!    setting* part (regions genuinely running slower at their tuned
//!    configurations) and the *DVFS/UFS/Score-P overhead* part
//!    (transition latencies + residual instrumentation), as in
//!    Section V-E.

use std::fmt;

use serde::{Deserialize, Serialize};

use kernels::BenchmarkSpec;
use ptf::{EnergyModel, SearchSpace, TuningError, TuningModel, TuningObjective, TuningSession};
use scorep_lite::filter::{autofilter, DEFAULT_FILTER_THRESHOLD_S};
use scorep_lite::instrument::StaticHook;
use scorep_lite::{InstrumentationConfig, InstrumentedApp};
use simnode::{ExecutionEngine, Node, SystemConfig};

use crate::error::RuntimeError;
use crate::repository::{ModelSource, ServedModel};
use crate::sacct::{JobAccounting, JobRecord};
use crate::session::RuntimeSession;

/// Relative savings of a tuned run versus the default run, in percent
/// (positive = improvement, negative = regression — the sign convention of
/// Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Savings {
    /// Job (node) energy saving, %.
    pub job_energy_pct: f64,
    /// CPU energy saving, %.
    pub cpu_energy_pct: f64,
    /// Time saving, % (negative when the tuned run is slower).
    pub time_pct: f64,
}

impl Savings {
    /// Compute savings of `tuned` relative to `default`.
    pub fn between(default: &JobRecord, tuned: &JobRecord) -> Savings {
        let pct = |d: f64, t: f64| 100.0 * (d - t) / d;
        Savings {
            job_energy_pct: pct(default.job_energy_j, tuned.job_energy_j),
            cpu_energy_pct: pct(default.cpu_energy_j, tuned.cpu_energy_j),
            time_pct: pct(default.elapsed_s, tuned.elapsed_s),
        }
    }
}

/// Why a static-vs-dynamic comparison failed: either the design-time
/// session or the runtime serving side.
#[derive(Debug)]
pub enum ComparisonError {
    /// The design-time tuning session failed.
    Tuning(TuningError),
    /// The runtime side (session or serving) failed.
    Runtime(RuntimeError),
}

impl fmt::Display for ComparisonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComparisonError::Tuning(e) => write!(f, "design-time tuning failed: {e}"),
            ComparisonError::Runtime(e) => write!(f, "runtime serving failed: {e}"),
        }
    }
}

impl std::error::Error for ComparisonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComparisonError::Tuning(e) => Some(e),
            ComparisonError::Runtime(e) => Some(e),
        }
    }
}

impl From<TuningError> for ComparisonError {
    fn from(e: TuningError) -> Self {
        ComparisonError::Tuning(e)
    }
}

impl From<RuntimeError> for ComparisonError {
    fn from(e: RuntimeError) -> Self {
        ComparisonError::Runtime(e)
    }
}

/// One row of Table VI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Best static configuration found (Table V).
    pub static_config: SystemConfig,
    /// Static tuning savings.
    pub static_savings: Savings,
    /// Dynamic (RRL) tuning savings.
    pub dynamic_savings: Savings,
    /// Performance reduction caused purely by the tuned configurations
    /// (no overheads), % of the default time; negative = slower.
    pub perf_reduction_config_pct: f64,
    /// Combined DVFS/UFS/Score-P overhead: the remaining time penalty of
    /// the dynamic run, % of the default time; negative = cost.
    pub overhead_dvfs_ufs_scorep_pct: f64,
    /// Configuration switches performed by the RRL run.
    pub switches: u64,
    /// Scenarios in the tuning model.
    pub scenarios: usize,
    /// Full accounting of the dynamic run, including the per-region
    /// energy/time breakdown.
    pub dynamic_accounting: JobAccounting,
}

/// Pure configuration-setting time of the dynamically-tuned application:
/// every region executes at its tuning-model configuration with zero
/// switching latency and zero instrumentation ("the relative execution
/// time of each region w.r.t. the default configuration").
fn config_setting_time_s(bench: &BenchmarkSpec, node: &Node, tm: &TuningModel) -> f64 {
    let engine = ExecutionEngine::new();
    let mut total = 0.0;
    for region in &bench.regions {
        let cfg = tm.lookup(&region.name);
        let run = engine.run_region(&region.character, &cfg, node);
        total += run.duration_s;
    }
    total * bench.phase_iterations as f64
}

/// Run the full Table VI protocol for one benchmark.
///
/// `model` is the trained energy model driving the DTA. The node should be
/// the same for all three runs, as in the paper ("execute the benchmark on
/// the same compute node").
pub fn compare_static_dynamic(
    bench: &BenchmarkSpec,
    node: &Node,
    model: &EnergyModel,
) -> Result<BenchmarkComparison, ComparisonError> {
    let default_cfg = SystemConfig::taurus_default();
    let default = RuntimeSession::static_run("table6-default", bench, node, default_cfg)?.record;

    // ---- static tuning: exhaustive search for the best configuration.
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let (static_cfg, _) =
        ptf::exhaustive::search_static(bench, node, &space, TuningObjective::Energy);
    let static_rec = RuntimeSession::static_run("table6-static", bench, node, static_cfg)?.record;

    // ---- dynamic tuning: staged session → tuning model → runtime session.
    let advice = TuningSession::builder(node).with_model(model).run(bench)?;
    let tm = advice.tuning_model;

    // Production instrumentation: compile-time filtered.
    let profile_run = InstrumentedApp::new(bench, node, InstrumentationConfig::scorep_defaults())
        .run(&mut StaticHook(default_cfg));
    let filter = autofilter(&profile_run.profile, DEFAULT_FILTER_THRESHOLD_S);
    let inst = InstrumentationConfig::scorep_defaults().with_filter(filter);

    let served = ServedModel {
        model: tm.clone(),
        source: ModelSource::Repository,
        provenance: None,
    };
    let mut session =
        RuntimeSession::start_from("table6-dynamic", bench, node, served, default_cfg)?
            .with_instrumentation(inst);
    session.run_to_completion()?;
    let dynamic = session.finish()?;
    let dynamic_rec = dynamic.record;

    // ---- overhead decomposition (Section V-E).
    let t_config = config_setting_time_s(bench, node, &tm);
    let perf_reduction_config_pct = 100.0 * (default.elapsed_s - t_config) / default.elapsed_s;
    let total_time_pct = 100.0 * (default.elapsed_s - dynamic_rec.elapsed_s) / default.elapsed_s;
    let overhead_pct = total_time_pct - perf_reduction_config_pct;

    Ok(BenchmarkComparison {
        benchmark: bench.name.clone(),
        static_config: static_cfg,
        static_savings: Savings::between(&default, &static_rec),
        dynamic_savings: Savings::between(&default, &dynamic_rec),
        perf_reduction_config_pct,
        overhead_dvfs_ufs_scorep_pct: overhead_pct,
        switches: dynamic.switches,
        scenarios: tm.scenario_count(),
        dynamic_accounting: dynamic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_sign_convention() {
        let default = JobRecord {
            job_energy_j: 100.0,
            cpu_energy_j: 50.0,
            elapsed_s: 10.0,
        };
        let tuned = JobRecord {
            job_energy_j: 90.0,
            cpu_energy_j: 40.0,
            elapsed_s: 11.0,
        };
        let s = Savings::between(&default, &tuned);
        assert!((s.job_energy_pct - 10.0).abs() < 1e-12);
        assert!((s.cpu_energy_pct - 20.0).abs() < 1e-12);
        assert!(
            (s.time_pct + 10.0).abs() < 1e-12,
            "slower run → negative time saving"
        );
    }

    #[test]
    fn config_time_uses_tuning_model() {
        let bench = kernels::benchmark("miniMD").unwrap();
        let node = Node::exact(0);
        // Model that slows everything down massively.
        let slow = TuningModel::new(
            "miniMD",
            &[("compute_force".into(), SystemConfig::new(24, 1200, 1300))],
            SystemConfig::new(24, 1200, 1300),
        );
        let fast = TuningModel::new(
            "miniMD",
            &[("compute_force".into(), SystemConfig::taurus_default())],
            SystemConfig::taurus_default(),
        );
        let t_slow = config_setting_time_s(&bench, &node, &slow);
        let t_fast = config_setting_time_s(&bench, &node, &fast);
        assert!(t_slow > 1.5 * t_fast);
    }

    #[test]
    fn full_comparison_on_minimd() {
        let node = Node::exact(0);
        let model = EnergyModel::train_paper(&kernels::training_set(), &node);
        let bench = kernels::benchmark("miniMD").unwrap();
        let cmp = compare_static_dynamic(&bench, &node, &model).expect("session succeeds");

        // Static optimum matches Table V.
        assert_eq!(cmp.static_config, SystemConfig::new(24, 2500, 1500));
        // Both tuning modes save CPU energy; dynamic saves at least as
        // much as static (the paper's headline result).
        assert!(cmp.static_savings.cpu_energy_pct > 0.0, "{cmp:?}");
        assert!(cmp.dynamic_savings.cpu_energy_pct > 0.0, "{cmp:?}");
        assert!(
            cmp.dynamic_savings.cpu_energy_pct >= cmp.static_savings.cpu_energy_pct - 1.0,
            "dynamic {:.2} vs static {:.2}",
            cmp.dynamic_savings.cpu_energy_pct,
            cmp.static_savings.cpu_energy_pct
        );
        // Dynamic run pays overhead: time saving below static's.
        assert!(cmp.dynamic_savings.time_pct <= cmp.static_savings.time_pct + 1e-9);
        // Overhead column is a cost (≤ 0) and bounded (< 10 % of runtime).
        assert!(cmp.overhead_dvfs_ufs_scorep_pct <= 0.5, "{cmp:?}");
        assert!(cmp.overhead_dvfs_ufs_scorep_pct > -10.0, "{cmp:?}");
        assert!(cmp.switches > 0);
        assert!(cmp.scenarios >= 1);
        // The dynamic accounting carries a per-region breakdown that
        // reconstructs the job totals.
        let acc = &cmp.dynamic_accounting;
        assert!(!acc.regions.is_empty());
        let reconstructed = acc.regions_time_s() + acc.switch_time_s;
        assert!(
            (reconstructed - acc.record.elapsed_s).abs() < 1e-9,
            "region times + switch time must equal elapsed: {reconstructed} vs {}",
            acc.record.elapsed_s
        );
    }

    /// PR 9's `RegionColumns` flatten must be invisible here: the
    /// comparison is a pure function of its inputs, its sacct rendering
    /// is byte-stable across runs, and the per-region breakdown survives
    /// a row round trip and the JSON wire format unchanged.
    #[test]
    fn comparison_is_stable_across_the_region_flatten() {
        let node = Node::exact(0);
        let model = EnergyModel::train_paper(&kernels::training_set(), &node);
        let bench = kernels::benchmark("miniMD").unwrap();
        let first = compare_static_dynamic(&bench, &node, &model).expect("session succeeds");
        let second = compare_static_dynamic(&bench, &node, &model).expect("session succeeds");

        assert_eq!(
            first.dynamic_accounting, second.dynamic_accounting,
            "accounting must be bit-identical across reruns"
        );
        assert_eq!(
            first.dynamic_accounting.format_sacct(),
            second.dynamic_accounting.format_sacct(),
            "sacct rendering must be byte-identical across reruns"
        );

        let acc = &first.dynamic_accounting;
        let rows = acc.regions.rows();
        assert!(!rows.is_empty());
        assert_eq!(crate::RegionColumns::from_rows(rows.clone()), acc.regions);
        let json = serde_json::to_string(&acc.regions).expect("render");
        assert_eq!(
            json,
            serde_json::to_string(&rows).expect("render"),
            "columns must serialise exactly like the row vector"
        );
        let decoded: crate::RegionColumns = serde_json::from_str(&json).expect("parse");
        assert_eq!(decoded, acc.regions);
    }

    #[test]
    fn comparison_error_wraps_both_sides() {
        use std::error::Error as _;
        let t: ComparisonError = TuningError::MissingModel { strategy: "x" }.into();
        assert!(format!("{t}").contains("design-time"));
        assert!(t.source().is_some());
        let r: ComparisonError = RuntimeError::EmptyCluster.into();
        assert!(format!("{r}").contains("runtime"));
        assert!(r.source().is_some());
    }
}
