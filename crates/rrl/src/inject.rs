//! Deterministic fault injection for the cluster runtime.
//!
//! The scenario engine (`testkit`) needs to drive the runtime through its
//! unhappy paths — jobs dying mid-run, calibrations that cannot converge,
//! workloads drifting away from their published expectations — without a
//! `cfg(test)` fork of either event loop. [`FaultInjector`] is that seam:
//! one trait object threaded into [`ClusterScheduler::run`] /
//! [`run_parallel`](crate::ClusterScheduler::run_parallel) (via
//! [`ClusterScheduler::with_faults`](crate::ClusterScheduler::with_faults))
//! and into the [`OnlineTuner`](crate::OnlineTuner), consulted at the
//! three points where a real cluster misbehaves:
//!
//! * **Job abort** — [`FaultInjector::abort_phase`]: the job stops at
//!   phase iteration *k* (truncated run, accounting collected up to the
//!   abort, savings compared against an equally truncated baseline). A
//!   calibration *leader* that aborts before converging fails its
//!   workload's calibration, so same-workload followers degrade to the
//!   fallback — in both event loops.
//! * **Calibration failure** — [`FaultInjector::fail_calibration`]: a
//!   cold workload's calibration is refused at admission, exactly like an
//!   exploration-budget failure (the leader runs degraded, followers
//!   serve the fallback).
//! * **Drift shift** — [`FaultInjector::drift_scale`]: the per-region
//!   energy a monitoring job feeds its
//!   [`DriftDetector`](crate::DriftDetector) is scaled by the returned
//!   factor, simulating a workload that shifted away from the published
//!   expectations mid-run. The job's *accounting* is untouched — only the
//!   detector's view shifts, so the fault exercises detection and scoped
//!   re-calibration, not the ledger.
//!
//! Every hook is a pure function of the job identity (name, region,
//! iteration), never of wall-clock time or thread identity — which is
//! what keeps a faulted parallel run bit-identical to the same faulted
//! sequential run, and any faulted run bit-identical to its replay.
//!
//! [`ClusterScheduler::run`]: crate::ClusterScheduler::run
//!
//! The discrete-event service
//! ([`ClusterScheduler::run_service`](crate::ClusterScheduler::run_service))
//! additionally consults [`FaultInjector::node_churn`] once at start-up
//! for the run's node join/drain/fail schedule, honored mid-run at the
//! scheduled virtual timestamps.

use serde::{Deserialize, Serialize};

/// What happens to a node at a [`ChurnEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node (re-)joins the fleet and accepts placements again.
    Join,
    /// The node stops accepting work; queued jobs are re-placed, running
    /// jobs finish normally.
    Drain,
    /// The node fails: queued jobs are re-placed, running jobs are
    /// truncated at their next phase boundary (accounting collected up to
    /// the truncation, like an abort).
    Fail,
}

/// One scheduled node-membership change for a service run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Virtual timestamp of the change, seconds from service start.
    pub at_s: f64,
    /// Fleet node index the change applies to.
    pub node: u32,
    /// Join, drain, or fail.
    pub kind: ChurnKind,
}

/// What happens to a replica at a [`ReplicaChurnEvent`]'s timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicaChurnKind {
    /// The replica crashes: its repository, replication log and version
    /// vector are lost, its sessions (both directions) die, and jobs
    /// route to the next alive replica until it restarts.
    Crash,
    /// The replica restarts empty and catches up from its peers: every
    /// link is born dirty again, so the first gossip rounds after the
    /// restart replay the fleet's winners into it.
    Restart,
}

/// One scheduled replica crash or restart for an in-loop replicated
/// service run (see `ClusterScheduler::run_service_replicated`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicaChurnEvent {
    /// Virtual timestamp of the change, seconds from service start.
    pub at_s: f64,
    /// Replica id the change applies to.
    pub replica: u32,
    /// Crash or restart.
    pub kind: ReplicaChurnKind,
}

/// Deterministic fault decisions for one scheduler run.
///
/// Implementations must be `Sync` (one injector serves every worker of a
/// parallel run) and must answer from the *arguments alone* so the two
/// event loops — and two runs of the same scenario — observe identical
/// faults. All hooks default to "no fault"; implement only the kinds a
/// scenario uses.
pub trait FaultInjector: Sync {
    /// Abort `job` when it reaches this phase iteration: the job runs
    /// `min(abort_phase, bench.phase_iterations)` iterations and then
    /// finishes normally (truncated accounting, truncated baseline).
    /// Values are clamped to ≥ 1 — a job always runs at least one phase.
    /// `None` (the default) lets the job run to completion.
    fn abort_phase(&self, job: &str) -> Option<u32> {
        let _ = job;
        None
    }

    /// Refuse `job`'s cold-workload calibration at admission, as if its
    /// exploration plan had not fit the phase loop. The job runs degraded
    /// on the calibration fallback path; same-workload followers do too.
    fn fail_calibration(&self, job: &str) -> bool {
        let _ = job;
        false
    }

    /// Factor applied to the region energy `job` feeds its drift detector
    /// for `region` at phase `iteration` (1.0 = no shift). Return e.g.
    /// 1.5 from iteration *k* onwards to simulate a mid-run workload
    /// shift that fires the detector.
    fn drift_scale(&self, job: &str, region: &str, iteration: u32) -> f64 {
        let _ = (job, region, iteration);
        1.0
    }

    // ----- replication transport hooks (see `crate::net::transport`) ----
    //
    // The simulated transport consults these per message. Like the
    // scheduler hooks above they must be pure functions of their
    // arguments — here the monotone message id (and, for partitions, the
    // virtual tick) — so a faulted replication run is bit-identical to
    // its replay. All default to a healthy network.

    /// Extra delivery delay for the message, in virtual ticks, on top of
    /// the transport's 1-tick minimum. Varying this per message id is
    /// what reorders deliveries.
    fn delay_ticks(&self, msg_id: u64) -> u64 {
        let _ = msg_id;
        0
    }

    /// Drop the message entirely (it is counted, never delivered).
    fn drop_message(&self, msg_id: u64) -> bool {
        let _ = msg_id;
        false
    }

    /// Deliver the message twice: a duplicate copy is scheduled one tick
    /// after the original.
    fn duplicate_message(&self, msg_id: u64) -> bool {
        let _ = msg_id;
        false
    }

    /// Whether the link `from → to` is partitioned at virtual `tick`.
    /// Messages sent across a partitioned link are dropped at the
    /// sender (and counted as partitioned, not as plain drops).
    fn partitioned(&self, tick: u64, from: u32, to: u32) -> bool {
        let _ = (tick, from, to);
        false
    }

    // ----- service churn hook (see `ClusterScheduler::run_service`) -----

    /// The node join/drain/fail schedule for a discrete-event service
    /// run. Consulted once at service start; every event fires at its
    /// virtual timestamp regardless of what the cluster is doing. The
    /// default is a stable fleet.
    fn node_churn(&self) -> Vec<ChurnEvent> {
        Vec::new()
    }

    /// The replica crash/restart schedule for an in-loop replicated
    /// service run (`ClusterScheduler::run_service_replicated`).
    /// Consulted once at service start, like [`node_churn`]; every event
    /// fires at its virtual timestamp. The default is a stable replica
    /// set.
    ///
    /// [`node_churn`]: FaultInjector::node_churn
    fn replica_churn(&self) -> Vec<ReplicaChurnEvent> {
        Vec::new()
    }
}

/// The no-fault injector: every hook answers "healthy".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let f = NoFaults;
        assert_eq!(f.abort_phase("j"), None);
        assert!(!f.fail_calibration("j"));
        assert_eq!(f.drift_scale("j", "r", 3), 1.0);
        assert_eq!(f.delay_ticks(7), 0);
        assert!(!f.drop_message(7));
        assert!(!f.duplicate_message(7));
        assert!(!f.partitioned(0, 1, 2));
        assert!(f.node_churn().is_empty());
        assert!(f.replica_churn().is_empty());
    }

    #[test]
    fn churn_events_round_trip_through_serde() {
        let event = ChurnEvent {
            at_s: 12.5,
            node: 3,
            kind: ChurnKind::Drain,
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: ChurnEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);

        let event = ReplicaChurnEvent {
            at_s: 30.0,
            replica: 1,
            kind: ReplicaChurnKind::Crash,
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: ReplicaChurnEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn injectors_are_object_safe_and_sync() {
        fn takes(_: &dyn FaultInjector) {}
        fn sync<T: Sync>(_: &T) {}
        takes(&NoFaults);
        sync(&NoFaults);
    }
}
