//! The event-driven runtime session.
//!
//! [`RuntimeSession`] is the runtime mirror of the design-time
//! `TuningSession`: one handle per job, driven by explicit Score-P-shaped
//! events. `region_enter` resolves the region through the tuning model's
//! scenario classifier and switches the node's frequency/thread
//! configuration through the PCPs (charging the Section V-E transition
//! latencies); `region_exit` executes the region instance under the
//! applied configuration and accounts its time and energy per region;
//! `phase_complete` advances the phase loop; `finish` integrates the
//! accumulated power trace through the HDEEM sensor and returns the full
//! [`JobAccounting`]. Every transition returns
//! `Result<_, `[`RuntimeError`]`>` — mis-sequenced events, unknown
//! regions and unservable configurations are values, not panics.
//!
//! ```text
//! let served = repository.serve(&bench)?;          // model or fallback
//! let mut job = RuntimeSession::start("job-1", &bench, &node, served)?;
//! for _ in 0..bench.phase_iterations {
//!     for region in &bench.regions {
//!         job.region_enter(&region.name)?;         // classify + switch
//!         job.region_exit(&region.name)?;          // execute + account
//!     }
//!     job.phase_complete()?;
//! }
//! let accounting = job.finish()?;                  // sacct-style record
//! ```
//!
//! Accounting is deterministic and *interleaving-independent*: the HDEEM
//! measurement noise is seeded from the job name, the workload
//! fingerprint and the node id, so a session multiplexed among many
//! others by the [`crate::ClusterScheduler`] produces bit-identical
//! results to the same session run alone. The property holds across
//! *threads* as well as sweep orders — it is what lets
//! [`ClusterScheduler::run_parallel`](crate::ClusterScheduler::run_parallel)
//! drive sessions on concurrent workers and still match the sequential
//! event loop bit for bit.

use kernels::BenchmarkSpec;
use ptf::TuningModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scorep_lite::region::RegionKind;
use scorep_lite::{InstrumentationConfig, PcpStack};
use simnode::{ExecutionEngine, HdeemSensor, Node, SystemConfig};

use crate::error::RuntimeError;
use crate::repository::{ModelSource, ServedModel};
use crate::sacct::{JobAccounting, JobRecord, RegionColumns};

/// What one `region_exit` charged to the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionExit {
    /// Configuration the instance executed under.
    pub config: SystemConfig,
    /// Wall time charged, including residual instrumentation overhead,
    /// seconds.
    pub duration_s: f64,
    /// Node energy charged, joules.
    pub node_energy_j: f64,
    /// CPU (RAPL) energy charged, joules.
    pub cpu_energy_j: f64,
    /// Whether the region ran uninstrumented because of the filter file.
    pub filtered: bool,
}

struct OpenRegion {
    name: String,
    /// Index into `bench.regions`, resolved and validated at enter time.
    idx: usize,
    filtered: bool,
}

/// A per-job runtime tuning session (see the module docs for the event
/// protocol).
pub struct RuntimeSession<'a> {
    job: String,
    bench: &'a BenchmarkSpec,
    node: &'a Node,
    model: TuningModel,
    source: ModelSource,
    inst: InstrumentationConfig,
    engine: ExecutionEngine,
    pcps: PcpStack,
    /// Piecewise-constant node-power trace for the HDEEM integration.
    segments: Vec<(f64, f64)>,
    regions: RegionColumns,
    open: Option<OpenRegion>,
    phase_iter: u32,
    wall_s: f64,
    rapl_j: f64,
    instr_overhead_s: f64,
    lookups: u64,
    distinct_requests: u64,
    last_requested: Option<SystemConfig>,
    seed: u64,
}

impl<'a> RuntimeSession<'a> {
    /// Start a session for `job` running `bench` on `node` under the
    /// served model, from the platform-default configuration (what a
    /// freshly launched SLURM job starts at).
    pub fn start(
        job: impl Into<String>,
        bench: &'a BenchmarkSpec,
        node: &'a Node,
        served: ServedModel,
    ) -> Result<Self, RuntimeError> {
        Self::start_from(job, bench, node, served, SystemConfig::taurus_default())
    }

    /// [`Self::start`] from an explicit initial configuration (e.g. a job
    /// launched directly at its static optimum).
    pub fn start_from(
        job: impl Into<String>,
        bench: &'a BenchmarkSpec,
        node: &'a Node,
        served: ServedModel,
        initial: SystemConfig,
    ) -> Result<Self, RuntimeError> {
        let ServedModel { model, source, .. } = served;
        // Validate everything the model can ever serve up front, so no
        // later event can fail on an unapplicable configuration.
        for scenario in &model.scenarios {
            if !node.supports(&scenario.config) {
                return Err(RuntimeError::UnsupportedConfig {
                    application: model.application.clone(),
                    config: scenario.config,
                });
            }
        }
        if !node.supports(&model.phase_config) {
            return Err(RuntimeError::UnsupportedConfig {
                application: model.application.clone(),
                config: model.phase_config,
            });
        }
        // The launch configuration is the caller's, not the model's —
        // blame it separately so a bad launcher doesn't read as a corrupt
        // stored model.
        if !node.supports(&initial) {
            return Err(RuntimeError::UnsupportedInitial { config: initial });
        }
        node.apply_frequencies(&initial);
        let job = job.into();
        let seed = kernels::fnv1a(job.as_bytes())
            ^ bench.fingerprint()
            ^ u64::from(node.id()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ok(Self {
            job,
            bench,
            node,
            model,
            source,
            inst: InstrumentationConfig::scorep_defaults(),
            engine: ExecutionEngine::new(),
            pcps: PcpStack::new(initial),
            segments: Vec::new(),
            regions: RegionColumns::new(),
            open: None,
            phase_iter: 0,
            wall_s: 0.0,
            rapl_j: 0.0,
            instr_overhead_s: 0.0,
            lookups: 0,
            distinct_requests: 0,
            last_requested: None,
            seed,
        })
    }

    /// Replace the instrumentation settings (builder form — call before
    /// the first event). Production RRL runs default to
    /// [`InstrumentationConfig::scorep_defaults`]; pass
    /// [`InstrumentationConfig::uninstrumented`] for plain static runs or
    /// a filtered config for compile-time-filtered binaries.
    #[must_use]
    pub fn with_instrumentation(mut self, inst: InstrumentationConfig) -> Self {
        self.inst = inst;
        self
    }

    /// The job name this session accounts under.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The benchmark this session executes.
    pub fn bench(&self) -> &'a BenchmarkSpec {
        self.bench
    }

    /// The node this session executes on.
    pub fn node(&self) -> &'a Node {
        self.node
    }

    /// Provenance of the model this session resolves scenarios against.
    pub fn source(&self) -> ModelSource {
        self.source
    }

    /// The deterministic per-job seed (job name ⊕ workload fingerprint ⊕
    /// node id) — shared with the online tuner's explore schedule.
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// The tuning model in use.
    pub fn model(&self) -> &TuningModel {
        &self.model
    }

    /// Configuration currently applied on the node.
    pub fn current_config(&self) -> SystemConfig {
        self.pcps.current()
    }

    /// Phase iteration the next region event executes in.
    pub fn phase_iteration(&self) -> u32 {
        self.phase_iter
    }

    /// Virtual wall time accumulated so far (region durations plus
    /// configuration-switch latencies) — what `finish` will report as
    /// `elapsed_s`. The discrete-event service reads this after every
    /// event to place the *next* event on the virtual timeline.
    pub fn elapsed_s(&self) -> f64 {
        self.wall_s
    }

    /// Scenario lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that requested a configuration different from the previous
    /// request (upper bound on hardware switches).
    pub fn distinct_requests(&self) -> u64 {
        self.distinct_requests
    }

    /// Configuration switches actually performed.
    pub fn switches(&self) -> u64 {
        self.pcps.switches()
    }

    /// Region-enter event: classify the region into its scenario and
    /// drive the node to that scenario's configuration through the PCPs.
    /// The transition latency (21 µs core / 20 µs uncore, Section V-E) is
    /// charged to the job's wall time. Returns the configuration the
    /// region will execute under.
    ///
    /// Filtered regions generate no event in a real Score-P binary; here
    /// they skip the lookup and the switch and simply run under the
    /// current configuration.
    pub fn region_enter(&mut self, region: &str) -> Result<SystemConfig, RuntimeError> {
        let (idx, filtered) = self.resolve_enter(region)?;
        let config = if filtered {
            self.pcps.current()
        } else {
            self.lookups += 1;
            let desired = self.model.lookup(region);
            self.switch_to(desired);
            desired
        };
        self.open = Some(OpenRegion {
            name: region.to_string(),
            idx,
            filtered,
        });
        Ok(config)
    }

    /// Region-enter event with an explicitly requested configuration,
    /// bypassing the tuning model's scenario lookup — the exploration
    /// primitive the [`crate::OnlineTuner`] drives candidate measurements
    /// through. Protocol checks, filtering and switch-latency accounting
    /// are identical to [`Self::region_enter`]; the request does not count
    /// as a scenario lookup. The configuration must be applicable on this
    /// node.
    pub fn region_enter_at(
        &mut self,
        region: &str,
        config: SystemConfig,
    ) -> Result<SystemConfig, RuntimeError> {
        if !self.node.supports(&config) {
            return Err(RuntimeError::UnsupportedConfig {
                application: self.bench.name.clone(),
                config,
            });
        }
        let (idx, filtered) = self.resolve_enter(region)?;
        let applied = if filtered {
            self.pcps.current()
        } else {
            self.switch_to(config);
            config
        };
        self.open = Some(OpenRegion {
            name: region.to_string(),
            idx,
            filtered,
        });
        Ok(applied)
    }

    /// Shared `region_enter*` protocol checks: no region may be open, and
    /// the region must exist in the benchmark. Returns the region index
    /// and whether the instrumentation filter hides it.
    fn resolve_enter(&self, region: &str) -> Result<(usize, bool), RuntimeError> {
        if let Some(open) = &self.open {
            return Err(RuntimeError::RegionStillOpen {
                open: open.name.clone(),
                event: format!("region_enter(`{region}`)"),
            });
        }
        let Some(idx) = self.bench.regions.iter().position(|r| r.name == region) else {
            return Err(RuntimeError::UnknownRegion {
                application: self.bench.name.clone(),
                region: region.to_string(),
            });
        };
        Ok((idx, self.inst.is_filtered(region)))
    }

    /// Drive the node to `desired` through the PCPs, charging the
    /// transition latency to the job's wall time.
    fn switch_to(&mut self, desired: SystemConfig) {
        if self.last_requested != Some(desired) {
            self.distinct_requests += 1;
            self.last_requested = Some(desired);
        }
        let latency = self.pcps.apply(self.node, desired);
        if latency > 0.0 {
            // The switch stalls execution: wall time only, no power
            // segment (HDEEM integrates region power over regions).
            self.wall_s += latency;
        }
    }

    /// Region-exit event: execute the open region's current phase
    /// instance under the applied configuration, stretch it by the
    /// residual instrumentation overhead of its kind, and account time
    /// and energy to the job and to the region's breakdown entry.
    pub fn region_exit(&mut self, region: &str) -> Result<RegionExit, RuntimeError> {
        let open = self.open.take().ok_or_else(|| RuntimeError::NoOpenRegion {
            requested: region.to_string(),
        })?;
        if open.name != region {
            let err = RuntimeError::RegionMismatch {
                open: open.name.clone(),
                requested: region.to_string(),
            };
            self.open = Some(open);
            return Err(err);
        }
        // Resolved and validated by `region_enter`.
        let spec = &self.bench.regions[open.idx];
        let config = self.pcps.current();
        let run = self
            .engine
            .run_region(&spec.character_at(self.phase_iter), &config, self.node);

        let (duration, node_j, cpu_j, overhead) = if open.filtered {
            (run.duration_s, run.node_energy_j, run.cpu_energy_j, 0.0)
        } else {
            let frac = self.inst.overhead_frac(RegionKind::infer(region));
            let stretched = run.duration_s * (1.0 + frac) + self.inst.probe_cost_s;
            (
                stretched,
                run.power.node_w() * stretched,
                run.power.cpu_w() * stretched,
                stretched - run.duration_s,
            )
        };

        self.wall_s += duration;
        self.instr_overhead_s += overhead;
        self.rapl_j += cpu_j;
        self.segments.push((run.power.node_w(), duration));

        self.regions.accumulate(region, duration, node_j, cpu_j);

        Ok(RegionExit {
            config,
            duration_s: duration,
            node_energy_j: node_j,
            cpu_energy_j: cpu_j,
            filtered: open.filtered,
        })
    }

    /// Phase-complete event: the main loop finished one iteration.
    /// Returns the new phase iteration index.
    pub fn phase_complete(&mut self) -> Result<u32, RuntimeError> {
        if let Some(open) = &self.open {
            return Err(RuntimeError::RegionStillOpen {
                open: open.name.clone(),
                event: "phase_complete".to_string(),
            });
        }
        self.phase_iter += 1;
        Ok(self.phase_iter)
    }

    /// Drive the remaining phase iterations of the benchmark's phase loop
    /// through the event protocol (enter/exit every region in program
    /// order, then complete the phase).
    pub fn run_to_completion(&mut self) -> Result<(), RuntimeError> {
        let bench = self.bench;
        while self.phase_iter < bench.phase_iterations {
            for region in &bench.regions {
                self.region_enter(&region.name)?;
                self.region_exit(&region.name)?;
            }
            self.phase_complete()?;
        }
        Ok(())
    }

    /// Finish the job: integrate the accumulated node-power trace through
    /// the HDEEM sensor (1 kSa/s, 5 ms start delay) and return the
    /// post-mortem accounting. The measurement noise is seeded from the
    /// job identity, so the result does not depend on what other sessions
    /// ran on the node in between.
    pub fn finish(self) -> Result<JobAccounting, RuntimeError> {
        if let Some(open) = &self.open {
            return Err(RuntimeError::RegionStillOpen {
                open: open.name.clone(),
                event: "finish".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let job_energy_j = HdeemSensor::taurus()
            .measure_trace(&self.segments, &mut rng)
            .energy_j;
        Ok(JobAccounting {
            job: self.job,
            node_id: self.node.id(),
            record: JobRecord {
                job_energy_j,
                cpu_energy_j: self.rapl_j,
                elapsed_s: self.wall_s,
            },
            regions: self.regions,
            switches: self.pcps.switches(),
            switch_time_s: self.pcps.total_latency_s(),
            instr_overhead_s: self.instr_overhead_s,
            scenario_lookups: self.lookups,
            source: self.source,
            online: None,
        })
    }

    /// Uninstrumented production run at one fixed configuration — the
    /// replacement for the legacy `run_static`: launches at `config`, so
    /// no switches occur, and returns the accounting record.
    pub fn static_run(
        job: impl Into<String>,
        bench: &BenchmarkSpec,
        node: &Node,
        config: SystemConfig,
    ) -> Result<JobAccounting, RuntimeError> {
        let served = ServedModel::fallback(TuningModel::new(&bench.name, &[], config));
        let mut session = RuntimeSession::start_from(job, bench, node, served, config)?
            .with_instrumentation(InstrumentationConfig::uninstrumented());
        session.run_to_completion()?;
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lulesh_model() -> TuningModel {
        TuningModel::new(
            "Lulesh",
            &[
                (
                    "IntegrateStressForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                (
                    "CalcKinematicsForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
            ],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    fn served() -> ServedModel {
        ServedModel {
            model: lulesh_model(),
            source: ModelSource::Repository,
            provenance: None,
        }
    }

    #[test]
    fn event_protocol_enforced() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let mut s = RuntimeSession::start("j", &bench, &node, served()).unwrap();

        assert!(matches!(
            s.region_exit("CalcQForElems"),
            Err(RuntimeError::NoOpenRegion { .. })
        ));
        assert!(matches!(
            s.region_enter("nonexistent"),
            Err(RuntimeError::UnknownRegion { .. })
        ));
        s.region_enter("CalcQForElems").unwrap();
        assert!(matches!(
            s.region_enter("CalcQForElems"),
            Err(RuntimeError::RegionStillOpen { .. })
        ));
        assert!(matches!(
            s.region_exit("CalcKinematicsForElems"),
            Err(RuntimeError::RegionMismatch { .. })
        ));
        assert!(matches!(
            s.phase_complete(),
            Err(RuntimeError::RegionStillOpen { .. })
        ));
        // The mismatch left the region open; the correct exit still works.
        s.region_exit("CalcQForElems").unwrap();
        assert_eq!(s.phase_complete().unwrap(), 1);
        // Finishing with an open region is an error too.
        s.region_enter("CalcQForElems").unwrap();
        assert!(matches!(
            s.finish(),
            Err(RuntimeError::RegionStillOpen { .. })
        ));
    }

    #[test]
    fn enter_switches_to_scenario_config() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let mut s = RuntimeSession::start("j", &bench, &node, served()).unwrap();
        let cfg = s.region_enter("CalcKinematicsForElems").unwrap();
        assert_eq!(cfg, SystemConfig::new(24, 2400, 2000));
        assert_eq!(s.current_config(), cfg);
        let exit = s.region_exit("CalcKinematicsForElems").unwrap();
        assert_eq!(exit.config, cfg);
        assert!(exit.duration_s > 0.0);
        // Unknown region resolves to the phase config.
        let cfg2 = s.region_enter("CalcQForElems").unwrap();
        assert_eq!(cfg2, SystemConfig::new(24, 2500, 2100));
        assert_eq!(s.lookups(), 2);
        assert_eq!(s.distinct_requests(), 2);
        assert_eq!(s.switches(), 2);
    }

    #[test]
    fn enter_at_applies_explicit_config_without_lookup() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let mut s = RuntimeSession::start("j", &bench, &node, served()).unwrap();
        let explored = SystemConfig::new(20, 2100, 1800);
        let cfg = s.region_enter_at("CalcQForElems", explored).unwrap();
        assert_eq!(cfg, explored);
        assert_eq!(s.current_config(), explored);
        let exit = s.region_exit("CalcQForElems").unwrap();
        assert_eq!(exit.config, explored);
        assert_eq!(s.lookups(), 0, "explicit requests are not scenario lookups");
        assert_eq!(s.switches(), 1);
        // Unsupported explicit requests are rejected before any state
        // changes; the protocol stays intact.
        assert!(matches!(
            s.region_enter_at("CalcQForElems", SystemConfig::new(48, 2100, 1800)),
            Err(RuntimeError::UnsupportedConfig { .. })
        ));
        s.region_enter("CalcQForElems").unwrap();
        s.region_exit("CalcQForElems").unwrap();
    }

    #[test]
    fn unsupported_model_config_rejected_at_start() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let bad = ServedModel {
            model: TuningModel::new(
                "Lulesh",
                &[("CalcQForElems".into(), SystemConfig::new(24, 2600, 2000))],
                SystemConfig::new(24, 2500, 2100),
            ),
            source: ModelSource::Repository,
            provenance: None,
        };
        assert!(matches!(
            RuntimeSession::start("j", &bench, &node, bad),
            Err(RuntimeError::UnsupportedConfig { .. })
        ));
        let bad_phase = ServedModel {
            model: TuningModel::new("Lulesh", &[], SystemConfig::new(48, 2500, 2100)),
            source: ModelSource::Fallback,
            provenance: None,
        };
        assert!(matches!(
            RuntimeSession::start("j", &bench, &node, bad_phase),
            Err(RuntimeError::UnsupportedConfig { .. })
        ));
        // A bad *launch* configuration is the caller's fault and is
        // reported as such, not as a corrupt model.
        assert!(matches!(
            RuntimeSession::start_from(
                "j",
                &bench,
                &node,
                served(),
                SystemConfig::new(24, 2550, 3000)
            ),
            Err(RuntimeError::UnsupportedInitial { .. })
        ));
    }

    #[test]
    fn accounting_matches_instrumented_app() {
        // The event-driven session must reproduce the monolithic
        // InstrumentedApp run bit-for-bit on the deterministic
        // quantities (wall time, CPU energy, switches).
        use scorep_lite::instrument::TuningHook;
        use scorep_lite::InstrumentedApp;
        use simnode::RegionRun;

        struct ModelHook(TuningModel);
        impl TuningHook for ModelHook {
            fn config_for(&mut self, r: &str, _i: u32, _c: SystemConfig) -> SystemConfig {
                self.0.lookup(r)
            }
            fn on_region(&mut self, _r: &str, _i: u32, _run: &RegionRun) {}
        }

        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let reference = app.run(&mut ModelHook(lulesh_model()));

        let mut s = RuntimeSession::start("j", &bench, &node, served()).unwrap();
        s.run_to_completion().unwrap();
        let acc = s.finish().unwrap();

        assert_eq!(acc.record.elapsed_s, reference.wall_time_s);
        assert_eq!(acc.record.cpu_energy_j, reference.cpu_energy_j);
        assert_eq!(acc.switches, reference.switches);
        assert_eq!(acc.switch_time_s, reference.switch_time_s);
        assert_eq!(acc.instr_overhead_s, reference.instr_overhead_s);
        // Job energy differs only by the session-seeded HDEEM noise draw.
        let rel = (acc.record.job_energy_j - reference.job_energy_j).abs() / reference.job_energy_j;
        assert!(rel < 0.01, "HDEEM views diverged: {rel}");
    }

    #[test]
    fn session_is_reproducible() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::new(3, 77);
        let run = || {
            let mut s = RuntimeSession::start("job-42", &bench, &node, served()).unwrap();
            s.run_to_completion().unwrap();
            s.finish().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.record, b.record, "same job identity, same accounting");
        // A different job name draws different HDEEM noise.
        let mut s = RuntimeSession::start("job-43", &bench, &node, served()).unwrap();
        s.run_to_completion().unwrap();
        let c = s.finish().unwrap();
        assert_eq!(a.record.elapsed_s, c.record.elapsed_s);
        assert_ne!(a.record.job_energy_j, c.record.job_energy_j);
    }

    #[test]
    fn filtered_regions_skip_lookup_and_overhead() {
        use scorep_lite::FilterFile;
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let inst = InstrumentationConfig::scorep_defaults()
            .with_filter(FilterFile::from_names(["CalcQForElems"]));
        let mut s = RuntimeSession::start("j", &bench, &node, served())
            .unwrap()
            .with_instrumentation(inst);
        let cfg = s.region_enter("CalcQForElems").unwrap();
        assert_eq!(cfg, SystemConfig::taurus_default(), "no switch");
        let exit = s.region_exit("CalcQForElems").unwrap();
        assert!(exit.filtered);
        assert_eq!(s.lookups(), 0);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn static_run_performs_no_switches() {
        let bench = kernels::benchmark("miniMD").unwrap();
        let node = Node::exact(0);
        let acc = RuntimeSession::static_run("s", &bench, &node, SystemConfig::new(24, 2500, 1500))
            .unwrap();
        assert_eq!(acc.switches, 0);
        assert_eq!(acc.switch_time_s, 0.0);
        assert_eq!(acc.instr_overhead_s, 0.0);
        // Every region event still resolves through the (static) model;
        // none of the lookups produces a switch.
        assert_eq!(
            acc.scenario_lookups,
            u64::from(bench.phase_iterations) * bench.regions.len() as u64
        );
        assert!(acc.record.elapsed_s > 0.0);
        assert!(acc.record.job_energy_j > acc.record.cpu_energy_j);
        assert_eq!(acc.source, ModelSource::Fallback);
    }

    #[test]
    fn dynamic_session_saves_energy_versus_default() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let default =
            RuntimeSession::static_run("d", &bench, &node, SystemConfig::taurus_default()).unwrap();
        let mut s = RuntimeSession::start("t", &bench, &node, served()).unwrap();
        s.run_to_completion().unwrap();
        let tuned = s.finish().unwrap();
        assert!(
            tuned.record.job_energy_j < default.record.job_energy_j,
            "dynamic tuning must save energy: {} vs {}",
            tuned.record.job_energy_j,
            default.record.job_energy_j
        );
        assert!(tuned.switches > u64::from(bench.phase_iterations));
    }
}
