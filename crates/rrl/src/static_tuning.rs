//! Static tuning runs (legacy shim).
//!
//! For the Table VI comparison "the benchmark is first executed with a
//! default configuration of 24 OpenMP threads and 2.5|3.0 GHz … Following
//! this, we manually set the best obtained static configuration and
//! execute the benchmark on the same compute node" — both production runs
//! are *uninstrumented* (no Score-P probes, no RRL).
//!
//! [`run_static`] is kept as a deprecated shim; new code should use
//! [`crate::RuntimeSession::static_run`], which returns the full
//! per-region [`crate::JobAccounting`] and a `Result` instead of relying
//! on infallible inputs.

use kernels::BenchmarkSpec;
use scorep_lite::instrument::StaticHook;
use scorep_lite::{InstrumentationConfig, InstrumentedApp};
use simnode::{Node, SystemConfig};

use crate::sacct::JobRecord;

/// Execute an uninstrumented production run at a fixed configuration and
/// return the accounting record.
#[deprecated(
    since = "0.2.0",
    note = "use `rrl::RuntimeSession::static_run`, which returns per-region accounting and a \
            Result instead of assuming valid inputs"
)]
pub fn run_static(bench: &BenchmarkSpec, node: &Node, config: SystemConfig) -> JobRecord {
    let app = InstrumentedApp::new(bench, node, InstrumentationConfig::uninstrumented());
    let report = app.run_from(&mut StaticHook(config), config, None);
    JobRecord::from_run(&report)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn static_run_at_default_matches_iterated_phase() {
        let bench = kernels::benchmark("miniMD").unwrap();
        let node = Node::exact(0);
        let rec = run_static(&bench, &node, SystemConfig::taurus_default());
        assert!(rec.elapsed_s > 0.0);
        assert!(rec.job_energy_j > rec.cpu_energy_j);
    }

    #[test]
    fn tuned_static_config_saves_energy_on_minimd() {
        let bench = kernels::benchmark("miniMD").unwrap();
        let node = Node::exact(0);
        let default = run_static(&bench, &node, SystemConfig::taurus_default());
        // Table V's static optimum for miniMD.
        let tuned = run_static(&bench, &node, SystemConfig::new(24, 2500, 1500));
        assert!(tuned.job_energy_j < default.job_energy_j);
        assert!(tuned.cpu_energy_j < default.cpu_energy_j);
        // Compute-bound at the same CF: modest time change (the simulator
        // charges ~7 % for the uncore drop where the paper measured ~0 %;
        // see EXPERIMENTS.md).
        let dt = (tuned.elapsed_s - default.elapsed_s).abs() / default.elapsed_s;
        assert!(dt < 0.10, "time delta {dt}");
    }

    #[test]
    fn shim_agrees_with_runtime_session_static_run() {
        use crate::session::RuntimeSession;
        let bench = kernels::benchmark("miniMD").unwrap();
        let node = Node::exact(0);
        let cfg = SystemConfig::new(24, 2500, 1500);
        let legacy = run_static(&bench, &node, cfg);
        let new = RuntimeSession::static_run("shim", &bench, &node, cfg)
            .expect("static run succeeds")
            .record;
        // Wall time and CPU energy are deterministic and identical; job
        // energy differs only by which RNG drew the HDEEM noise sample.
        assert_eq!(legacy.elapsed_s, new.elapsed_s);
        assert_eq!(legacy.cpu_energy_j, new.cpu_energy_j);
        let rel = (legacy.job_energy_j - new.job_energy_j).abs() / legacy.job_energy_j;
        assert!(rel < 0.01, "HDEEM views diverged: {rel}");
    }
}
