//! Snapshot-serving concurrent tuning-model repository.
//!
//! [`SharedRepository`] is the `&self` counterpart of
//! [`TuningModelRepository`](crate::TuningModelRepository), partitioned
//! across N shards by a hash of the *application* component of the
//! [`ModelKey`]. Hashing the application (not the full key) keeps
//! everything that must stay transactionally consistent shard-local: the
//! per-application version high-water mark, and the candidate set
//! [`MatchPolicy::Application`] resolves against.
//!
//! Since PR 9 the **read path is lock-free**: each shard publishes an
//! immutable [`snapcell::SnapCell`] snapshot of its model map, and
//! `serve`/`serve_stored`/`serve_fallback` (including application-level
//! resolution) run entirely against that snapshot — no lock on a hit.
//! Entry recency (`last_used`) and the shard's LRU clock are atomics
//! shared between the snapshot and its writer, so serve-time touches
//! keep feeding eviction order exactly as the locked path did. Writers
//! (publish / insert / evict / version bump) stay serialized per shard
//! behind a mutex and copy-on-publish a fresh snapshot; see
//! `docs/ARCHITECTURE.md` § "Snapshot serving" for the memory-ordering
//! argument.
//!
//! Serving statistics are kept as double-entry lock-free aggregates:
//! every operation folds the exact [`RepositoryStats`] delta it caused
//! into its shard's atomic tally *and* the repository-wide one, so
//! [`SharedRepository::stats`] equals [`SharedRepository::shard_stats`]
//! at any quiescent point by construction. With a telemetry recorder
//! attached, read operations record a `repo.snapshot_age` histogram
//! (how many publications the served snapshot trailed the shard's
//! latest — 0 unless a publish raced the load) in place of the retired
//! `repo.lock_wait_ns` lock-acquisition timing.
//!
//! The pre-snapshot `RwLock`-striped implementation survives behind
//! [`SharedRepository::new_locked`] as the differential-testing oracle:
//! testkit invariant 8 re-runs every scenario on both backends and
//! asserts per-job bit-identity.
//!
//! The module also hosts the [`CalibrationLatch`]: the shard-level
//! admission gate the parallel
//! [`ClusterScheduler`](crate::ClusterScheduler) event loop uses so that
//! the first job of a cold workload calibrates while same-workload jobs
//! *block on the latch* — not on a global scheduler stall — and resume
//! the moment the leader publishes or fails.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use kernels::BenchmarkSpec;
use obskit::Recorder;
use parking_lot::RwLock;
use ptf::Advice;
use ptf::TuningModel;
use simnode::SystemConfig;
use snapcell::SnapCell;

use crate::error::RuntimeError;
use crate::repository::{
    MatchPolicy, ModelKey, ModelProvenance, ModelSource, RepositoryStats, ServedModel, Shard,
};

/// Lock-free mirror of [`RepositoryStats`], one atomic per field.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    approx_hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
    publications: AtomicU64,
}

impl AtomicStats {
    /// Fold one operation's shard-stat delta into the aggregates.
    fn add(&self, delta: &RepositoryStats) {
        // Relaxed is enough: the counters are monotonic event tallies
        // with no ordering relationship to the model data they describe.
        self.hits.fetch_add(delta.hits, Ordering::Relaxed);
        self.approx_hits
            .fetch_add(delta.approx_hits, Ordering::Relaxed);
        self.misses.fetch_add(delta.misses, Ordering::Relaxed);
        self.fallbacks.fetch_add(delta.fallbacks, Ordering::Relaxed);
        self.errors.fetch_add(delta.errors, Ordering::Relaxed);
        self.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
        self.publications
            .fetch_add(delta.publications, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RepositoryStats {
        RepositoryStats {
            hits: self.hits.load(Ordering::Relaxed),
            approx_hits: self.approx_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            publications: self.publications.load(Ordering::Relaxed),
        }
    }
}

/// How a latched calibration resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationOutcome {
    /// The leader converged and published its model: waiters should
    /// re-serve from the repository and expect a hit.
    Published,
    /// The leader could not calibrate (exploration budget or planning
    /// failure, or its worker aborted): waiters should degrade to the
    /// calibration fallback.
    Failed,
}

/// Non-blocking view of one workload's latch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchStatus {
    /// No calibration was ever claimed for this workload.
    Unclaimed,
    /// A leader holds the claim and has not resolved it yet.
    InFlight,
    /// The claim resolved.
    Done(CalibrationOutcome),
}

#[derive(Debug, Clone, Copy)]
enum LatchState {
    InFlight,
    Done(CalibrationOutcome),
}

/// One latch segment: the claims whose application hashes here.
#[derive(Debug, Default)]
struct LatchShard {
    claims: Mutex<std::collections::BTreeMap<ModelKey, LatchState>>,
    resolved: Condvar,
}

/// The shard-level calibration admission gate.
///
/// One latch entry exists per cold workload (exact [`ModelKey`]). The
/// first claimer ([`CalibrationLatch::begin`]) becomes the *leader* and
/// calibrates; same-workload followers [`wait`](CalibrationLatch::wait)
/// on the entry — parking only their own worker thread, while unrelated
/// workloads keep being admitted — until the leader
/// [`publish`](CalibrationLatch::publish)es or
/// [`fail`](CalibrationLatch::fail)s. Entries are segmented by the same
/// application hash as the repository shards, so contention on one
/// workload's gate never serializes admission of another's.
///
/// Claims are *per run*, mirroring the sequential scheduler's transient
/// `calibrating`/`failed` bookkeeping: the parallel scheduler constructs
/// a fresh latch for every [`run_parallel`](crate::ClusterScheduler::run_parallel)
/// call (matched to the repository's shard count) rather than keeping
/// claims alive across runs, so a workload whose calibration failed once
/// is retried on the next submission wave.
///
/// Resolution is first-writer-wins: once a claim is `Done` its outcome
/// never changes (a belt-and-braces `fail` after a successful `publish`
/// is a no-op), which lets an aborting worker fail every claim it led
/// without clobbering already-published ones.
#[derive(Debug)]
pub struct CalibrationLatch {
    shards: Vec<LatchShard>,
    /// Count of resolutions across *all* segments, with a condvar for
    /// waiters that care about "any resolution at all" rather than one
    /// key: the parallel event loop's blocked-partition parking (see
    /// [`CalibrationLatch::wait_resolution`]).
    epoch: Mutex<u64>,
    any_resolved: Condvar,
}

impl CalibrationLatch {
    /// A latch with `shards` independent segments (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| LatchShard::default()).collect(),
            epoch: Mutex::new(0),
            any_resolved: Condvar::new(),
        }
    }

    fn shard(&self, key: &ModelKey) -> &LatchShard {
        &self.shards[shard_index(&key.application, self.shards.len())]
    }

    /// Claim the calibration of `key`. Returns `true` when the caller is
    /// now the leader; `false` when the workload is already claimed (in
    /// flight or resolved).
    pub fn begin(&self, key: &ModelKey) -> bool {
        let shard = self.shard(key);
        let mut claims = lock_ignore_poison(&shard.claims);
        if claims.contains_key(key) {
            return false;
        }
        claims.insert(key.clone(), LatchState::InFlight);
        true
    }

    /// Resolve `key` as successfully published and wake its waiters.
    pub fn publish(&self, key: &ModelKey) {
        self.resolve(key, CalibrationOutcome::Published);
    }

    /// Resolve `key` as failed and wake its waiters. A no-op when the
    /// claim already resolved (first writer wins).
    pub fn fail(&self, key: &ModelKey) {
        self.resolve(key, CalibrationOutcome::Failed);
    }

    fn resolve(&self, key: &ModelKey, outcome: CalibrationOutcome) {
        {
            let shard = self.shard(key);
            let mut claims = lock_ignore_poison(&shard.claims);
            match claims.get(key) {
                Some(LatchState::Done(_)) => return, // first resolution wins
                Some(LatchState::InFlight) | None => {
                    claims.insert(key.clone(), LatchState::Done(outcome));
                }
            }
            shard.resolved.notify_all();
        }
        // Advance the global resolution epoch *after* the segment state
        // is published, so a waiter woken by the epoch change always
        // observes the resolution that caused it.
        let mut epoch = lock_ignore_poison(&self.epoch);
        *epoch += 1;
        self.any_resolved.notify_all();
    }

    /// The global resolution counter: bumped once per resolution, on any
    /// segment. Sample it *before* scanning latch states, then park with
    /// [`CalibrationLatch::wait_resolution`] — a resolution that raced
    /// the scan already advanced the epoch, so the wait returns
    /// immediately instead of missing the wakeup.
    pub fn resolution_epoch(&self) -> u64 {
        *lock_ignore_poison(&self.epoch)
    }

    /// Block until the resolution epoch advances past `seen` — i.e.
    /// until at least one claim (on *any* segment) resolves after the
    /// caller sampled [`CalibrationLatch::resolution_epoch`]. Returns
    /// the epoch observed at wakeup. This is the targeted replacement
    /// for timed polling in the parallel event loop's follower parking:
    /// a blocked worker sleeps until a resolution actually happens,
    /// instead of re-sweeping every millisecond.
    pub fn wait_resolution(&self, seen: u64) -> u64 {
        let mut epoch = lock_ignore_poison(&self.epoch);
        while *epoch == seen {
            epoch = match self.any_resolved.wait(epoch) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        *epoch
    }

    /// Claims still in flight across all segments — the
    /// *no-orphaned-claims* invariant says this must be zero once a run's
    /// workers have exited (every claim resolves by publication, failure,
    /// or a worker's drop guard; an in-flight claim here would have been
    /// a future deadlock for its followers).
    pub fn unresolved(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_ignore_poison(&s.claims)
                    .values()
                    .filter(|v| matches!(v, LatchState::InFlight))
                    .count()
            })
            .sum()
    }

    /// Non-blocking peek at `key`'s state.
    pub fn status(&self, key: &ModelKey) -> LatchStatus {
        let shard = self.shard(key);
        let claims = lock_ignore_poison(&shard.claims);
        match claims.get(key) {
            None => LatchStatus::Unclaimed,
            Some(LatchState::InFlight) => LatchStatus::InFlight,
            Some(LatchState::Done(outcome)) => LatchStatus::Done(*outcome),
        }
    }

    /// Block the calling thread until `key` resolves, and return the
    /// outcome. Callers must only wait on keys some leader has already
    /// claimed with [`CalibrationLatch::begin`] (the parallel scheduler
    /// claims every cold workload before its workers start): waiting on
    /// an unclaimed key parks until someone claims *and* resolves it.
    pub fn wait(&self, key: &ModelKey) -> CalibrationOutcome {
        let shard = self.shard(key);
        let mut claims = lock_ignore_poison(&shard.claims);
        loop {
            if let Some(LatchState::Done(outcome)) = claims.get(key) {
                return *outcome;
            }
            claims = match shard.resolved.wait(claims) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// [`CalibrationLatch::wait`] with a bound: returns `None` when the
    /// claim is still unresolved after `timeout`. A per-key wait only
    /// hears its own segment's condvar — for "any resolution anywhere"
    /// parking (what the parallel event loop's blocked-partition sweep
    /// needs) use [`CalibrationLatch::wait_resolution`], which replaced
    /// the timed-slice polling this method once backed.
    pub fn wait_timeout(
        &self,
        key: &ModelKey,
        timeout: std::time::Duration,
    ) -> Option<CalibrationOutcome> {
        let deadline = std::time::Instant::now() + timeout;
        let shard = self.shard(key);
        let mut claims = lock_ignore_poison(&shard.claims);
        loop {
            if let Some(LatchState::Done(outcome)) = claims.get(key) {
                return Some(*outcome);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            claims = match shard.resolved.wait_timeout(claims, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => {
                    let (g, _) = poisoned.into_inner();
                    g
                }
            };
        }
    }
}

/// `Mutex::lock` that shrugs off poisoning (a panicked waiter must not
/// wedge every other worker's admission).
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The shard an application's entries live in: FNV-1a over the
/// application name, modulo the shard count. Shared by the repository
/// shards and the calibration latch so both partition identically.
fn shard_index(application: &str, shards: usize) -> usize {
    (kernels::fnv1a(application.as_bytes()) % shards as u64) as usize
}

/// One stored entry as the snapshot path shares it between the shard
/// writer and every published snapshot: the serialized model, a
/// race-filled parse memo, the provenance, and an *atomic* recency stamp
/// so lock-free serves keep feeding LRU order.
#[derive(Debug)]
struct ViewEntry {
    json: String,
    /// Memoized parse of `json`, filled on the first successful serve.
    /// Racing readers may parse twice; `OnceLock` keeps exactly one
    /// result. Corrupt entries never fill it, so they surface
    /// [`RuntimeError::Parse`] on every serve — same as the locked path.
    parsed: OnceLock<TuningModel>,
    provenance: ModelProvenance,
    last_used: AtomicU64,
}

/// The immutable per-shard snapshot readers serve from: the model map
/// (sharing [`ViewEntry`]s with the writer via `Arc`) plus the
/// read-path configuration.
#[derive(Debug, Default)]
struct ShardView {
    models: BTreeMap<ModelKey, Arc<ViewEntry>>,
    fallback: Option<SystemConfig>,
    policy: MatchPolicy,
}

/// The writer-side authoritative state of one snapshot shard. Only ever
/// touched under [`SnapShard::writer`]; every mutation republishes a
/// fresh [`ShardView`] before the lock drops.
#[derive(Debug, Default)]
struct SnapWriter {
    models: BTreeMap<ModelKey, Arc<ViewEntry>>,
    /// Per-application version high-water mark — kept apart from the
    /// live entries so LRU eviction can never regress a version.
    versions: BTreeMap<String, u32>,
    fallback: Option<SystemConfig>,
    capacity: Option<usize>,
    policy: MatchPolicy,
}

/// One snapshot-serving shard: serialized writer state, the published
/// read snapshot, the shard's per-op statistics truth, and the shared
/// LRU clock both paths stamp recency from.
#[derive(Debug)]
struct SnapShard {
    writer: Mutex<SnapWriter>,
    view: SnapCell<ShardView>,
    stats: AtomicStats,
    clock: AtomicU64,
}

impl Default for SnapShard {
    fn default() -> Self {
        Self {
            writer: Mutex::new(SnapWriter::default()),
            view: SnapCell::new(ShardView::default()),
            stats: AtomicStats::default(),
            clock: AtomicU64::new(0),
        }
    }
}

impl SnapShard {
    /// Advance the shared LRU clock and return the new stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Republish the writer's current state as a fresh snapshot. Called
    /// with the writer mutex held, so publishes are serialized and every
    /// snapshot is a fully-constructed view.
    fn republish(&self, writer: &SnapWriter) {
        self.view.publish(ShardView {
            models: writer.models.clone(),
            fallback: writer.fallback,
            policy: writer.policy,
        });
    }

    /// The snapshot-path twin of [`Shard::store`]: assign the
    /// application-lineage version, install the entry, enforce the LRU
    /// bound, republish. Returns the version and the stat delta.
    fn store(
        &self,
        key: ModelKey,
        json: String,
        source: ModelSource,
        expected: Vec<(String, f64)>,
    ) -> (u32, RepositoryStats) {
        let mut writer = lock_ignore_poison(&self.writer);
        let version = writer.versions.get(&key.application).map_or(1, |v| v + 1);
        writer.versions.insert(key.application.clone(), version);
        self.insert_entry(&mut writer, key, json, source, expected, version);
        let delta = RepositoryStats {
            publications: 1,
            evictions: Self::enforce_capacity(&mut writer),
            ..RepositoryStats::default()
        };
        self.republish(&writer);
        (version, delta)
    }

    /// The snapshot-path twin of [`Shard::store_replicated`]: install at
    /// exactly `version`; the application's high-water mark only ever
    /// advances.
    fn store_replicated(
        &self,
        key: ModelKey,
        json: String,
        source: ModelSource,
        expected: Vec<(String, f64)>,
        version: u32,
    ) -> RepositoryStats {
        let mut writer = lock_ignore_poison(&self.writer);
        let high = writer.versions.get(&key.application).copied().unwrap_or(0);
        writer
            .versions
            .insert(key.application.clone(), high.max(version));
        self.insert_entry(&mut writer, key, json, source, expected, version);
        let delta = RepositoryStats {
            publications: 1,
            evictions: Self::enforce_capacity(&mut writer),
            ..RepositoryStats::default()
        };
        self.republish(&writer);
        delta
    }

    fn insert_entry(
        &self,
        writer: &mut SnapWriter,
        key: ModelKey,
        json: String,
        source: ModelSource,
        expected: Vec<(String, f64)>,
        version: u32,
    ) {
        let entry = Arc::new(ViewEntry {
            json,
            parsed: OnceLock::new(),
            provenance: ModelProvenance {
                version,
                source,
                expected,
            },
            last_used: AtomicU64::new(self.tick()),
        });
        writer.models.insert(key, entry);
    }

    /// Evict least-recently-used entries until the capacity bound holds;
    /// returns how many were displaced. Reads the entries' atomic
    /// recency stamps under the writer mutex — a racing serve can bump a
    /// stamp mid-scan, which at worst spares the entry this round
    /// (approximate LRU, same tolerance the invariant suite grants the
    /// locked path under declared eviction pressure).
    fn enforce_capacity(writer: &mut SnapWriter) -> u64 {
        let mut evicted = 0;
        if let Some(cap) = writer.capacity {
            while writer.models.len() > cap {
                let lru = writer
                    .models
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone())
                    .expect("len > cap > 0 implies an entry");
                writer.models.remove(&lru);
                evicted += 1;
            }
        }
        evicted
    }

    /// The stored entry `serve` would answer for `bench` under the
    /// snapshot's match policy — exact key, or the most recently used
    /// same-application entry under [`MatchPolicy::Application`].
    fn resolve<'a>(
        view: &'a ShardView,
        bench: &BenchmarkSpec,
    ) -> Option<(&'a Arc<ViewEntry>, bool)> {
        let key = ModelKey::of(bench);
        if let Some(entry) = view.models.get(&key) {
            return Some((entry, true));
        }
        if view.policy == MatchPolicy::Application {
            return view
                .models
                .iter()
                .filter(|(k, _)| k.application == key.application)
                .max_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(_, e)| (e, false));
        }
        None
    }

    /// Wait-free [`Shard::serve_stored`] against `view`: no lock taken,
    /// identical counting and error semantics.
    fn serve_stored(
        &self,
        view: &ShardView,
        bench: &BenchmarkSpec,
        delta: &mut RepositoryStats,
    ) -> Result<Option<ServedModel>, RuntimeError> {
        let Some((entry, exact)) = Self::resolve(view, bench) else {
            delta.misses += 1;
            return Ok(None);
        };
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let model = match entry.parsed.get() {
            Some(model) => model.clone(),
            None => match TuningModel::from_json(&entry.json) {
                // Two racing first serves may both parse; `get_or_init`
                // keeps one result and the loser's copy is dropped.
                Ok(model) => entry.parsed.get_or_init(|| model).clone(),
                Err(e) => {
                    delta.errors += 1;
                    return Err(RuntimeError::Parse(e));
                }
            },
        };
        delta.hits += 1;
        if !exact {
            delta.approx_hits += 1;
        }
        Ok(Some(ServedModel {
            model,
            source: entry.provenance.source,
            provenance: Some(entry.provenance.clone()),
        }))
    }

    /// Wait-free [`Shard::serve_fallback`] against `view`.
    fn serve_fallback(
        view: &ShardView,
        bench: &BenchmarkSpec,
        delta: &mut RepositoryStats,
    ) -> Result<ServedModel, RuntimeError> {
        match view.fallback {
            Some(config) => {
                delta.fallbacks += 1;
                Ok(ServedModel::fallback(TuningModel::new(
                    &bench.name,
                    &[],
                    config,
                )))
            }
            None => Err(RuntimeError::NoModel {
                application: bench.name.clone(),
                fingerprint: bench.fingerprint(),
            }),
        }
    }
}

/// The two interchangeable shard backends. [`Backend::Snapshot`] is the
/// production path; [`Backend::Locked`] is the pre-PR-9 `RwLock`-striped
/// implementation kept as the differential-testing oracle.
enum Backend {
    Snapshot(Vec<SnapShard>),
    Locked(Vec<RwLock<Shard>>),
}

/// A sharded, internally synchronized tuning-model repository for
/// concurrent serving.
///
/// Semantics are identical to
/// [`TuningModelRepository`](crate::TuningModelRepository) — the shards
/// mirror the same [`Shard`](crate::repository) state machine — but
/// every method takes `&self`, so one `SharedRepository` can serve all
/// the worker threads of [`ClusterScheduler::run_parallel`](crate::ClusterScheduler::run_parallel)
/// at once, and the entire read path (`serve`, `serve_stored`,
/// `serve_fallback`, `contains`, `provenance`, `len`) is lock-free
/// against per-shard immutable snapshots. Differences a single-threaded
/// caller can observe:
///
/// * **Capacity is per shard.** [`SharedRepository::with_capacity`]
///   divides the requested total evenly (rounding up), and each shard
///   LRU-bounds independently; a skewed application-hash distribution can
///   therefore evict before the global total is reached.
/// * **Version lineage and application matching are exact** — entries of
///   one application always share a shard.
/// * **Statistics are lock-free.** [`SharedRepository::stats`] reads the
///   atomic aggregates; they equal the sum of the per-shard totals at any
///   quiescent point.
pub struct SharedRepository {
    backend: Backend,
    stats: AtomicStats,
    /// The requested global capacity (before per-shard division).
    capacity: Option<usize>,
    /// Telemetry sink for per-shard serving counters and read-path
    /// snapshot-age timing; `None` costs one branch per operation.
    recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for SharedRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRepository")
            .field("shards", &self.shard_count())
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl SharedRepository {
    /// An empty repository striped across `shards` snapshot segments
    /// (clamped to ≥ 1), with no fallback and unbounded capacity.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            backend: Backend::Snapshot((0..shards).map(|_| SnapShard::default()).collect()),
            stats: AtomicStats::default(),
            capacity: None,
            recorder: None,
        }
    }

    /// The pre-snapshot `RwLock`-striped backend, kept **only** as the
    /// differential-testing oracle: testkit invariant 8 re-runs every
    /// scenario against this constructor and asserts per-job
    /// bit-identity with the snapshot path. Not a production surface.
    #[doc(hidden)]
    pub fn new_locked(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            backend: Backend::Locked((0..shards).map(|_| RwLock::new(Shard::default())).collect()),
            stats: AtomicStats::default(),
            capacity: None,
            recorder: None,
        }
    }

    /// Serve `config` as a static single-scenario model whenever no
    /// stored model matches (builder form).
    #[must_use]
    pub fn with_fallback(self, config: SystemConfig) -> Self {
        match &self.backend {
            Backend::Snapshot(shards) => {
                for shard in shards {
                    let mut writer = lock_ignore_poison(&shard.writer);
                    writer.fallback = Some(config);
                    shard.republish(&writer);
                }
            }
            Backend::Locked(shards) => {
                for shard in shards {
                    shard.write().fallback = Some(config);
                }
            }
        }
        self
    }

    /// Bound the repository to roughly `capacity` stored models in total:
    /// each shard is bounded to `capacity.div_ceil(shards)` entries and
    /// evicts its own least-recently-used entry independently (builder
    /// form). Zero is treated as unbounded.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = (capacity > 0).then_some(capacity);
        let per_shard = self.capacity.map(|c| c.div_ceil(self.shard_count()));
        match &self.backend {
            Backend::Snapshot(shards) => {
                for shard in shards {
                    lock_ignore_poison(&shard.writer).capacity = per_shard;
                }
            }
            Backend::Locked(shards) => {
                for shard in shards {
                    shard.write().capacity = per_shard;
                }
            }
        }
        self
    }

    /// Select the serve-time key matching policy (builder form).
    #[must_use]
    pub fn with_match_policy(self, policy: MatchPolicy) -> Self {
        match &self.backend {
            Backend::Snapshot(shards) => {
                for shard in shards {
                    let mut writer = lock_ignore_poison(&shard.writer);
                    writer.policy = policy;
                    shard.republish(&writer);
                }
            }
            Backend::Locked(shards) => {
                for shard in shards {
                    shard.write().policy = policy;
                }
            }
        }
        self
    }

    /// Attach a telemetry recorder (builder form). Every repository
    /// operation then emits per-shard hit/miss/fallback/eviction/
    /// publication counters (series `repo.hits/<shard>` etc.), and every
    /// read records a `repo.snapshot_age` histogram — how many
    /// publications the served snapshot trailed the shard's latest
    /// (0 unless a publish raced the load). `Arc` rather than a borrow
    /// because the repository is shared across the worker threads of
    /// `run_parallel` and outlives any one run.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Number of shard segments.
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Snapshot(shards) => shards.len(),
            Backend::Locked(shards) => shards.len(),
        }
    }

    /// The requested global capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The configured fallback, if any.
    pub fn fallback(&self) -> Option<SystemConfig> {
        match &self.backend {
            Backend::Snapshot(shards) => shards[0].view.load().fallback,
            Backend::Locked(shards) => shards[0].read().fallback,
        }
    }

    /// The serve-time key matching policy.
    pub fn match_policy(&self) -> MatchPolicy {
        match &self.backend {
            Backend::Snapshot(shards) => shards[0].view.load().policy,
            Backend::Locked(shards) => shards[0].read().policy,
        }
    }

    /// Emit the per-shard serving counters for one operation's delta.
    fn record_counters(recorder: &dyn Recorder, idx: usize, delta: &RepositoryStats) {
        let shard = idx as u32;
        for (key, value) in [
            ("repo.hits", delta.hits + delta.approx_hits),
            ("repo.misses", delta.misses),
            ("repo.fallbacks", delta.fallbacks),
            ("repo.evictions", delta.evictions),
            ("repo.publications", delta.publications),
        ] {
            if value > 0 {
                recorder.counter_add_at(key, shard, value);
            }
        }
    }

    /// Run a lock-free read `op` against `application`'s shard snapshot,
    /// then fold the stat delta `op` reported into both the shard's and
    /// the repository's lock-free tallies. Routing every read through
    /// here (and every mutation through [`Self::snap_write`]) is what
    /// keeps the two statistics views equal by construction.
    fn snap_read<T>(
        &self,
        shards: &[SnapShard],
        application: &str,
        op: impl FnOnce(&SnapShard, &ShardView, &mut RepositoryStats) -> T,
    ) -> T {
        let idx = shard_index(application, shards.len());
        let shard = &shards[idx];
        let snap = shard.view.load();
        let mut delta = RepositoryStats::default();
        let out = op(shard, &snap, &mut delta);
        shard.stats.add(&delta);
        self.stats.add(&delta);
        if let Some(recorder) = self.recorder.as_deref().filter(|r| r.enabled()) {
            let age = shard.view.version().saturating_sub(snap.version());
            recorder.histogram_record("repo.snapshot_age", age);
            Self::record_counters(recorder, idx, &delta);
        }
        out
    }

    /// Run a serialized write `op` against `application`'s shard (the op
    /// takes the shard writer mutex itself and republishes the snapshot
    /// before returning), then fold its stat delta into both tallies.
    fn snap_write<T>(
        &self,
        shards: &[SnapShard],
        application: &str,
        op: impl FnOnce(&SnapShard) -> (T, RepositoryStats),
    ) -> T {
        let idx = shard_index(application, shards.len());
        let (out, delta) = op(&shards[idx]);
        shards[idx].stats.add(&delta);
        self.stats.add(&delta);
        if let Some(recorder) = self.recorder.as_deref().filter(|r| r.enabled()) {
            Self::record_counters(recorder, idx, &delta);
        }
        out
    }

    /// Locked-backend dispatch: run `op` under the write lock of
    /// `application`'s shard, then fold the operation's stat delta into
    /// the lock-free aggregates.
    fn with_shard<T>(&self, application: &str, op: impl FnOnce(&mut Shard) -> T) -> T {
        let Backend::Locked(shards) = &self.backend else {
            unreachable!("with_shard is the locked backend's dispatch");
        };
        let idx = shard_index(application, shards.len());
        let mut shard = shards[idx].write();
        let before = shard.stats;
        let out = op(&mut shard);
        let after = shard.stats;
        drop(shard);
        let delta = RepositoryStats {
            hits: after.hits - before.hits,
            approx_hits: after.approx_hits - before.approx_hits,
            misses: after.misses - before.misses,
            fallbacks: after.fallbacks - before.fallbacks,
            errors: after.errors - before.errors,
            evictions: after.evictions - before.evictions,
            publications: after.publications - before.publications,
        };
        if let Some(recorder) = self.recorder.as_deref().filter(|r| r.enabled()) {
            Self::record_counters(recorder, idx, &delta);
        }
        self.stats.add(&delta);
        out
    }

    /// Store a design-time advice's tuning model (see
    /// [`TuningModelRepository::publish`](crate::TuningModelRepository::publish)).
    /// Returns the assigned application-lineage version.
    pub fn publish(&self, advice: &Advice) -> u32 {
        let application = advice.tuning_model.application.clone();
        match &self.backend {
            Backend::Snapshot(shards) => {
                let key = ModelKey {
                    application: application.clone(),
                    fingerprint: advice.benchmark_fingerprint,
                };
                let expected = advice
                    .region_best
                    .iter()
                    .map(|(name, _, energy)| (name.clone(), *energy))
                    .collect();
                self.snap_write(shards, &application, |shard| {
                    shard.store(
                        key,
                        advice.tuning_model.to_json(),
                        ModelSource::Repository,
                        expected,
                    )
                })
            }
            Backend::Locked(_) => self.with_shard(&application, |shard| shard.publish(advice)),
        }
    }

    /// Store a model the online tuner converged (see
    /// [`TuningModelRepository::publish_online`](crate::TuningModelRepository::publish_online)).
    pub fn publish_online(
        &self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        match &self.backend {
            Backend::Snapshot(shards) => self.snap_write(shards, &bench.name, |shard| {
                shard.store(
                    ModelKey::of(bench),
                    model.to_json(),
                    ModelSource::Online,
                    expected,
                )
            }),
            Backend::Locked(_) => self.with_shard(&bench.name, |shard| {
                shard.publish_online(bench, model, expected)
            }),
        }
    }

    /// Store an entry whose application-lineage version was assigned by
    /// the replication layer (see [`crate::net::reconcile`]): the entry
    /// is installed at exactly `version` and the application's
    /// high-water mark only ever advances. `source` distinguishes a
    /// locally published model ([`ModelSource::Online`])
    /// from one applied off the wire
    /// ([`ModelSource::Replicated`]).
    pub fn publish_replicated(
        &self,
        application: &str,
        fingerprint: u64,
        json: &str,
        source: crate::repository::ModelSource,
        expected: Vec<(String, f64)>,
        version: u32,
    ) {
        let key = ModelKey {
            application: application.to_string(),
            fingerprint,
        };
        match &self.backend {
            Backend::Snapshot(shards) => self.snap_write(shards, application, |shard| {
                (
                    (),
                    shard.store_replicated(key, json.to_string(), source, expected, version),
                )
            }),
            Backend::Locked(_) => {
                self.with_shard(application, |shard| {
                    shard.store_replicated(key, json.to_string(), source, expected, version)
                });
            }
        }
    }

    /// Store a tuning model for a benchmark (replaces any previous entry
    /// for the same workload; no drift expectations are recorded).
    pub fn insert(&self, bench: &BenchmarkSpec, model: &TuningModel) {
        match &self.backend {
            Backend::Snapshot(shards) => {
                self.snap_write(shards, &bench.name, |shard| {
                    shard.store(
                        ModelKey::of(bench),
                        model.to_json(),
                        ModelSource::Repository,
                        Vec::new(),
                    )
                });
            }
            Backend::Locked(_) => {
                self.with_shard(&bench.name, |shard| {
                    shard.store(
                        ModelKey::of(bench),
                        model.to_json(),
                        ModelSource::Repository,
                        Vec::new(),
                    )
                });
            }
        }
    }

    /// Serve a stored model or the calibration fallback (see
    /// [`TuningModelRepository::serve`](crate::TuningModelRepository::serve)).
    /// On the snapshot backend this is lock-free: the whole lookup —
    /// resolution, parse-memo fill, fallback — runs against the shard's
    /// immutable snapshot without taking any lock.
    pub fn serve(&self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        match &self.backend {
            Backend::Snapshot(shards) => {
                self.snap_read(shards, &bench.name, |shard, view, delta| {
                    match shard.serve_stored(view, bench, delta)? {
                        Some(served) => Ok(served),
                        None => SnapShard::serve_fallback(view, bench, delta),
                    }
                })
            }
            Backend::Locked(_) => self.with_shard(&bench.name, |shard| shard.serve(bench)),
        }
    }

    /// Serve a stored model, or record a miss and return `Ok(None)` (see
    /// [`TuningModelRepository::serve_stored`](crate::TuningModelRepository::serve_stored)).
    pub fn serve_stored(&self, bench: &BenchmarkSpec) -> Result<Option<ServedModel>, RuntimeError> {
        match &self.backend {
            Backend::Snapshot(shards) => {
                self.snap_read(shards, &bench.name, |shard, view, delta| {
                    shard.serve_stored(view, bench, delta)
                })
            }
            Backend::Locked(_) => self.with_shard(&bench.name, |shard| shard.serve_stored(bench)),
        }
    }

    /// Serve the calibration fallback without a storage lookup (see
    /// [`TuningModelRepository::serve_fallback`](crate::TuningModelRepository::serve_fallback)).
    pub fn serve_fallback(&self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        match &self.backend {
            Backend::Snapshot(shards) => self.snap_read(shards, &bench.name, |_, view, delta| {
                SnapShard::serve_fallback(view, bench, delta)
            }),
            Backend::Locked(_) => self.with_shard(&bench.name, |shard| shard.serve_fallback(bench)),
        }
    }

    /// Whether a stored model matches this benchmark's workload exactly.
    pub fn contains(&self, bench: &BenchmarkSpec) -> bool {
        match &self.backend {
            Backend::Snapshot(shards) => {
                let idx = shard_index(&bench.name, shards.len());
                shards[idx]
                    .view
                    .load()
                    .models
                    .contains_key(&ModelKey::of(bench))
            }
            Backend::Locked(shards) => {
                let idx = shard_index(&bench.name, shards.len());
                shards[idx].read().contains(bench)
            }
        }
    }

    /// Provenance of the stored entry for this benchmark's exact
    /// workload, if any (cloned out of the shard — a lock or snapshot
    /// cannot be held across the return).
    pub fn provenance(&self, bench: &BenchmarkSpec) -> Option<ModelProvenance> {
        match &self.backend {
            Backend::Snapshot(shards) => {
                let idx = shard_index(&bench.name, shards.len());
                shards[idx]
                    .view
                    .load()
                    .models
                    .get(&ModelKey::of(bench))
                    .map(|e| e.provenance.clone())
            }
            Backend::Locked(shards) => {
                let idx = shard_index(&bench.name, shards.len());
                shards[idx].read().provenance(bench).cloned()
            }
        }
    }

    /// Number of stored models across all shards.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Snapshot(shards) => shards.iter().map(|s| s.view.load().models.len()).sum(),
            Backend::Locked(shards) => shards.iter().map(|s| s.read().models.len()).sum(),
        }
    }

    /// True when no models are stored.
    pub fn is_empty(&self) -> bool {
        match &self.backend {
            Backend::Snapshot(shards) => shards.iter().all(|s| s.view.load().models.is_empty()),
            Backend::Locked(shards) => shards.iter().all(|s| s.read().models.is_empty()),
        }
    }

    /// Serving statistics so far — read lock-free from the atomic
    /// aggregates.
    pub fn stats(&self) -> RepositoryStats {
        self.stats.snapshot()
    }

    /// The sum of the per-shard statistics — the per-shard source of
    /// truth the repository-wide [`SharedRepository::stats`] mirrors.
    /// Exposed so tests (and monitoring) can assert the two views agree;
    /// they do at any point with no operation in flight.
    pub fn shard_stats(&self) -> RepositoryStats {
        match &self.backend {
            Backend::Snapshot(shards) => shards
                .iter()
                .map(|s| s.stats.snapshot())
                .fold(RepositoryStats::default(), |acc, s| acc.merged(&s)),
            Backend::Locked(shards) => shards
                .iter()
                .map(|s| s.read().stats)
                .fold(RepositoryStats::default(), |acc, s| acc.merged(&s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::ModelSource;

    fn bench_named(name: &str) -> BenchmarkSpec {
        let mut b = kernels::benchmark("miniMD").unwrap();
        b.name = name.to_string();
        b
    }

    fn model(app: &str) -> TuningModel {
        TuningModel::new(
            app,
            &[("compute_force".into(), SystemConfig::new(24, 2500, 1500))],
            SystemConfig::new(24, 2500, 1500),
        )
    }

    #[test]
    fn shared_serve_matches_single_threaded_semantics() {
        let repo = SharedRepository::new(4).with_fallback(SystemConfig::new(24, 2400, 1700));
        let b = bench_named("app");
        repo.insert(&b, &model("app"));
        assert!(repo.contains(&b));
        assert_eq!(repo.len(), 1);

        let served = repo.serve(&b).expect("hit");
        assert_eq!(served.source, ModelSource::Repository);
        assert_eq!(served.model, model("app"));

        let other = bench_named("unknown");
        let served = repo.serve(&other).expect("fallback");
        assert_eq!(served.source, ModelSource::Fallback);

        let s = repo.stats();
        assert_eq!((s.hits, s.misses, s.fallbacks), (1, 1, 1));
        assert_eq!(s, repo.shard_stats(), "atomic view mirrors shard truth");
    }

    #[test]
    fn versions_are_per_application_across_shards() {
        let repo = SharedRepository::new(8);
        let a = bench_named("alpha");
        let b = bench_named("beta");
        assert_eq!(repo.publish_online(&a, &model("alpha"), vec![]), 1);
        assert_eq!(repo.publish_online(&b, &model("beta"), vec![]), 1);
        assert_eq!(repo.publish_online(&a, &model("alpha"), vec![]), 2);
        assert_eq!(repo.provenance(&a).unwrap().version, 2);
        assert_eq!(repo.provenance(&b).unwrap().version, 1);
    }

    #[test]
    fn concurrent_serving_counts_every_lookup_exactly_once() {
        // The double-count regression, concurrent edition: N threads ×
        // hits + misses + publications under eviction pressure, and at
        // the end the atomic aggregate must equal the per-shard truth
        // and the exact expected totals.
        let repo = SharedRepository::new(4)
            .with_fallback(SystemConfig::taurus_default())
            .with_capacity(8);
        let stored = bench_named("hot-app");
        repo.insert(&stored, &model("hot-app"));

        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let repo = &repo;
                let stored = &stored;
                s.spawn(move || {
                    let cold = bench_named(&format!("cold-{t}"));
                    for i in 0..PER_THREAD {
                        repo.serve(stored).expect("hit");
                        repo.serve(&cold).expect("fallback");
                        if i % 10 == 0 {
                            let churn = bench_named(&format!("churn-{t}-{i}"));
                            repo.insert(&churn, &model("churn"));
                        }
                    }
                });
            }
        });

        let s = repo.stats();
        let expected_each = (THREADS as u64) * PER_THREAD;
        assert_eq!(s.hits, expected_each, "one hit per stored serve");
        assert_eq!(s.misses, expected_each, "one miss per cold serve");
        assert_eq!(s.fallbacks, expected_each);
        assert_eq!(s.lookups(), 2 * expected_each);
        assert_eq!(s.publications, 1 + THREADS as u64 * 5);
        assert!(s.evictions > 0, "churn must exceed the bound");
        assert_eq!(s, repo.shard_stats(), "no drift between the two views");
        assert!(repo.len() <= 8 * repo.shard_count(), "per-shard bounds");
    }

    #[test]
    fn per_shard_capacity_divides_the_total() {
        let repo = SharedRepository::new(4).with_capacity(8);
        assert_eq!(repo.capacity(), Some(8));
        // 2 per shard: flooding one shard's applications evicts there
        // while other shards stay unaffected.
        for i in 0..32 {
            let b = bench_named(&format!("app-{i}"));
            repo.insert(&b, &model("x"));
        }
        assert!(repo.len() <= 8, "per-shard bound enforced: {}", repo.len());
        assert!(repo.stats().evictions >= 24);
    }

    #[test]
    fn latch_leader_election_and_waiting() {
        let latch = CalibrationLatch::new(4);
        let key = ModelKey {
            application: "app".into(),
            fingerprint: 42,
        };
        assert_eq!(latch.status(&key), LatchStatus::Unclaimed);
        assert_eq!(latch.unresolved(), 0);
        assert!(latch.begin(&key), "first claimer leads");
        assert!(!latch.begin(&key), "second claimer follows");
        assert_eq!(latch.status(&key), LatchStatus::InFlight);
        assert_eq!(
            latch.unresolved(),
            1,
            "the claim is an orphan until resolved"
        );

        // Followers block until the leader resolves.
        let outcome = std::thread::scope(|s| {
            let waiter = s.spawn(|| latch.wait(&key));
            std::thread::sleep(std::time::Duration::from_millis(10));
            latch.publish(&key);
            waiter.join().expect("waiter thread")
        });
        assert_eq!(outcome, CalibrationOutcome::Published);
        assert_eq!(
            latch.status(&key),
            LatchStatus::Done(CalibrationOutcome::Published)
        );
        // First resolution wins: a late belt-and-braces fail is a no-op.
        latch.fail(&key);
        assert_eq!(latch.wait(&key), CalibrationOutcome::Published);
    }

    #[test]
    fn latch_wait_timeout_expires_and_resolves() {
        use std::time::Duration;
        let latch = CalibrationLatch::new(2);
        let key = ModelKey {
            application: "slow".into(),
            fingerprint: 9,
        };
        assert!(latch.begin(&key));
        // Unresolved claim: the bounded wait gives up…
        assert_eq!(latch.wait_timeout(&key, Duration::from_millis(5)), None);
        // …and sees the outcome once resolved, without sleeping.
        latch.publish(&key);
        assert_eq!(
            latch.wait_timeout(&key, Duration::from_secs(5)),
            Some(CalibrationOutcome::Published)
        );
    }

    #[test]
    fn resolution_epoch_advances_once_per_resolution_and_wakes_waiters() {
        let latch = CalibrationLatch::new(4);
        let a = ModelKey {
            application: "a".into(),
            fingerprint: 1,
        };
        let b = ModelKey {
            application: "b".into(),
            fingerprint: 2,
        };
        assert_eq!(latch.resolution_epoch(), 0);
        assert!(latch.begin(&a) && latch.begin(&b));

        // A resolution on *any* segment advances the global epoch.
        latch.publish(&a);
        assert_eq!(latch.resolution_epoch(), 1);
        // First-writer-wins: re-resolving a done claim is epoch-inert.
        latch.fail(&a);
        assert_eq!(latch.resolution_epoch(), 1);

        // A waiter parked on the stale epoch wakes when `b` resolves —
        // even though `b` hashes to a different latch segment.
        let woken = std::thread::scope(|s| {
            let waiter = s.spawn(|| latch.wait_resolution(1));
            std::thread::sleep(std::time::Duration::from_millis(10));
            latch.fail(&b);
            waiter.join().expect("waiter thread")
        });
        assert_eq!(woken, 2);
        // A wait on an already-stale epoch returns without blocking.
        assert_eq!(latch.wait_resolution(0), 2);
    }

    #[test]
    fn latch_failure_unblocks_waiters_with_failed() {
        let latch = CalibrationLatch::new(2);
        let key = ModelKey {
            application: "doomed".into(),
            fingerprint: 7,
        };
        assert!(latch.begin(&key));
        latch.fail(&key);
        assert_eq!(latch.wait(&key), CalibrationOutcome::Failed);
    }
}
