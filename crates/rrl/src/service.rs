//! The long-lived, churn-tolerant cluster service on the `simkit` kernel.
//!
//! [`ClusterScheduler::run_service`] is the third event loop over the
//! shared job-state machine of [`crate::cluster`] — and the first one
//! where *time* is real (virtual): jobs arrive at their trace timestamps,
//! every region enter/exit pair and phase completion is a scheduled event
//! whose virtual duration is the session's own accumulated wall time,
//! calibration completions release their same-workload waiters at the
//! instant the leader finishes, and nodes join, drain and fail mid-run on
//! the [`FaultInjector::node_churn`] schedule. Per-node run queues form
//! when [`ServiceConfig::slots_per_node`] bounds concurrency; queue depth
//! and sojourn are sampled at event granularity into deterministic
//! [`QuantileSketch`]es, and the report gains job-latency and queue-depth
//! percentiles ([`ServiceSummary`]).
//!
//! ## Determinism and bit-identity
//!
//! Execution order is a pure function of the trace timestamps and the
//! kernel's `(deliver_at, seq_id)` rule — no wall clock, no randomness.
//! Because per-job accounting is interleaving-independent (see
//! [`crate::session`]), a service run over a zero-interarrival trace with
//! no churn and unbounded slots is **bit-identical per job** to
//! [`ClusterScheduler::run`] and [`ClusterScheduler::run_parallel`] on
//! the same submissions: arrivals at `t = 0` are placed and admitted in
//! trace order (the sequential loop's first admission sweep, verbatim —
//! same placements, same serve calls, same calibration leaders), and each
//! session's events then replay its own timeline. The testkit
//! `event_core` invariant locks this equivalence in.
//!
//! ## Churn semantics
//!
//! * **Drain** — the node stops accepting placements; its *queued* jobs
//!   are re-placed onto the remaining available nodes (never dropped);
//!   running jobs finish normally.
//! * **Fail** — like drain, but running jobs are truncated at their next
//!   phase boundary (accounting collected up to the truncation and
//!   compared against an equally truncated baseline, exactly like an
//!   injected abort). A truncated calibration *leader* that never
//!   converged fails its workload's calibration, releasing waiters to
//!   the fallback path.
//! * **Join** — the node accepts placements again; anything still queued
//!   on unavailable nodes is re-placed immediately.
//!
//! When every node is unavailable, placement falls back to the full
//! fleet — a degraded cluster keeps serving rather than stranding jobs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use kernels::{BenchmarkSpec, QuantileSketch};
use obskit::{Recorder, Track};
use simkit::{EventSink, Kernel, Process, Time};
use simnode::Cluster;

use crate::cluster::{
    assemble_report, estimated_work, start_calibration, start_monitor, start_plain, ClusterReport,
    ClusterScheduler, EventOutcome, JobDriver, OnlineTuning, Placement, QueuedJob, State,
};
use crate::error::RuntimeError;
use crate::inject::{ChurnEvent, ChurnKind, FaultInjector};
use crate::repository::{ModelKey, RepositoryHandle};

/// One job of a service trace: what to run, and *when* it arrives.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Job name (unique per trace; seeds the accounting noise).
    pub name: String,
    /// The benchmark the job runs.
    pub bench: BenchmarkSpec,
    /// Arrival time, seconds of virtual time from service start.
    pub arrival_s: f64,
}

/// Knobs for one service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Concurrent sessions a node runs before arrivals queue on it
    /// (0 = unbounded, the sweep loops' implicit behavior).
    pub slots_per_node: usize,
}

/// p50/p95/p99/max of one sampled distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Extract from a sketch, scaling samples by `scale` (e.g. µs → s).
    fn from_sketch(sketch: &QuantileSketch, scale: f64) -> Self {
        let qs = sketch.percentiles(&[0.50, 0.95, 0.99]);
        Self {
            p50: qs[0] as f64 * scale,
            p95: qs[1] as f64 * scale,
            p99: qs[2] as f64 * scale,
            max: sketch.max() as f64 * scale,
        }
    }
}

/// Virtual-time metrics of one [`ClusterScheduler::run_service`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSummary {
    /// Virtual time of the last job completion, seconds.
    pub makespan_s: f64,
    /// Job latency (arrival → finish), seconds of virtual time.
    pub latency_s: Percentiles,
    /// Time jobs spent queued before admission, seconds of virtual time.
    pub queue_wait_s: Percentiles,
    /// Per-node run-queue depth, sampled at every queue-affecting event.
    pub queue_depth: Percentiles,
    /// Churn events honored during the run.
    pub churn_events: usize,
    /// Queued or parked jobs re-placed off drained/failed/unavailable
    /// nodes (never dropped).
    pub replaced_jobs: u64,
    /// Running jobs truncated at a phase boundary by a node failure.
    pub truncated_jobs: u64,
    /// Kernel events dispatched.
    pub events: u64,
    /// The event heap was empty when the run ended (always true for a
    /// completed run; reported so invariants can assert it).
    pub quiesced: bool,
    /// Popped event timestamps never regressed (always true by kernel
    /// construction; reported so invariants can assert it).
    pub monotone: bool,
    /// Deterministic metrics snapshot, present when a recorder was
    /// attached via [`ClusterScheduler::with_recorder`]. Wall-derived
    /// series (`*_ns`) keep their sample counts but have their values
    /// blanked, so two recorded runs of the same inputs compare equal.
    pub telemetry: Option<obskit::MetricsSnapshot>,
}

impl ServiceSummary {
    /// The report lines
    /// [`format_report`](ClusterReport::format_report) appends for a
    /// service run.
    pub fn format_lines(&self) -> String {
        let mut out = format!(
            "service: makespan {:.1}s virtual, latency p50/p95/p99 \
             {:.3}/{:.3}/{:.3}s (max {:.3}s), queue depth p50/p95/p99 \
             {:.0}/{:.0}/{:.0} (max {:.0})\n",
            self.makespan_s,
            self.latency_s.p50,
            self.latency_s.p95,
            self.latency_s.p99,
            self.latency_s.max,
            self.queue_depth.p50,
            self.queue_depth.p95,
            self.queue_depth.p99,
            self.queue_depth.max,
        );
        if self.churn_events > 0 {
            out.push_str(&format!(
                "churn: {} events, {} queued jobs re-placed, {} running jobs truncated\n",
                self.churn_events, self.replaced_jobs, self.truncated_jobs,
            ));
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&format!(
                "telemetry: {} series ({} counters, {} gauges, {} histograms), \
                 {} spans, {} instants, {} timeline events dropped\n",
                telemetry.counters.len() + telemetry.gauges.len() + telemetry.histograms.len(),
                telemetry.counters.len(),
                telemetry.gauges.len(),
                telemetry.histograms.len(),
                telemetry.spans,
                telemetry.instants,
                telemetry.dropped_events,
            ));
        }
        out
    }
}

/// The typed event payloads of a service run.
enum ServiceEvent {
    /// Job `i` arrives and is placed (admitted or queued).
    Arrive(usize),
    /// Active job `i` advances by one region/phase event, or finishes.
    Step(usize),
    /// A calibration resolved (published, failed, or abandoned): release
    /// the workload's parked waiters.
    Resolve(ModelKey),
    /// Churn schedule entry `idx` fires.
    Churn(usize),
}

/// Convert seconds of virtual time to the kernel's microsecond ticks.
fn to_us(seconds: f64) -> Time {
    (seconds.max(0.0) * 1e6).round() as Time
}

/// The [`Process`] impl: all mutable state of one service run.
struct ServiceRun<'b, 'r> {
    cluster: &'b Cluster,
    placement: Placement,
    online: Option<OnlineTuning<'b>>,
    faults: Option<&'b dyn FaultInjector>,
    recorder: &'b dyn Recorder,
    /// `recorder.enabled()`, hoisted once: every instrumentation site
    /// branches on a bool instead of making a virtual call.
    record: bool,
    repo: &'r mut dyn RepositoryHandle,
    slots_per_node: usize,

    jobs: &'b [QueuedJob],
    arrivals_us: Vec<Time>,
    drivers: Vec<JobDriver<'b>>,
    placements: Vec<usize>,
    /// Session wall time already accounted onto the timeline, per job.
    charged_s: Vec<f64>,
    /// When the job last entered a queue (arrival or re-placement).
    enqueued_us: Vec<Time>,
    /// When the job parked behind an in-flight calibration (telemetry
    /// only; 0 = never parked).
    parked_us: Vec<Time>,

    available: Vec<bool>,
    running: Vec<usize>,
    queues: Vec<VecDeque<usize>>,
    load: Vec<f64>,
    rr_next: usize,

    /// Cold workloads with a calibration in flight → parked waiter jobs.
    calibrating: BTreeMap<ModelKey, Vec<usize>>,
    /// Workloads whose calibration failed: serve the fallback.
    failed: BTreeSet<ModelKey>,
    churn: Vec<ChurnEvent>,

    latency: QuantileSketch,
    wait: QuantileSketch,
    depth: QuantileSketch,
    replaced: u64,
    truncated: u64,
    done: usize,
    finished_at_us: Time,
    last_event_us: Time,
    monotone: bool,
}

impl ServiceRun<'_, '_> {
    fn has_capacity(&self, node: usize) -> bool {
        self.slots_per_node == 0 || self.running[node] < self.slots_per_node
    }

    /// Sample the current run-queue depth of `node`.
    fn sample_depth(&mut self, node: usize) {
        self.depth.record(self.queues[node].len() as u64);
    }

    /// Pick a node for `bench` among the available nodes (all nodes when
    /// none is available), mirroring [`ClusterScheduler::submit`]'s
    /// policies exactly when the whole fleet is up.
    fn place(&mut self, bench: &BenchmarkSpec) -> usize {
        let len = self.cluster.len();
        let any_available = self.available.iter().any(|&a| a);
        let idx = match self.placement {
            Placement::RoundRobin => loop {
                let idx = self.rr_next % len;
                self.rr_next += 1;
                if !any_available || self.available[idx] {
                    break idx;
                }
            },
            Placement::LeastLoaded => self
                .load
                .iter()
                .enumerate()
                .filter(|&(i, _)| !any_available || self.available[i])
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        self.load[idx] += estimated_work(bench);
        idx
    }

    /// Place job `i` and admit it, or queue it behind the node's slots.
    fn place_or_queue(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let node = self.place(&jobs[i].bench);
        self.placements[i] = node;
        self.enqueued_us[i] = now;
        if self.has_capacity(node) {
            self.admit(i, now, sink)?;
        } else {
            self.queues[node].push_back(i);
            self.sample_depth(node);
        }
        Ok(())
    }

    /// Admit job `i` on its placed node: the sequential loop's admission
    /// decision, verbatim. Returns `false` when the job parked behind an
    /// in-flight same-workload calibration instead of starting (parked
    /// jobs hold no slot).
    fn admit(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<bool, RuntimeError> {
        let jobs = self.jobs;
        let job = &jobs[i];
        let node = self.cluster.node(self.placements[i]);
        let faults = self.faults;
        let (state, rejection) = match self.online {
            None => start_plain(job, node, self.repo.serve(&job.bench)?)?,
            Some(online) => {
                let key = ModelKey::of(&job.bench);
                if self.failed.contains(&key) {
                    start_plain(job, node, self.repo.serve(&job.bench)?)?
                } else if let Some(waiters) = self.calibrating.get_mut(&key) {
                    waiters.push(i);
                    self.parked_us[i] = now;
                    if self.record {
                        self.recorder.counter_add("service.parked", 1);
                    }
                    return Ok(false);
                } else {
                    match self.repo.serve_stored(&job.bench)? {
                        Some(served) => start_monitor(job, node, served, online.config, faults)?,
                        None => {
                            let repo = &mut *self.repo;
                            let (state, rejection, calibration_failed) =
                                start_calibration(job, node, &online, faults, &mut |b| {
                                    repo.serve_fallback(b)
                                })?;
                            if calibration_failed {
                                self.failed.insert(key);
                            } else {
                                self.calibrating.insert(key, Vec::new());
                            }
                            (state, rejection)
                        }
                    }
                }
            }
        };
        self.drivers[i].state = state;
        self.drivers[i].rejection = rejection;
        self.running[self.placements[i]] += 1;
        let waited = now - self.enqueued_us[i];
        self.wait.record(waited);
        if self.record {
            self.recorder.counter_add("service.admissions", 1);
            self.recorder
                .histogram_record("service.queue_wait_us", waited);
            if waited > 0 {
                let track = Track::node(self.placements[i] as u32);
                self.recorder
                    .span(track, "job.queued", self.enqueued_us[i], waited);
            }
        }
        // Anything the session charged at start (e.g. the switch into its
        // launch configuration) delays its first step.
        self.charged_s[i] = 0.0;
        self.schedule_step(i, now, sink);
        Ok(true)
    }

    /// Schedule job `i`'s next step after the virtual time its session
    /// accumulated since the last one (min 1 µs so the timeline always
    /// advances).
    fn schedule_step(&mut self, i: usize, now: Time, sink: &mut dyn EventSink<ServiceEvent>) {
        let elapsed = self.drivers[i].elapsed_s();
        let dt = to_us(elapsed - self.charged_s[i]).max(1);
        self.charged_s[i] = elapsed;
        sink.schedule_at(now + dt, ServiceEvent::Step(i));
    }

    /// Admit queued jobs on `node` while it has capacity.
    fn pump(
        &mut self,
        node: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        while self.has_capacity(node) {
            let Some(i) = self.queues[node].pop_front() else {
                break;
            };
            self.sample_depth(node);
            self.admit(i, now, sink)?;
        }
        Ok(())
    }

    /// One step of active job `i`: finish it when its iterations are
    /// exhausted, otherwise advance one region/phase event and reschedule.
    fn step(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let job = &jobs[i];
        if self.drivers[i].finished_iterations() {
            let was_online = matches!(self.drivers[i].state, State::Online(_));
            let node = self.cluster.node(self.placements[i]);
            let Self { drivers, repo, .. } = self;
            drivers[i].finish(job, node, &mut |bench, publication| {
                repo.publish_online(bench, &publication.model, publication.expected)
            })?;
            // The key is only needed off the hot path: plain serves step
            // to completion without ever touching the calibration latch.
            if was_online {
                let key = ModelKey::of(&job.bench);
                if self.calibrating.contains_key(&key) {
                    // The workload's calibration leader finished:
                    // published (waiters become hits) or not (an
                    // abort/failure truncated it before convergence —
                    // waiters degrade to the fallback). Resolution is its
                    // own same-instant event, so waiter admissions order
                    // behind everything already due.
                    if self.drivers[i].published_version.is_none() {
                        self.failed.insert(key.clone());
                    }
                    if self.record {
                        self.recorder.instant(
                            Track::node(self.placements[i] as u32),
                            "calib.resolved",
                            now,
                        );
                    }
                    sink.schedule_at(now, ServiceEvent::Resolve(key));
                }
            }
            let node_idx = self.placements[i];
            self.running[node_idx] -= 1;
            let latency = now - self.arrivals_us[i];
            self.latency.record(latency);
            if self.record {
                self.recorder.counter_add("service.jobs_done", 1);
                self.recorder.span(
                    Track::node(node_idx as u32),
                    "job",
                    self.arrivals_us[i],
                    latency,
                );
            }
            self.done += 1;
            self.finished_at_us = self.finished_at_us.max(now);
            self.pump(node_idx, now, sink)?;
        } else {
            // Batched: one virtual-time step covers the session's whole
            // phase — the contiguous region events plus the boundary —
            // instead of one event dispatch per region.
            match self.drivers[i].advance_phase(&job.bench)? {
                EventOutcome::Advanced => {}
                EventOutcome::Abandoned => {
                    let key = ModelKey::of(&job.bench);
                    self.failed.insert(key.clone());
                    if self.calibrating.contains_key(&key) {
                        if self.record {
                            self.recorder.instant(
                                Track::node(self.placements[i] as u32),
                                "calib.resolved",
                                now,
                            );
                        }
                        sink.schedule_at(now, ServiceEvent::Resolve(key));
                    }
                }
            }
            self.schedule_step(i, now, sink);
        }
        Ok(())
    }

    /// Release a resolved calibration's parked waiters, in park order:
    /// re-admit each through the normal admission decision (hit → monitor,
    /// failed → fallback serve, evicted → fresh calibration), re-placing
    /// any whose node churned away and queueing any that no longer fits.
    fn resolve(
        &mut self,
        key: &ModelKey,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let waiters = self.calibrating.remove(key).unwrap_or_default();
        for i in waiters {
            if self.record {
                self.recorder.counter_add("service.calib_released", 1);
                self.recorder
                    .histogram_record("service.calib_wait_us", now - self.parked_us[i]);
            }
            if !self.available[self.placements[i]] && self.available.iter().any(|&a| a) {
                self.load[self.placements[i]] -= estimated_work(&jobs[i].bench);
                self.replaced += 1;
                if self.record {
                    self.recorder.counter_add("service.replaced", 1);
                }
                self.place_or_queue(i, now, sink)?;
                continue;
            }
            let node = self.placements[i];
            self.enqueued_us[i] = now;
            if self.has_capacity(node) {
                self.admit(i, now, sink)?;
            } else {
                self.queues[node].push_back(i);
                self.sample_depth(node);
            }
        }
        Ok(())
    }

    /// Re-place everything queued on `node` onto the rest of the fleet.
    fn requeue_from(
        &mut self,
        node: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let queued: Vec<usize> = self.queues[node].drain(..).collect();
        if !queued.is_empty() {
            self.sample_depth(node);
        }
        for i in queued {
            self.load[node] -= estimated_work(&jobs[i].bench);
            self.replaced += 1;
            if self.record {
                self.recorder.counter_add("service.replaced", 1);
            }
            self.place_or_queue(i, now, sink)?;
        }
        Ok(())
    }

    /// Honor one churn schedule entry.
    fn churn_event(
        &mut self,
        idx: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let event = self.churn[idx];
        let node = event.node as usize;
        if node >= self.cluster.len() {
            return Ok(()); // out-of-fleet node: nothing to churn
        }
        if self.record {
            let name = match event.kind {
                ChurnKind::Join => "churn.join",
                ChurnKind::Drain => "churn.drain",
                ChurnKind::Fail => "churn.fail",
            };
            self.recorder.instant(Track::node(event.node), name, now);
            self.recorder.counter_add("service.churn_events", 1);
        }
        match event.kind {
            ChurnKind::Join => {
                self.available[node] = true;
                // Anything stranded on still-unavailable nodes (placed
                // while the whole fleet was down) moves here.
                for other in 0..self.cluster.len() {
                    if !self.available[other] {
                        self.requeue_from(other, now, sink)?;
                    }
                }
                self.pump(node, now, sink)?;
            }
            ChurnKind::Drain => {
                self.available[node] = false;
                self.requeue_from(node, now, sink)?;
            }
            ChurnKind::Fail => {
                self.available[node] = false;
                self.requeue_from(node, now, sink)?;
                // Truncate running jobs at their next phase boundary, the
                // same clamp an injected abort applies.
                for i in 0..self.placements.len() {
                    if self.placements[i] == node && self.drivers[i].is_active() {
                        let cut = (self.drivers[i].phase_iteration() + 1).max(1);
                        if cut < self.drivers[i].iterations {
                            self.drivers[i].iterations = cut;
                            self.truncated += 1;
                            if self.record {
                                self.recorder.counter_add("service.truncated", 1);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Process<ServiceEvent> for ServiceRun<'_, '_> {
    type Error = RuntimeError;

    fn handle(
        &mut self,
        now: Time,
        event: ServiceEvent,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        if now < self.last_event_us {
            self.monotone = false;
        }
        self.last_event_us = now;
        match event {
            ServiceEvent::Arrive(i) => {
                if self.record {
                    self.recorder.counter_add("service.arrivals", 1);
                }
                self.place_or_queue(i, now, sink)
            }
            ServiceEvent::Step(i) => self.step(i, now, sink),
            ServiceEvent::Resolve(key) => self.resolve(&key, now, sink),
            ServiceEvent::Churn(idx) => self.churn_event(idx, now, sink),
        }
    }
}

impl ClusterScheduler<'_> {
    /// Run `trace` as a long-lived service in virtual time, serving
    /// tuning models from `repo`.
    ///
    /// Unlike [`ClusterScheduler::run`] — which consumes the submission
    /// queue as an *ordering* and sweeps every active session in lockstep
    /// — this is a discrete-event simulation on the [`simkit`] kernel:
    /// jobs are placed when their [`JobArrival::arrival_s`] timestamp
    /// fires, each session's region and phase events are scheduled at the
    /// virtual times the session itself accounts, and the node
    /// join/drain/fail schedule from [`FaultInjector::node_churn`] (via
    /// [`ClusterScheduler::with_faults`]) is honored mid-run. The
    /// returned report carries a [`ServiceSummary`] with latency,
    /// queue-wait and queue-depth percentiles.
    ///
    /// On a zero-interarrival trace with no churn and unbounded slots,
    /// per-job accounting is bit-identical to both sweep loops (the
    /// `event_core` testkit invariant). The submission queue is not
    /// consumed — the trace is the workload.
    pub fn run_service(
        &mut self,
        trace: Vec<JobArrival>,
        repo: &mut dyn RepositoryHandle,
        config: &ServiceConfig,
    ) -> Result<ClusterReport, RuntimeError> {
        let cluster = self.cluster();
        let faults = self.faults();
        let recorder = self.recorder();
        let arrivals_us: Vec<Time> = trace.iter().map(|a| to_us(a.arrival_s)).collect();
        // Move (not clone) the specs out of the trace: at million-job
        // scale a second copy of every spec is real memory and time.
        let jobs: Vec<QueuedJob> = trace
            .into_iter()
            .map(|a| QueuedJob {
                name: a.name,
                bench: a.bench,
                node_idx: 0,
            })
            .collect();
        let churn = faults.map(|f| f.node_churn()).unwrap_or_default();

        let mut kernel: Kernel<ServiceEvent> = Kernel::new();
        for (i, &at) in arrivals_us.iter().enumerate() {
            kernel.schedule_at(at, ServiceEvent::Arrive(i));
        }
        for (idx, event) in churn.iter().enumerate() {
            kernel.schedule_at(to_us(event.at_s), ServiceEvent::Churn(idx));
        }

        let mut run = ServiceRun {
            cluster,
            placement: self.placement(),
            online: self.online(),
            faults,
            recorder,
            record: recorder.enabled(),
            repo,
            slots_per_node: config.slots_per_node,
            drivers: jobs.iter().map(|job| JobDriver::new(job, faults)).collect(),
            placements: vec![0; jobs.len()],
            charged_s: vec![0.0; jobs.len()],
            enqueued_us: vec![0; jobs.len()],
            parked_us: vec![0; jobs.len()],
            arrivals_us,
            jobs: &jobs,
            available: vec![true; cluster.len()],
            running: vec![0; cluster.len()],
            queues: vec![VecDeque::new(); cluster.len()],
            load: vec![0.0; cluster.len()],
            rr_next: 0,
            calibrating: BTreeMap::new(),
            failed: BTreeSet::new(),
            churn,
            latency: QuantileSketch::new(),
            wait: QuantileSketch::new(),
            depth: QuantileSketch::new(),
            replaced: 0,
            truncated: 0,
            done: 0,
            finished_at_us: 0,
            last_event_us: 0,
            monotone: true,
        };
        kernel.run_recorded(&mut run, recorder)?;
        if run.done < jobs.len() {
            return Err(RuntimeError::ServiceStalled {
                unfinished: jobs.len() - run.done,
            });
        }

        let summary = ServiceSummary {
            makespan_s: run.finished_at_us as f64 / 1e6,
            latency_s: Percentiles::from_sketch(&run.latency, 1e-6),
            queue_wait_s: Percentiles::from_sketch(&run.wait, 1e-6),
            queue_depth: Percentiles::from_sketch(&run.depth, 1.0),
            churn_events: run.churn.len(),
            replaced_jobs: run.replaced,
            truncated_jobs: run.truncated,
            events: kernel.processed(),
            quiesced: kernel.is_quiesced(),
            monotone: run.monotone,
            telemetry: recorder.telemetry(),
        };
        let ServiceRun {
            drivers,
            placements,
            repo,
            ..
        } = run;
        let mut report = assemble_report(cluster, &jobs, &placements, drivers, repo.stats());
        report.service = Some(summary);
        Ok(report)
    }
}
