//! The long-lived, churn-tolerant cluster service on the `simkit` kernel.
//!
//! [`ClusterScheduler::run_service`] is the third event loop over the
//! shared job-state machine of [`crate::cluster`] — and the first one
//! where *time* is real (virtual): jobs arrive at their trace timestamps,
//! every region enter/exit pair and phase completion is a scheduled event
//! whose virtual duration is the session's own accumulated wall time,
//! calibration completions release their same-workload waiters at the
//! instant the leader finishes, and nodes join, drain and fail mid-run on
//! the [`FaultInjector::node_churn`] schedule. Per-node run queues form
//! when [`ServiceConfig::slots_per_node`] bounds concurrency; queue depth
//! and sojourn are sampled at event granularity into deterministic
//! [`QuantileSketch`]es, and the report gains job-latency and queue-depth
//! percentiles ([`ServiceSummary`]).
//!
//! ## Determinism and bit-identity
//!
//! Execution order is a pure function of the trace timestamps and the
//! kernel's `(deliver_at, seq_id)` rule — no wall clock, no randomness.
//! Because per-job accounting is interleaving-independent (see
//! [`crate::session`]), a service run over a zero-interarrival trace with
//! no churn and unbounded slots is **bit-identical per job** to
//! [`ClusterScheduler::run`] and [`ClusterScheduler::run_parallel`] on
//! the same submissions: arrivals at `t = 0` are placed and admitted in
//! trace order (the sequential loop's first admission sweep, verbatim —
//! same placements, same serve calls, same calibration leaders), and each
//! session's events then replay its own timeline. The testkit
//! `event_core` invariant locks this equivalence in.
//!
//! ## Churn semantics
//!
//! * **Drain** — the node stops accepting placements; its *queued* jobs
//!   are re-placed onto the remaining available nodes (never dropped);
//!   running jobs finish normally.
//! * **Fail** — like drain, but running jobs are truncated at their next
//!   phase boundary (accounting collected up to the truncation and
//!   compared against an equally truncated baseline, exactly like an
//!   injected abort). A truncated calibration *leader* that never
//!   converged fails its workload's calibration, releasing waiters to
//!   the fallback path.
//! * **Join** — the node accepts placements again; anything still queued
//!   on unavailable nodes is re-placed immediately.
//!
//! When every node is unavailable, placement falls back to the full
//! fleet — a degraded cluster keeps serving rather than stranding jobs.
//!
//! ## In-loop replication
//!
//! [`ClusterScheduler::run_service_replicated`] serves the trace from a
//! [`ReplicaSet`] instead of one repository and makes anti-entropy
//! *concurrent with serving*: gossip rounds are first-class kernel
//! events interleaved with job events on a virtual-time cadence
//! ([`GossipConfig::cadence_us`]) — one gossip-sweep event per replica
//! plus a delivery event per round, exactly the
//! [`ReplicaSet::gossip_round`] decomposition — rather than a batch
//! [`ReplicaSet::converge`] after the run. The cadence parks when the
//! set quiesces and re-arms on any publication, read-repair pull,
//! replica crash or restart, so an idle service schedules no busywork.
//! Replicas crash and restart mid-run on the
//! [`FaultInjector::replica_churn`] schedule (nodes served by a crashed
//! replica re-route to the next alive one; a restarted replica rejoins
//! empty and catches up over the following rounds), and a repository
//! miss an established peer can serve triggers a targeted
//! [`PullModels`](crate::net::Message::PullModels) read-repair instead
//! of a cold calibration. Everything stays a pure function of the trace
//! and the seeds: reruns are bit-identical, and the converged model
//! maps match the batch `converge` oracle's winners.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use kernels::{BenchmarkSpec, QuantileSketch};
use obskit::{Recorder, Track};
use simkit::{EventSink, Kernel, Process, Time};
use simnode::Cluster;

use crate::cluster::{
    assemble_report, estimated_work, start_calibration, start_monitor, start_plain, ClusterReport,
    ClusterScheduler, EventOutcome, JobDriver, OnlineTuning, Placement, QueuedJob, State,
};
use crate::error::RuntimeError;
use crate::inject::{ChurnEvent, ChurnKind, FaultInjector, ReplicaChurnEvent, ReplicaChurnKind};
use crate::net::{NetError, ReplicaSet};
use crate::repository::{ModelKey, RepositoryHandle, RepositoryStats, ServedModel};

/// One job of a service trace: what to run, and *when* it arrives.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Job name (unique per trace; seeds the accounting noise).
    pub name: String,
    /// The benchmark the job runs.
    pub bench: BenchmarkSpec,
    /// Arrival time, seconds of virtual time from service start.
    pub arrival_s: f64,
}

/// Knobs for one service run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Concurrent sessions a node runs before arrivals queue on it
    /// (0 = unbounded, the sweep loops' implicit behavior).
    pub slots_per_node: usize,
}

/// Knobs for in-loop anti-entropy gossip
/// ([`ClusterScheduler::run_service_replicated`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Virtual microseconds between gossip rounds (each round is one
    /// transport tick, so session timeouts are measured in rounds).
    /// Clamped to ≥ 1.
    pub cadence_us: Time,
    /// Repair repository misses from established peers with a targeted
    /// pull instead of running a cold calibration.
    pub read_repair: bool,
    /// Gossip rounds a read-repair waits before re-pulling from the
    /// next candidate (a pull or its reply can be dropped). Clamped to
    /// ≥ 1.
    pub repair_retry_rounds: u64,
    /// Hard bound on total gossip rounds for one run — a plan the set
    /// can never settle under (e.g. a partition that never heals) must
    /// error with the stalled link named, not spin forever.
    pub max_rounds: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            cadence_us: 5_000,
            read_repair: true,
            repair_retry_rounds: 8,
            max_rounds: 100_000,
        }
    }
}

/// What in-loop replication did during one
/// [`ClusterScheduler::run_service_replicated`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationSummary {
    /// Replicas in the set.
    pub replicas: u32,
    /// Gossip rounds driven by the kernel (cadence parks when the set
    /// quiesces, so this counts useful rounds, not elapsed time).
    pub gossip_rounds: u64,
    /// Remote entries applied, summed over replicas' lifetimes.
    pub applied: u64,
    /// Stale remote entries ignored, summed over replicas' lifetimes.
    pub superseded: u64,
    /// Targeted read-repair pulls sent (including retries).
    pub repair_pulls: u64,
    /// Jobs released from read-repair parking.
    pub repair_released: u64,
    /// Read-repairs abandoned to cold calibration (no reachable holder
    /// within the attempt budget).
    pub repair_abandoned: u64,
    /// Replica crashes honored from the churn schedule.
    pub crashes: u64,
    /// Replica restarts honored from the churn schedule.
    pub restarts: u64,
    /// Every replica held an identical model map when the run ended.
    pub converged: bool,
    /// The set was quiescent (nothing in flight, every alive↔alive link
    /// established and clean) when the run ended.
    pub net_idle: bool,
}

/// p50/p95/p99/max of one sampled distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Extract from a sketch, scaling samples by `scale` (e.g. µs → s).
    fn from_sketch(sketch: &QuantileSketch, scale: f64) -> Self {
        let qs = sketch.percentiles(&[0.50, 0.95, 0.99]);
        Self {
            p50: qs[0] as f64 * scale,
            p95: qs[1] as f64 * scale,
            p99: qs[2] as f64 * scale,
            max: sketch.max() as f64 * scale,
        }
    }
}

/// Virtual-time metrics of one [`ClusterScheduler::run_service`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceSummary {
    /// Virtual time of the last job completion, seconds.
    pub makespan_s: f64,
    /// Job latency (arrival → finish), seconds of virtual time.
    pub latency_s: Percentiles,
    /// Time jobs spent queued before admission, seconds of virtual time.
    pub queue_wait_s: Percentiles,
    /// Per-node run-queue depth, sampled at every queue-affecting event.
    pub queue_depth: Percentiles,
    /// Churn events honored during the run.
    pub churn_events: usize,
    /// Queued or parked jobs re-placed off drained/failed/unavailable
    /// nodes (never dropped).
    pub replaced_jobs: u64,
    /// Running jobs truncated at a phase boundary by a node failure.
    pub truncated_jobs: u64,
    /// Kernel events dispatched.
    pub events: u64,
    /// The event heap was empty when the run ended (always true for a
    /// completed run; reported so invariants can assert it).
    pub quiesced: bool,
    /// Popped event timestamps never regressed (always true by kernel
    /// construction; reported so invariants can assert it).
    pub monotone: bool,
    /// Deterministic metrics snapshot, present when a recorder was
    /// attached via [`ClusterScheduler::with_recorder`]. Wall-derived
    /// series (`*_ns`) keep their sample counts but have their values
    /// blanked, so two recorded runs of the same inputs compare equal.
    pub telemetry: Option<obskit::MetricsSnapshot>,
    /// In-loop replication counters, present for
    /// [`ClusterScheduler::run_service_replicated`] runs.
    pub replication: Option<ReplicationSummary>,
}

impl ServiceSummary {
    /// The report lines
    /// [`format_report`](ClusterReport::format_report) appends for a
    /// service run.
    pub fn format_lines(&self) -> String {
        let mut out = format!(
            "service: makespan {:.1}s virtual, latency p50/p95/p99 \
             {:.3}/{:.3}/{:.3}s (max {:.3}s), queue depth p50/p95/p99 \
             {:.0}/{:.0}/{:.0} (max {:.0})\n",
            self.makespan_s,
            self.latency_s.p50,
            self.latency_s.p95,
            self.latency_s.p99,
            self.latency_s.max,
            self.queue_depth.p50,
            self.queue_depth.p95,
            self.queue_depth.p99,
            self.queue_depth.max,
        );
        if self.churn_events > 0 {
            out.push_str(&format!(
                "churn: {} events, {} queued jobs re-placed, {} running jobs truncated\n",
                self.churn_events, self.replaced_jobs, self.truncated_jobs,
            ));
        }
        if let Some(r) = &self.replication {
            out.push_str(&format!(
                "replication: {} replicas, {} gossip rounds, {} applied / {} stale, \
                 {} read-repair pulls ({} jobs released, {} abandoned), \
                 {} crashes / {} restarts, converged {}, net idle {}\n",
                r.replicas,
                r.gossip_rounds,
                r.applied,
                r.superseded,
                r.repair_pulls,
                r.repair_released,
                r.repair_abandoned,
                r.crashes,
                r.restarts,
                r.converged,
                r.net_idle,
            ));
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&format!(
                "telemetry: {} series ({} counters, {} gauges, {} histograms), \
                 {} spans, {} instants, {} timeline events dropped\n",
                telemetry.counters.len() + telemetry.gauges.len() + telemetry.histograms.len(),
                telemetry.counters.len(),
                telemetry.gauges.len(),
                telemetry.histograms.len(),
                telemetry.spans,
                telemetry.instants,
                telemetry.dropped_events,
            ));
        }
        out
    }
}

/// The typed event payloads of a service run.
enum ServiceEvent {
    /// Job `i` arrives and is placed (admitted or queued).
    Arrive(usize),
    /// Active job `i` advances by one region/phase event, or finishes.
    Step(usize),
    /// A calibration resolved (published, failed, or abandoned): release
    /// the workload's parked waiters.
    Resolve(ModelKey),
    /// Churn schedule entry `idx` fires.
    Churn(usize),
    /// Replica `id` runs its outbound gossip sweep for the current
    /// round (its per-replica gossip process).
    Gossip(u32),
    /// The round's delivery half: one transport tick, every inbox
    /// drained, read-repair progress checked, next round armed unless
    /// the set has quiesced.
    NetDeliver,
    /// Replica churn schedule entry `idx` fires (crash or restart).
    ReplicaChurn(usize),
    /// A read-repair landed (or was abandoned): release its parked
    /// waiters through the normal admission decision.
    Repaired(ModelKey),
}

/// Convert seconds of virtual time to the kernel's microsecond ticks.
fn to_us(seconds: f64) -> Time {
    (seconds.max(0.0) * 1e6).round() as Time
}

/// Read-repair pulls a stalled repair retries before abandoning the
/// key to cold calibration (its only holder may have crashed for good).
const REPAIR_ATTEMPT_BUDGET: u64 = 8;

/// One read-repair in flight: who pulls, who waits.
struct RepairState {
    /// The replica performing the pull (re-evaluated every round — the
    /// original may crash and its waiters re-route).
    replica: u32,
    /// Parked jobs waiting for the entry to land.
    waiters: Vec<usize>,
    /// Pulls sent so far; rotates the candidate target on retries.
    attempts: u64,
    /// Gossip rounds elapsed since the last pull.
    rounds_waiting: u64,
}

/// In-loop replication state: the replica set plus the service-side
/// gossip scheduling and read-repair bookkeeping.
struct NetState<'r, 'a> {
    set: &'r mut ReplicaSet<'a>,
    cadence_us: Time,
    read_repair: bool,
    repair_retry_rounds: u64,
    max_rounds: u64,
    /// Node index → home replica (`node % replicas`); while the home is
    /// crashed the node is served by the next alive id, wrapping.
    node_replica: Vec<u32>,
    replica_churn: Vec<ReplicaChurnEvent>,
    /// Misses with a repair pull in flight.
    repairing: BTreeMap<ModelKey, RepairState>,
    /// Keys that already went through one repair cycle: a repeat miss
    /// means the pulled entry did not satisfy the lookup (e.g. a
    /// fingerprint mismatch under exact matching), so it cold-calibrates
    /// instead of looping the repair path.
    repaired: BTreeSet<ModelKey>,
    /// A gossip round is armed and not yet delivered.
    round_scheduled: bool,
    rounds: u64,
    repair_pulls: u64,
    repair_released: u64,
    repair_abandoned: u64,
    crashes: u64,
    restarts: u64,
}

impl NetState<'_, '_> {
    /// The replica serving `node`: its home replica, or the next alive
    /// id (wrapping) while the home is crashed. Falls back to the home
    /// replica when the whole set is down.
    fn serving_replica(&self, node: usize) -> u32 {
        let n = self.set.len() as u32;
        let home = self.node_replica[node];
        (0..n)
            .map(|off| (home + off) % n)
            .find(|&id| !self.set.is_down(id))
            .unwrap_or(home)
    }
}

/// How a service run reaches its tuning models: one repository handle
/// ([`ClusterScheduler::run_service`]) or a replica per node group with
/// in-loop anti-entropy ([`ClusterScheduler::run_service_replicated`]).
enum RepoAccess<'r, 'a> {
    Single(&'r mut dyn RepositoryHandle),
    Replicated(NetState<'r, 'a>),
}

impl RepoAccess<'_, '_> {
    fn serve(&mut self, node: usize, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        match self {
            RepoAccess::Single(repo) => repo.serve(bench),
            RepoAccess::Replicated(net) => {
                let id = net.serving_replica(node);
                net.set
                    .replica_mut(id)
                    .map_err(RuntimeError::Replication)?
                    .serve(bench)
            }
        }
    }

    fn serve_stored(
        &mut self,
        node: usize,
        bench: &BenchmarkSpec,
    ) -> Result<Option<ServedModel>, RuntimeError> {
        match self {
            RepoAccess::Single(repo) => repo.serve_stored(bench),
            RepoAccess::Replicated(net) => {
                let id = net.serving_replica(node);
                net.set
                    .replica_mut(id)
                    .map_err(RuntimeError::Replication)?
                    .serve_stored(bench)
            }
        }
    }

    fn serve_fallback(
        &mut self,
        node: usize,
        bench: &BenchmarkSpec,
    ) -> Result<ServedModel, RuntimeError> {
        match self {
            RepoAccess::Single(repo) => repo.serve_fallback(bench),
            RepoAccess::Replicated(net) => {
                let id = net.serving_replica(node);
                net.set
                    .replica_mut(id)
                    .map_err(RuntimeError::Replication)?
                    .serve_fallback(bench)
            }
        }
    }

    fn publish_online(
        &mut self,
        node: usize,
        bench: &BenchmarkSpec,
        model: &ptf::TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        match self {
            RepoAccess::Single(repo) => repo.publish_online(bench, model, expected),
            RepoAccess::Replicated(net) => {
                let id = net.serving_replica(node);
                net.set
                    .replica_mut(id)
                    .expect("serving replica is in range by construction")
                    .publish_online(bench, model, expected)
            }
        }
    }

    /// Serving statistics — summed over replicas for a replicated run
    /// (a restarted replica's counters restart with its repository).
    fn stats(&self) -> RepositoryStats {
        match self {
            RepoAccess::Single(repo) => repo.stats(),
            RepoAccess::Replicated(net) => {
                let mut total = RepositoryStats::default();
                for id in 0..net.set.len() as u32 {
                    let stats = net.set.replica(id).expect("id in range").stats();
                    total = total.merged(&stats);
                }
                total
            }
        }
    }
}

/// The [`Process`] impl: all mutable state of one service run.
struct ServiceRun<'b, 'r, 'a> {
    cluster: &'b Cluster,
    placement: Placement,
    online: Option<OnlineTuning<'b>>,
    faults: Option<&'b dyn FaultInjector>,
    recorder: &'b dyn Recorder,
    /// `recorder.enabled()`, hoisted once: every instrumentation site
    /// branches on a bool instead of making a virtual call.
    record: bool,
    repo: RepoAccess<'r, 'a>,
    slots_per_node: usize,

    jobs: &'b [QueuedJob],
    arrivals_us: Vec<Time>,
    drivers: Vec<JobDriver<'b>>,
    placements: Vec<usize>,
    /// Session wall time already accounted onto the timeline, per job.
    charged_s: Vec<f64>,
    /// When the job last entered a queue (arrival or re-placement).
    enqueued_us: Vec<Time>,
    /// When the job parked behind an in-flight calibration (telemetry
    /// only; 0 = never parked).
    parked_us: Vec<Time>,

    available: Vec<bool>,
    running: Vec<usize>,
    queues: Vec<VecDeque<usize>>,
    load: Vec<f64>,
    rr_next: usize,

    /// Cold workloads with a calibration in flight → parked waiter jobs.
    calibrating: BTreeMap<ModelKey, Vec<usize>>,
    /// Workloads whose calibration failed: serve the fallback.
    failed: BTreeSet<ModelKey>,
    churn: Vec<ChurnEvent>,

    latency: QuantileSketch,
    wait: QuantileSketch,
    depth: QuantileSketch,
    replaced: u64,
    truncated: u64,
    done: usize,
    finished_at_us: Time,
    last_event_us: Time,
    monotone: bool,
}

impl ServiceRun<'_, '_, '_> {
    fn has_capacity(&self, node: usize) -> bool {
        self.slots_per_node == 0 || self.running[node] < self.slots_per_node
    }

    /// Sample the current run-queue depth of `node`.
    fn sample_depth(&mut self, node: usize) {
        self.depth.record(self.queues[node].len() as u64);
    }

    /// Pick a node for `bench` among the available nodes (all nodes when
    /// none is available), mirroring [`ClusterScheduler::submit`]'s
    /// policies exactly when the whole fleet is up.
    fn place(&mut self, bench: &BenchmarkSpec) -> usize {
        let len = self.cluster.len();
        let any_available = self.available.iter().any(|&a| a);
        let idx = match self.placement {
            Placement::RoundRobin => loop {
                let idx = self.rr_next % len;
                self.rr_next += 1;
                if !any_available || self.available[idx] {
                    break idx;
                }
            },
            Placement::LeastLoaded => self
                .load
                .iter()
                .enumerate()
                .filter(|&(i, _)| !any_available || self.available[i])
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        self.load[idx] += estimated_work(bench);
        idx
    }

    /// Place job `i` and admit it, or queue it behind the node's slots.
    fn place_or_queue(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let node = self.place(&jobs[i].bench);
        self.placements[i] = node;
        self.enqueued_us[i] = now;
        if self.has_capacity(node) {
            self.admit(i, now, sink)?;
        } else {
            self.queues[node].push_back(i);
            self.sample_depth(node);
        }
        Ok(())
    }

    /// Admit job `i` on its placed node: the sequential loop's admission
    /// decision, verbatim. Returns `false` when the job parked behind an
    /// in-flight same-workload calibration instead of starting (parked
    /// jobs hold no slot).
    fn admit(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<bool, RuntimeError> {
        let jobs = self.jobs;
        let job = &jobs[i];
        let node_idx = self.placements[i];
        let node = self.cluster.node(node_idx);
        let faults = self.faults;
        let (state, rejection) = match self.online {
            None => start_plain(job, node, self.repo.serve(node_idx, &job.bench)?)?,
            Some(online) => {
                let key = ModelKey::of(&job.bench);
                if self.failed.contains(&key) {
                    start_plain(job, node, self.repo.serve(node_idx, &job.bench)?)?
                } else if let Some(waiters) = self.calibrating.get_mut(&key) {
                    waiters.push(i);
                    self.parked_us[i] = now;
                    if self.record {
                        self.recorder.counter_add("service.parked", 1);
                    }
                    return Ok(false);
                } else {
                    match self.repo.serve_stored(node_idx, &job.bench)? {
                        Some(served) => start_monitor(job, node, served, online.config, faults)?,
                        None => {
                            if self.try_read_repair(i, now, sink)? {
                                return Ok(false);
                            }
                            let repo = &mut self.repo;
                            let (state, rejection, calibration_failed) =
                                start_calibration(job, node, &online, faults, &mut |b| {
                                    repo.serve_fallback(node_idx, b)
                                })?;
                            if calibration_failed {
                                self.failed.insert(key);
                            } else {
                                self.calibrating.insert(key, Vec::new());
                            }
                            (state, rejection)
                        }
                    }
                }
            }
        };
        self.drivers[i].state = state;
        self.drivers[i].rejection = rejection;
        self.running[self.placements[i]] += 1;
        let waited = now - self.enqueued_us[i];
        self.wait.record(waited);
        if self.record {
            self.recorder.counter_add("service.admissions", 1);
            self.recorder
                .histogram_record("service.queue_wait_us", waited);
            if waited > 0 {
                let track = Track::node(self.placements[i] as u32);
                self.recorder
                    .span(track, "job.queued", self.enqueued_us[i], waited);
            }
        }
        // Anything the session charged at start (e.g. the switch into its
        // launch configuration) delays its first step.
        self.charged_s[i] = 0.0;
        self.schedule_step(i, now, sink);
        Ok(true)
    }

    /// Schedule job `i`'s next step after the virtual time its session
    /// accumulated since the last one (min 1 µs so the timeline always
    /// advances).
    fn schedule_step(&mut self, i: usize, now: Time, sink: &mut dyn EventSink<ServiceEvent>) {
        let elapsed = self.drivers[i].elapsed_s();
        let dt = to_us(elapsed - self.charged_s[i]).max(1);
        self.charged_s[i] = elapsed;
        sink.schedule_at(now + dt, ServiceEvent::Step(i));
    }

    /// Admit queued jobs on `node` while it has capacity.
    fn pump(
        &mut self,
        node: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        while self.has_capacity(node) {
            let Some(i) = self.queues[node].pop_front() else {
                break;
            };
            self.sample_depth(node);
            self.admit(i, now, sink)?;
        }
        Ok(())
    }

    /// One step of active job `i`: finish it when its iterations are
    /// exhausted, otherwise advance one region/phase event and reschedule.
    fn step(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let job = &jobs[i];
        if self.drivers[i].finished_iterations() {
            let was_online = matches!(self.drivers[i].state, State::Online(_));
            let node_idx = self.placements[i];
            let node = self.cluster.node(node_idx);
            let Self { drivers, repo, .. } = self;
            drivers[i].finish(job, node, &mut |bench, publication| {
                repo.publish_online(node_idx, bench, &publication.model, publication.expected)
            })?;
            // A publication must gossip out while the service keeps
            // running: re-arm the cadence if it had parked.
            if self.drivers[i].published_version.is_some() {
                self.ensure_round(now, sink);
            }
            // The key is only needed off the hot path: plain serves step
            // to completion without ever touching the calibration latch.
            if was_online {
                let key = ModelKey::of(&job.bench);
                if self.calibrating.contains_key(&key) {
                    // The workload's calibration leader finished:
                    // published (waiters become hits) or not (an
                    // abort/failure truncated it before convergence —
                    // waiters degrade to the fallback). Resolution is its
                    // own same-instant event, so waiter admissions order
                    // behind everything already due.
                    if self.drivers[i].published_version.is_none() {
                        self.failed.insert(key.clone());
                    }
                    if self.record {
                        self.recorder.instant(
                            Track::node(self.placements[i] as u32),
                            "calib.resolved",
                            now,
                        );
                    }
                    sink.schedule_at(now, ServiceEvent::Resolve(key));
                }
            }
            self.running[node_idx] -= 1;
            let latency = now - self.arrivals_us[i];
            self.latency.record(latency);
            if self.record {
                self.recorder.counter_add("service.jobs_done", 1);
                self.recorder.span(
                    Track::node(node_idx as u32),
                    "job",
                    self.arrivals_us[i],
                    latency,
                );
            }
            self.done += 1;
            self.finished_at_us = self.finished_at_us.max(now);
            self.pump(node_idx, now, sink)?;
        } else {
            // Batched: one virtual-time step covers the session's whole
            // phase — the contiguous region events plus the boundary —
            // instead of one event dispatch per region.
            match self.drivers[i].advance_phase(&job.bench)? {
                EventOutcome::Advanced => {}
                EventOutcome::Abandoned => {
                    let key = ModelKey::of(&job.bench);
                    self.failed.insert(key.clone());
                    if self.calibrating.contains_key(&key) {
                        if self.record {
                            self.recorder.instant(
                                Track::node(self.placements[i] as u32),
                                "calib.resolved",
                                now,
                            );
                        }
                        sink.schedule_at(now, ServiceEvent::Resolve(key));
                    }
                }
            }
            self.schedule_step(i, now, sink);
        }
        Ok(())
    }

    /// Release a resolved calibration's parked waiters, in park order:
    /// re-admit each through the normal admission decision (hit → monitor,
    /// failed → fallback serve, evicted → fresh calibration), re-placing
    /// any whose node churned away and queueing any that no longer fits.
    fn resolve(
        &mut self,
        key: &ModelKey,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let waiters = self.calibrating.remove(key).unwrap_or_default();
        for i in waiters {
            if self.record {
                self.recorder.counter_add("service.calib_released", 1);
                self.recorder
                    .histogram_record("service.calib_wait_us", now - self.parked_us[i]);
            }
            self.release_waiter(i, now, sink)?;
        }
        Ok(())
    }

    /// Re-admit one parked job through the normal admission decision,
    /// re-placing it if its node churned away and queueing it when the
    /// node's slots are full.
    fn release_waiter(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        if !self.available[self.placements[i]] && self.available.iter().any(|&a| a) {
            self.load[self.placements[i]] -= estimated_work(&jobs[i].bench);
            self.replaced += 1;
            if self.record {
                self.recorder.counter_add("service.replaced", 1);
            }
            return self.place_or_queue(i, now, sink);
        }
        let node = self.placements[i];
        self.enqueued_us[i] = now;
        if self.has_capacity(node) {
            self.admit(i, now, sink)?;
        } else {
            self.queues[node].push_back(i);
            self.sample_depth(node);
        }
        Ok(())
    }

    /// Try to repair a repository miss from an established peer instead
    /// of cold-calibrating: park the job behind (or join) a targeted
    /// pull. Returns whether the job parked. A key that already went
    /// through one repair cycle is never repaired again — its repeat
    /// miss means the pulled entry did not satisfy the lookup.
    fn try_read_repair(
        &mut self,
        i: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<bool, RuntimeError> {
        let key = ModelKey::of(&self.jobs[i].bench);
        let node = self.placements[i];
        let RepoAccess::Replicated(net) = &mut self.repo else {
            return Ok(false);
        };
        if !net.read_repair || net.repaired.contains(&key) {
            return Ok(false);
        }
        if let Some(repair) = net.repairing.get_mut(&key) {
            repair.waiters.push(i);
            self.parked_us[i] = now;
            if self.record {
                self.recorder.counter_add("service.repair_parked", 1);
            }
            return Ok(true);
        }
        let replica = net.serving_replica(node);
        let candidates = net.set.repair_candidates(replica, &key.application);
        let Some(&target) = candidates.first() else {
            return Ok(false); // no established peer holds it: cold path
        };
        net.set
            .send_pull(replica, target, vec![key.application.clone()])
            .map_err(RuntimeError::Replication)?;
        net.repair_pulls += 1;
        net.repairing.insert(
            key,
            RepairState {
                replica,
                waiters: vec![i],
                attempts: 1,
                rounds_waiting: 0,
            },
        );
        self.parked_us[i] = now;
        if self.record {
            self.recorder.counter_add("service.repair_pulls", 1);
            self.recorder.counter_add("service.repair_parked", 1);
        }
        self.ensure_round(now, sink);
        Ok(true)
    }

    /// Arm the next gossip round if none is armed: one
    /// [`ServiceEvent::Gossip`] sweep per replica plus the
    /// [`ServiceEvent::NetDeliver`] delivery half, one cadence from now.
    /// No-op for unreplicated runs.
    fn ensure_round(&mut self, now: Time, sink: &mut dyn EventSink<ServiceEvent>) {
        let RepoAccess::Replicated(net) = &mut self.repo else {
            return;
        };
        if net.round_scheduled {
            return;
        }
        net.round_scheduled = true;
        let at = now + net.cadence_us;
        for id in 0..net.set.len() as u32 {
            sink.schedule_at(at, ServiceEvent::Gossip(id));
        }
        sink.schedule_at(at, ServiceEvent::NetDeliver);
    }

    /// The delivery half of a gossip round: advance the transport one
    /// tick, drain every inbox, check read-repair progress, and arm the
    /// next round unless the set quiesced with nothing left to repair.
    fn net_deliver(
        &mut self,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let RepoAccess::Replicated(net) = &mut self.repo else {
            return Ok(());
        };
        net.round_scheduled = false;
        net.rounds += 1;
        if net.rounds > net.max_rounds {
            return Err(RuntimeError::Replication(NetError::ConvergeTimeout {
                ticks: net.set.ticks(),
                culprit: net.set.stall_culprit(),
            }));
        }
        net.set.deliver_round().map_err(RuntimeError::Replication)?;
        // Read-repair progress. A pull that landed releases its waiters
        // via a same-instant event (so admissions order behind
        // everything already due); a stalled one re-pulls on the retry
        // cadence, rotating targets; one out of budget is abandoned to
        // cold calibration.
        let keys: Vec<ModelKey> = net.repairing.keys().cloned().collect();
        for key in keys {
            let first_waiter = net.repairing[&key].waiters[0];
            let replica = net.serving_replica(self.placements[first_waiter]);
            let repair = net.repairing.get_mut(&key).expect("key is present");
            repair.replica = replica;
            if net.set.holds(replica, &key.application) {
                sink.schedule_at(now, ServiceEvent::Repaired(key));
                continue;
            }
            repair.rounds_waiting += 1;
            if repair.rounds_waiting >= net.repair_retry_rounds {
                repair.rounds_waiting = 0;
                repair.attempts += 1;
                if repair.attempts > REPAIR_ATTEMPT_BUDGET {
                    net.repair_abandoned += 1;
                    sink.schedule_at(now, ServiceEvent::Repaired(key));
                    continue;
                }
                let candidates = net.set.repair_candidates(replica, &key.application);
                let pick = (repair.attempts - 1) as usize % candidates.len().max(1);
                if let Some(&target) = candidates.get(pick) {
                    net.set
                        .send_pull(replica, target, vec![key.application.clone()])
                        .map_err(RuntimeError::Replication)?;
                    net.repair_pulls += 1;
                    if self.record {
                        self.recorder.counter_add("service.repair_pulls", 1);
                    }
                }
            }
        }
        // Park the cadence when there is nothing left to move; any
        // publication, pull, crash or restart re-arms it.
        let settled = net.set.quiesced() && net.repairing.is_empty();
        if !settled {
            self.ensure_round(now, sink);
        }
        Ok(())
    }

    /// Release a read-repair's parked waiters — the repair landed or
    /// was abandoned. The key is marked repaired either way, so a
    /// repeat miss cold-calibrates instead of looping.
    fn repaired(
        &mut self,
        key: &ModelKey,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let RepoAccess::Replicated(net) = &mut self.repo else {
            return Ok(());
        };
        let Some(repair) = net.repairing.remove(key) else {
            return Ok(());
        };
        net.repaired.insert(key.clone());
        net.repair_released += repair.waiters.len() as u64;
        for i in repair.waiters {
            if self.record {
                self.recorder.counter_add("service.repair_released", 1);
                self.recorder
                    .histogram_record("service.repair_wait_us", now - self.parked_us[i]);
            }
            self.release_waiter(i, now, sink)?;
        }
        Ok(())
    }

    /// Honor one replica churn entry: a crash tears the replica's
    /// sessions down and stops it serving (its nodes re-route to the
    /// next alive replica); a restart rejoins it empty to catch up over
    /// the following rounds. Out-of-set ids and redundant events are
    /// ignored.
    fn replica_churn_event(
        &mut self,
        idx: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let RepoAccess::Replicated(net) = &mut self.repo else {
            return Ok(());
        };
        let event = net.replica_churn[idx];
        if event.replica as usize >= net.set.len() {
            return Ok(());
        }
        match event.kind {
            ReplicaChurnKind::Crash => {
                if net.set.is_down(event.replica) {
                    return Ok(());
                }
                net.set
                    .crash(event.replica)
                    .map_err(RuntimeError::Replication)?;
                net.crashes += 1;
            }
            ReplicaChurnKind::Restart => {
                if !net.set.is_down(event.replica) {
                    return Ok(());
                }
                net.set
                    .restart(event.replica)
                    .map_err(RuntimeError::Replication)?;
                net.restarts += 1;
            }
        }
        if self.record {
            let name = match event.kind {
                ReplicaChurnKind::Crash => "replica.crash",
                ReplicaChurnKind::Restart => "replica.restart",
            };
            self.recorder.instant(Track::net(), name, now);
        }
        // Survivors re-settle after a crash; a rejoiner catches up.
        self.ensure_round(now, sink);
        Ok(())
    }

    /// Re-place everything queued on `node` onto the rest of the fleet.
    fn requeue_from(
        &mut self,
        node: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let jobs = self.jobs;
        let queued: Vec<usize> = self.queues[node].drain(..).collect();
        if !queued.is_empty() {
            self.sample_depth(node);
        }
        for i in queued {
            self.load[node] -= estimated_work(&jobs[i].bench);
            self.replaced += 1;
            if self.record {
                self.recorder.counter_add("service.replaced", 1);
            }
            self.place_or_queue(i, now, sink)?;
        }
        Ok(())
    }

    /// Honor one churn schedule entry.
    fn churn_event(
        &mut self,
        idx: usize,
        now: Time,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        let event = self.churn[idx];
        let node = event.node as usize;
        if node >= self.cluster.len() {
            return Ok(()); // out-of-fleet node: nothing to churn
        }
        if self.record {
            let name = match event.kind {
                ChurnKind::Join => "churn.join",
                ChurnKind::Drain => "churn.drain",
                ChurnKind::Fail => "churn.fail",
            };
            self.recorder.instant(Track::node(event.node), name, now);
            self.recorder.counter_add("service.churn_events", 1);
        }
        match event.kind {
            ChurnKind::Join => {
                self.available[node] = true;
                // Anything stranded on still-unavailable nodes (placed
                // while the whole fleet was down) moves here.
                for other in 0..self.cluster.len() {
                    if !self.available[other] {
                        self.requeue_from(other, now, sink)?;
                    }
                }
                self.pump(node, now, sink)?;
            }
            ChurnKind::Drain => {
                self.available[node] = false;
                self.requeue_from(node, now, sink)?;
            }
            ChurnKind::Fail => {
                self.available[node] = false;
                self.requeue_from(node, now, sink)?;
                // Truncate running jobs at their next phase boundary, the
                // same clamp an injected abort applies.
                for i in 0..self.placements.len() {
                    if self.placements[i] == node && self.drivers[i].is_active() {
                        let cut = (self.drivers[i].phase_iteration() + 1).max(1);
                        if cut < self.drivers[i].iterations {
                            self.drivers[i].iterations = cut;
                            self.truncated += 1;
                            if self.record {
                                self.recorder.counter_add("service.truncated", 1);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Process<ServiceEvent> for ServiceRun<'_, '_, '_> {
    type Error = RuntimeError;

    fn handle(
        &mut self,
        now: Time,
        event: ServiceEvent,
        sink: &mut dyn EventSink<ServiceEvent>,
    ) -> Result<(), RuntimeError> {
        if now < self.last_event_us {
            self.monotone = false;
        }
        self.last_event_us = now;
        match event {
            ServiceEvent::Arrive(i) => {
                if self.record {
                    self.recorder.counter_add("service.arrivals", 1);
                }
                self.place_or_queue(i, now, sink)
            }
            ServiceEvent::Step(i) => self.step(i, now, sink),
            ServiceEvent::Resolve(key) => self.resolve(&key, now, sink),
            ServiceEvent::Churn(idx) => self.churn_event(idx, now, sink),
            ServiceEvent::Gossip(id) => {
                if let RepoAccess::Replicated(net) = &mut self.repo {
                    net.set
                        .pump_replica(id)
                        .map_err(RuntimeError::Replication)?;
                }
                Ok(())
            }
            ServiceEvent::NetDeliver => self.net_deliver(now, sink),
            ServiceEvent::ReplicaChurn(idx) => self.replica_churn_event(idx, now, sink),
            ServiceEvent::Repaired(key) => self.repaired(&key, now, sink),
        }
    }
}

impl ClusterScheduler<'_> {
    /// Run `trace` as a long-lived service in virtual time, serving
    /// tuning models from `repo`.
    ///
    /// Unlike [`ClusterScheduler::run`] — which consumes the submission
    /// queue as an *ordering* and sweeps every active session in lockstep
    /// — this is a discrete-event simulation on the [`simkit`] kernel:
    /// jobs are placed when their [`JobArrival::arrival_s`] timestamp
    /// fires, each session's region and phase events are scheduled at the
    /// virtual times the session itself accounts, and the node
    /// join/drain/fail schedule from [`FaultInjector::node_churn`] (via
    /// [`ClusterScheduler::with_faults`]) is honored mid-run. The
    /// returned report carries a [`ServiceSummary`] with latency,
    /// queue-wait and queue-depth percentiles.
    ///
    /// On a zero-interarrival trace with no churn and unbounded slots,
    /// per-job accounting is bit-identical to both sweep loops (the
    /// `event_core` testkit invariant). The submission queue is not
    /// consumed — the trace is the workload.
    pub fn run_service(
        &mut self,
        trace: Vec<JobArrival>,
        repo: &mut dyn RepositoryHandle,
        config: &ServiceConfig,
    ) -> Result<ClusterReport, RuntimeError> {
        self.run_service_impl(trace, RepoAccess::Single(repo), config)
    }

    /// Run `trace` as a long-lived service over a [`ReplicaSet`], with
    /// anti-entropy gossip *in the loop*: rounds are kernel events on
    /// the [`GossipConfig::cadence_us`] virtual-time cadence,
    /// interleaved with job events, parking when the set quiesces and
    /// re-arming on publications, read-repair pulls and replica churn.
    /// Each node serves from its home replica (`node % replicas`),
    /// re-routing to the next alive id while the home is crashed on the
    /// [`FaultInjector::replica_churn`] schedule. A repository miss an
    /// established peer can serve becomes a targeted read-repair pull
    /// instead of a cold calibration (when [`GossipConfig::read_repair`]
    /// is on). By the time the run returns, the set has converged
    /// in-loop — no trailing [`ReplicaSet::converge`] is needed — and
    /// the report's [`ServiceSummary::replication`] says what the net
    /// layer did. Reruns over the same inputs are bit-identical.
    pub fn run_service_replicated(
        &mut self,
        trace: Vec<JobArrival>,
        set: &mut ReplicaSet<'_>,
        gossip: &GossipConfig,
        config: &ServiceConfig,
    ) -> Result<ClusterReport, RuntimeError> {
        let replicas = set.len() as u32;
        let node_replica: Vec<u32> = (0..self.cluster().len())
            .map(|n| n as u32 % replicas)
            .collect();
        let replica_churn = self.faults().map(|f| f.replica_churn()).unwrap_or_default();
        let net = NetState {
            set,
            cadence_us: gossip.cadence_us.max(1),
            read_repair: gossip.read_repair,
            repair_retry_rounds: gossip.repair_retry_rounds.max(1),
            max_rounds: gossip.max_rounds.max(1),
            node_replica,
            replica_churn,
            repairing: BTreeMap::new(),
            repaired: BTreeSet::new(),
            round_scheduled: false,
            rounds: 0,
            repair_pulls: 0,
            repair_released: 0,
            repair_abandoned: 0,
            crashes: 0,
            restarts: 0,
        };
        self.run_service_impl(trace, RepoAccess::Replicated(net), config)
    }

    fn run_service_impl(
        &mut self,
        trace: Vec<JobArrival>,
        mut repo: RepoAccess<'_, '_>,
        config: &ServiceConfig,
    ) -> Result<ClusterReport, RuntimeError> {
        let cluster = self.cluster();
        let faults = self.faults();
        let recorder = self.recorder();
        let arrivals_us: Vec<Time> = trace.iter().map(|a| to_us(a.arrival_s)).collect();
        // Move (not clone) the specs out of the trace: at million-job
        // scale a second copy of every spec is real memory and time.
        let jobs: Vec<QueuedJob> = trace
            .into_iter()
            .map(|a| QueuedJob {
                name: a.name,
                bench: a.bench,
                node_idx: 0,
            })
            .collect();
        let churn = faults.map(|f| f.node_churn()).unwrap_or_default();

        let mut kernel: Kernel<ServiceEvent> = Kernel::new();
        for (i, &at) in arrivals_us.iter().enumerate() {
            kernel.schedule_at(at, ServiceEvent::Arrive(i));
        }
        for (idx, event) in churn.iter().enumerate() {
            kernel.schedule_at(to_us(event.at_s), ServiceEvent::Churn(idx));
        }
        if let RepoAccess::Replicated(net) = &mut repo {
            for (idx, event) in net.replica_churn.iter().enumerate() {
                kernel.schedule_at(to_us(event.at_s), ServiceEvent::ReplicaChurn(idx));
            }
            // The first rounds run immediately: sessions establish
            // before the trace warms up, so read-repair has established
            // peers to pull from by the first miss.
            net.round_scheduled = true;
            for id in 0..net.set.len() as u32 {
                kernel.schedule_at(0, ServiceEvent::Gossip(id));
            }
            kernel.schedule_at(0, ServiceEvent::NetDeliver);
        }

        let mut run = ServiceRun {
            cluster,
            placement: self.placement(),
            online: self.online(),
            faults,
            recorder,
            record: recorder.enabled(),
            repo,
            slots_per_node: config.slots_per_node,
            drivers: jobs.iter().map(|job| JobDriver::new(job, faults)).collect(),
            placements: vec![0; jobs.len()],
            charged_s: vec![0.0; jobs.len()],
            enqueued_us: vec![0; jobs.len()],
            parked_us: vec![0; jobs.len()],
            arrivals_us,
            jobs: &jobs,
            available: vec![true; cluster.len()],
            running: vec![0; cluster.len()],
            queues: vec![VecDeque::new(); cluster.len()],
            load: vec![0.0; cluster.len()],
            rr_next: 0,
            calibrating: BTreeMap::new(),
            failed: BTreeSet::new(),
            churn,
            latency: QuantileSketch::new(),
            wait: QuantileSketch::new(),
            depth: QuantileSketch::new(),
            replaced: 0,
            truncated: 0,
            done: 0,
            finished_at_us: 0,
            last_event_us: 0,
            monotone: true,
        };
        kernel.run_recorded(&mut run, recorder)?;
        if run.done < jobs.len() {
            return Err(RuntimeError::ServiceStalled {
                unfinished: jobs.len() - run.done,
            });
        }

        let replication = match &run.repo {
            RepoAccess::Single(_) => None,
            RepoAccess::Replicated(net) => {
                let totals = net.set.replication_totals();
                Some(ReplicationSummary {
                    replicas: net.set.len() as u32,
                    gossip_rounds: net.rounds,
                    applied: totals.applied,
                    superseded: totals.superseded,
                    repair_pulls: net.repair_pulls,
                    repair_released: net.repair_released,
                    repair_abandoned: net.repair_abandoned,
                    crashes: net.crashes,
                    restarts: net.restarts,
                    converged: net.set.converged(),
                    net_idle: net.set.quiesced(),
                })
            }
        };
        let summary = ServiceSummary {
            makespan_s: run.finished_at_us as f64 / 1e6,
            latency_s: Percentiles::from_sketch(&run.latency, 1e-6),
            queue_wait_s: Percentiles::from_sketch(&run.wait, 1e-6),
            queue_depth: Percentiles::from_sketch(&run.depth, 1.0),
            churn_events: run.churn.len(),
            replaced_jobs: run.replaced,
            truncated_jobs: run.truncated,
            events: kernel.processed(),
            quiesced: kernel.is_quiesced(),
            monotone: run.monotone,
            telemetry: recorder.telemetry(),
            replication,
        };
        let ServiceRun {
            drivers,
            placements,
            repo,
            ..
        } = run;
        let mut report = assemble_report(cluster, &jobs, &placements, drivers, repo.stats());
        report.service = Some(summary);
        Ok(report)
    }
}
