//! Cluster-scale tuning-model serving.
//!
//! Design time produces one tuning model per `(application, workload)`;
//! production resubmits the same codes over and over. The
//! [`TuningModelRepository`] closes that loop: it stores models in their
//! serialized JSON form — the same format `SCOREP_RRL_TMM_PATH` files use
//! — keyed by application name plus benchmark fingerprint, and serves them
//! to [`crate::RuntimeSession`]s with hit/miss statistics. When no model
//! matches, a configurable *calibration fallback* (the best-known static
//! configuration, Table V style) is served instead, so an untuned job
//! still runs at a sensible static operating point rather than the
//! platform default.

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use ptf::{Advice, TuningModel};
use serde::{Deserialize, Serialize};
use simnode::SystemConfig;

use crate::error::RuntimeError;

/// Key under which a tuning model is stored: the application name plus
/// the workload fingerprint of the benchmark it was tuned for.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelKey {
    /// Application name.
    pub application: String,
    /// Workload fingerprint (`BenchmarkSpec::fingerprint`).
    pub fingerprint: u64,
}

impl ModelKey {
    /// The key for a benchmark.
    pub fn of(bench: &BenchmarkSpec) -> Self {
        Self {
            application: bench.name.clone(),
            fingerprint: bench.fingerprint(),
        }
    }
}

/// Where a served model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSource {
    /// A stored tuning model matched the job's application + workload.
    Repository,
    /// No model matched; the calibration fallback configuration was
    /// served as a single-scenario static model.
    Fallback,
}

/// A tuning model served for one job, with its provenance.
#[derive(Debug, Clone)]
pub struct ServedModel {
    /// The model the session will resolve scenarios against.
    pub model: TuningModel,
    /// Whether it came from the repository or the fallback.
    pub source: ModelSource,
}

/// Serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepositoryStats {
    /// Lookups answered by a stored model.
    pub hits: u64,
    /// Lookups that found no stored model.
    pub misses: u64,
    /// Misses answered by the calibration fallback (the rest errored).
    pub fallbacks: u64,
    /// Lookups that found a stored entry that failed to parse.
    pub errors: u64,
}

impl RepositoryStats {
    /// Total lookups served (including ones that errored).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.errors
    }

    /// Fraction of lookups answered by a stored model (0.0 when no
    /// lookups have happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Stores serialized tuning models and serves them per job.
///
/// Models are kept in their JSON wire form (what a
/// `SCOREP_RRL_TMM_PATH` file contains), so storage is exactly the
/// serialisation format and a corrupt entry surfaces as
/// [`RuntimeError::Parse`] at serve time instead of a panic.
#[derive(Debug, Default)]
pub struct TuningModelRepository {
    models: BTreeMap<ModelKey, String>,
    fallback: Option<SystemConfig>,
    stats: RepositoryStats,
}

impl TuningModelRepository {
    /// Empty repository with no fallback.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve `config` as a static single-scenario model whenever no
    /// stored model matches (builder form).
    #[must_use]
    pub fn with_fallback(mut self, config: SystemConfig) -> Self {
        self.fallback = Some(config);
        self
    }

    /// Set or replace the calibration fallback configuration.
    pub fn set_fallback(&mut self, config: SystemConfig) {
        self.fallback = Some(config);
    }

    /// The configured fallback, if any.
    pub fn fallback(&self) -> Option<SystemConfig> {
        self.fallback
    }

    /// Store the tuning model a design-time session produced, under the
    /// advice's own application + fingerprint — the design-time → runtime
    /// handoff.
    pub fn publish(&mut self, advice: &Advice) {
        let key = ModelKey {
            application: advice.tuning_model.application.clone(),
            fingerprint: advice.benchmark_fingerprint,
        };
        self.models.insert(key, advice.tuning_model.to_json());
    }

    /// Store a tuning model for a benchmark (replaces any previous entry
    /// for the same workload).
    pub fn insert(&mut self, bench: &BenchmarkSpec, model: &TuningModel) {
        self.models.insert(ModelKey::of(bench), model.to_json());
    }

    /// Whether a stored model matches this benchmark's workload.
    pub fn contains(&self, bench: &BenchmarkSpec) -> bool {
        self.models.contains_key(&ModelKey::of(bench))
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> RepositoryStats {
        self.stats
    }

    /// Serve a model for a job about to run `bench`.
    ///
    /// A stored model whose key matches is parsed from its serialized
    /// form and returned as a [`ModelSource::Repository`] hit. On a miss
    /// the calibration fallback — if configured — is wrapped as a
    /// zero-scenario model whose phase configuration is the fallback, so
    /// every region of the job runs statically at that configuration.
    /// Without a fallback the miss is a [`RuntimeError::NoModel`].
    pub fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        let key = ModelKey::of(bench);
        if let Some(json) = self.models.get(&key) {
            return match TuningModel::from_json(json) {
                Ok(model) => {
                    self.stats.hits += 1;
                    Ok(ServedModel {
                        model,
                        source: ModelSource::Repository,
                    })
                }
                Err(e) => {
                    self.stats.errors += 1;
                    Err(RuntimeError::Parse(e))
                }
            };
        }
        self.stats.misses += 1;
        match self.fallback {
            Some(config) => {
                self.stats.fallbacks += 1;
                Ok(ServedModel {
                    model: TuningModel::new(&bench.name, &[], config),
                    source: ModelSource::Fallback,
                })
            }
            None => Err(RuntimeError::NoModel {
                application: bench.name.clone(),
                fingerprint: key.fingerprint,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> BenchmarkSpec {
        kernels::benchmark("miniMD").unwrap()
    }

    fn model() -> TuningModel {
        TuningModel::new(
            "miniMD",
            &[("compute_force".into(), SystemConfig::new(24, 2500, 1500))],
            SystemConfig::new(24, 2500, 1500),
        )
    }

    #[test]
    fn serve_hits_stored_model() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        repo.insert(&b, &model());
        assert!(repo.contains(&b));
        assert_eq!(repo.len(), 1);
        let served = repo.serve(&b).expect("hit");
        assert_eq!(served.source, ModelSource::Repository);
        assert_eq!(served.model, model());
        assert_eq!(repo.stats().hits, 1);
        assert_eq!(repo.stats().misses, 0);
        assert!((repo.stats().hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_without_fallback_is_no_model() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        let err = repo.serve(&b).unwrap_err();
        assert!(matches!(err, RuntimeError::NoModel { .. }));
        assert_eq!(repo.stats().misses, 1);
        assert_eq!(repo.stats().fallbacks, 0);
        assert_eq!(repo.stats().hit_rate(), 0.0);
    }

    #[test]
    fn miss_with_fallback_serves_static_model() {
        let b = bench();
        let fb = SystemConfig::new(24, 2400, 1700);
        let mut repo = TuningModelRepository::new().with_fallback(fb);
        assert_eq!(repo.fallback(), Some(fb));
        let served = repo.serve(&b).expect("fallback");
        assert_eq!(served.source, ModelSource::Fallback);
        assert_eq!(served.model.scenario_count(), 0);
        assert_eq!(served.model.lookup("anything"), fb);
        assert_eq!(repo.stats().fallbacks, 1);
    }

    #[test]
    fn workload_change_misses() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::taurus_default());
        repo.insert(&b, &model());
        let mut scaled = b.clone();
        scaled.phase_iterations *= 2;
        let served = repo.serve(&scaled).expect("fallback on changed workload");
        assert_eq!(served.source, ModelSource::Fallback);
        assert_eq!(repo.stats().hits, 0);
        assert_eq!(repo.stats().misses, 1);
    }

    #[test]
    fn corrupt_entry_surfaces_as_parse_error_and_is_counted() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        repo.models.insert(ModelKey::of(&b), "{not json".into());
        let err = repo.serve(&b).unwrap_err();
        assert!(matches!(err, RuntimeError::Parse(_)));
        let s = repo.stats();
        assert_eq!((s.hits, s.misses, s.errors), (0, 0, 1));
        assert_eq!(s.lookups(), 1, "failed serves still count as traffic");
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate_mixes() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::taurus_default());
        repo.insert(&b, &model());
        let mut other = b.clone();
        other.name = "renamed".into();
        repo.serve(&b).unwrap();
        repo.serve(&b).unwrap();
        repo.serve(&other).unwrap();
        let s = repo.stats();
        assert_eq!((s.hits, s.misses, s.fallbacks), (2, 1, 1));
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
