//! Cluster-scale tuning-model serving.
//!
//! Design time produces one tuning model per `(application, workload)`;
//! production resubmits the same codes over and over. The
//! [`TuningModelRepository`] closes that loop: it stores models in their
//! serialized JSON form — the same format `SCOREP_RRL_TMM_PATH` files use
//! — keyed by application name plus benchmark fingerprint, and serves them
//! to [`crate::RuntimeSession`]s with hit/miss statistics. When no model
//! matches, a configurable *calibration fallback* (the best-known static
//! configuration, Table V style) is served instead, so an untuned job
//! still runs at a sensible static operating point rather than the
//! platform default.
//!
//! Every stored entry carries a [`ModelProvenance`] record: a
//! monotonically increasing version per application, whether the model
//! came from design-time analysis or from the runtime's
//! [`OnlineTuner`](crate::OnlineTuner), and the per-region energy
//! expectations the [`DriftDetector`](crate::DriftDetector) compares live
//! measurements against. A bounded repository
//! ([`TuningModelRepository::with_capacity`]) evicts the
//! least-recently-used entry when full, and an application-level
//! [`MatchPolicy`] can serve the latest model for an application whose
//! exact workload fingerprint missed — trading exactness for warm starts,
//! with the drift detector guarding against the model having gone stale.
//!
//! Internally all of the above lives in one `Shard` — map, LRU clock,
//! version lineage, stats. `TuningModelRepository` is a thin single-shard
//! wrapper with the classic `&mut self` API; the concurrent
//! [`SharedRepository`](crate::SharedRepository) spreads the same shard
//! type across N reader-writer locks for lock-striped parallel serving.

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use ptf::{Advice, TuningModel};
use serde::{Deserialize, Serialize};
use simnode::SystemConfig;

use crate::error::RuntimeError;

/// Key under which a tuning model is stored: the application name plus
/// the workload fingerprint of the benchmark it was tuned for.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelKey {
    /// Application name.
    pub application: String,
    /// Workload fingerprint (`BenchmarkSpec::fingerprint`).
    pub fingerprint: u64,
}

impl ModelKey {
    /// The key for a benchmark.
    pub fn of(bench: &BenchmarkSpec) -> Self {
        Self {
            application: bench.name.clone(),
            fingerprint: bench.fingerprint(),
        }
    }
}

/// Where a served model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSource {
    /// A stored design-time tuning model matched the job's application +
    /// workload.
    Repository,
    /// A model the runtime's online tuner calibrated and published back
    /// matched the job's application + workload.
    Online,
    /// No model matched; the calibration fallback configuration was
    /// served as a single-scenario static model.
    Fallback,
    /// A model published on *another* replica and applied here by
    /// anti-entropy sync (see [`crate::net`]). Locally published models
    /// keep their [`ModelSource::Online`] / [`ModelSource::Repository`]
    /// origin; this source marks entries whose publisher was remote.
    Replicated,
}

/// Version and origin of a stored tuning model, plus the per-region
/// energy expectations drift detection compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProvenance {
    /// Monotonically increasing version per *application*: 1 for the
    /// first publication, bumped on every re-publication — whether the
    /// same workload (a drift-triggered re-calibration) or a changed
    /// workload of a known application.
    pub version: u32,
    /// Whether the model came from design-time analysis
    /// ([`ModelSource::Repository`]) or from the runtime's online tuner
    /// ([`ModelSource::Online`]).
    pub source: ModelSource,
    /// Expected node energy per region instance at the model's chosen
    /// configuration, joules — `(region, energy)`. Empty when the
    /// publisher recorded no expectations (drift detection is then
    /// inactive for jobs served this model).
    pub expected: Vec<(String, f64)>,
}

/// A tuning model served for one job, with its provenance.
#[derive(Debug, Clone)]
pub struct ServedModel {
    /// The model the session will resolve scenarios against.
    pub model: TuningModel,
    /// Whether it came from the repository, the online tuner's published
    /// work, or the fallback.
    pub source: ModelSource,
    /// Version/origin/expectations of the stored entry (`None` for
    /// fallback serves).
    pub provenance: Option<ModelProvenance>,
}

impl ServedModel {
    /// A fallback-served static model with no provenance.
    pub fn fallback(model: TuningModel) -> Self {
        Self {
            model,
            source: ModelSource::Fallback,
            provenance: None,
        }
    }
}

/// Serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepositoryStats {
    /// Lookups answered by a stored model.
    pub hits: u64,
    /// Hits served by application-level matching — the fingerprint
    /// differed but [`MatchPolicy::Application`] served the latest model
    /// for the application anyway (subset of [`RepositoryStats::hits`]).
    pub approx_hits: u64,
    /// Lookups that found no stored model.
    pub misses: u64,
    /// Misses answered by the calibration fallback (the rest errored).
    pub fallbacks: u64,
    /// Lookups that found a stored entry that failed to parse.
    pub errors: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Models published (insert/publish/publish_online), including
    /// re-publications that bumped a version.
    pub publications: u64,
}

impl RepositoryStats {
    /// Total lookups served (including ones that errored).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.errors
    }

    /// Fraction of lookups answered by a stored model (0.0 when no
    /// lookups have happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise sum — how shard-local statistics aggregate into a
    /// repository-wide view.
    pub(crate) fn merged(&self, other: &RepositoryStats) -> RepositoryStats {
        RepositoryStats {
            hits: self.hits + other.hits,
            approx_hits: self.approx_hits + other.approx_hits,
            misses: self.misses + other.misses,
            fallbacks: self.fallbacks + other.fallbacks,
            errors: self.errors + other.errors,
            evictions: self.evictions + other.evictions,
            publications: self.publications + other.publications,
        }
    }
}

/// Exact or relaxed key matching for [`TuningModelRepository::serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchPolicy {
    /// Serve only a model whose application *and* workload fingerprint
    /// match (the safe default: a changed workload never runs a foreign
    /// model).
    #[default]
    Exact,
    /// On an exact miss, serve the most recently stored model for the
    /// same application even though the fingerprint differs. The served
    /// model may be stale for the new workload — pair this policy with
    /// the [`DriftDetector`](crate::DriftDetector), which flags the
    /// staleness at runtime and triggers a scoped re-calibration.
    Application,
}

/// One stored entry: the serialized model, its provenance, and the LRU
/// recency stamp.
#[derive(Debug)]
pub(crate) struct StoredEntry {
    pub(crate) json: String,
    /// Memoized parse of `json`, filled on the first successful serve.
    /// The JSON stays the canonical stored form (what replication ships
    /// and a `SCOREP_RRL_TMM_PATH` file contains); the cache only spares
    /// re-parsing it on every hit. Corrupt entries never fill it, so they
    /// surface [`RuntimeError::Parse`] on every serve.
    pub(crate) parsed: Option<TuningModel>,
    pub(crate) provenance: ModelProvenance,
    pub(crate) last_used: u64,
}

/// One independently synchronizable slice of the model store: the map,
/// the per-application version lineage, the LRU clock and bound, the
/// fallback, the match policy and the serving statistics.
///
/// [`TuningModelRepository`] is exactly one shard behind a `&mut self`
/// API; [`SharedRepository`](crate::SharedRepository)'s test-only
/// locked oracle backend holds N of them, each behind its own
/// `parking_lot::RwLock`, partitioned by application hash so an
/// application's version lineage and its [`MatchPolicy::Application`]
/// candidates are always shard-local (the production snapshot backend
/// keeps the same partitioning over `SnapShard`s).
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) models: BTreeMap<ModelKey, StoredEntry>,
    /// Per-application version high-water mark. Kept separately from the
    /// live entries so LRU eviction can never make a version number
    /// regress.
    pub(crate) versions: BTreeMap<String, u32>,
    pub(crate) fallback: Option<SystemConfig>,
    pub(crate) capacity: Option<usize>,
    pub(crate) policy: MatchPolicy,
    pub(crate) clock: u64,
    pub(crate) stats: RepositoryStats,
}

impl Shard {
    /// Store a serialized model, assign its application-lineage version,
    /// bump the LRU clock and enforce the capacity bound.
    pub(crate) fn store(
        &mut self,
        key: ModelKey,
        json: String,
        source: ModelSource,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        // Versions follow the *application* lineage: re-publishing the
        // same workload bumps it, and so does publishing a model for a
        // changed workload of an already-known application (the drift →
        // re-calibrate → re-publish path). The high-water mark survives
        // LRU eviction of the entries themselves.
        let version = self.versions.get(&key.application).map_or(1, |v| v + 1);
        self.versions.insert(key.application.clone(), version);
        self.clock += 1;
        self.models.insert(
            key,
            StoredEntry {
                json,
                parsed: None,
                provenance: ModelProvenance {
                    version,
                    source,
                    expected,
                },
                last_used: self.clock,
            },
        );
        self.stats.publications += 1;
        self.enforce_capacity();
        version
    }

    /// Evict least-recently-used entries until the capacity bound holds.
    fn enforce_capacity(&mut self) {
        if let Some(cap) = self.capacity {
            while self.models.len() > cap {
                let lru = self
                    .models
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("len > cap > 0 implies an entry");
                self.models.remove(&lru);
                self.stats.evictions += 1;
            }
        }
    }

    /// Store an entry whose version was assigned *elsewhere* — by the
    /// reconciliation layer of a replica set, which stamps publications
    /// with a per-application version agreed across replicas (see
    /// [`crate::net::reconcile`]). Unlike [`Shard::store`] the version
    /// is not bumped here; the application's high-water mark only
    /// advances (an out-of-order stale apply can never regress the
    /// lineage). Everything else — LRU clock, capacity bound,
    /// publication counting — behaves exactly like a local store.
    pub(crate) fn store_replicated(
        &mut self,
        key: ModelKey,
        json: String,
        source: ModelSource,
        expected: Vec<(String, f64)>,
        version: u32,
    ) {
        let high = self.versions.get(&key.application).copied().unwrap_or(0);
        self.versions
            .insert(key.application.clone(), high.max(version));
        self.clock += 1;
        self.models.insert(
            key,
            StoredEntry {
                json,
                parsed: None,
                provenance: ModelProvenance {
                    version,
                    source,
                    expected,
                },
                last_used: self.clock,
            },
        );
        self.stats.publications += 1;
        self.enforce_capacity();
    }

    /// Store the model a design-time session produced (see
    /// [`TuningModelRepository::publish`]).
    pub(crate) fn publish(&mut self, advice: &Advice) -> u32 {
        let key = ModelKey {
            application: advice.tuning_model.application.clone(),
            fingerprint: advice.benchmark_fingerprint,
        };
        let expected = advice
            .region_best
            .iter()
            .map(|(name, _, energy)| (name.clone(), *energy))
            .collect();
        self.store(
            key,
            advice.tuning_model.to_json(),
            ModelSource::Repository,
            expected,
        )
    }

    /// Store a model the online tuner converged (see
    /// [`TuningModelRepository::publish_online`]).
    pub(crate) fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        self.store(
            ModelKey::of(bench),
            model.to_json(),
            ModelSource::Online,
            expected,
        )
    }

    /// Whether a stored model matches this benchmark's workload exactly.
    pub(crate) fn contains(&self, bench: &BenchmarkSpec) -> bool {
        self.models.contains_key(&ModelKey::of(bench))
    }

    /// Provenance of the exact-workload entry for this benchmark, if any.
    pub(crate) fn provenance(&self, bench: &BenchmarkSpec) -> Option<&ModelProvenance> {
        self.models.get(&ModelKey::of(bench)).map(|e| &e.provenance)
    }

    /// The stored key `serve` would answer for `bench` under the current
    /// match policy: the exact key, or — under
    /// [`MatchPolicy::Application`] — the most recently stored entry for
    /// the same application.
    fn resolve(&self, bench: &BenchmarkSpec) -> Option<(ModelKey, bool)> {
        let key = ModelKey::of(bench);
        if self.models.contains_key(&key) {
            return Some((key, true));
        }
        if self.policy == MatchPolicy::Application {
            return self
                .models
                .iter()
                .filter(|(k, _)| k.application == key.application)
                .max_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| (k.clone(), false));
        }
        None
    }

    /// Serve a stored model or record a miss (see
    /// [`TuningModelRepository::serve_stored`]).
    pub(crate) fn serve_stored(
        &mut self,
        bench: &BenchmarkSpec,
    ) -> Result<Option<ServedModel>, RuntimeError> {
        let Some((key, exact)) = self.resolve(bench) else {
            self.stats.misses += 1;
            return Ok(None);
        };
        self.clock += 1;
        let clock = self.clock;
        let entry = self.models.get_mut(&key).expect("resolved key exists");
        entry.last_used = clock;
        if entry.parsed.is_none() {
            entry.parsed = match TuningModel::from_json(&entry.json) {
                Ok(model) => Some(model),
                Err(e) => {
                    self.stats.errors += 1;
                    return Err(RuntimeError::Parse(e));
                }
            };
        }
        let model = entry.parsed.clone().expect("cache filled above");
        let source = entry.provenance.source;
        let provenance = Some(entry.provenance.clone());
        self.stats.hits += 1;
        if !exact {
            self.stats.approx_hits += 1;
        }
        Ok(Some(ServedModel {
            model,
            source,
            provenance,
        }))
    }

    /// Serve the calibration fallback (see
    /// [`TuningModelRepository::serve_fallback`]). Counts only the
    /// fallback serve — never a second miss for a lookup that
    /// `serve_stored` already recorded.
    pub(crate) fn serve_fallback(
        &mut self,
        bench: &BenchmarkSpec,
    ) -> Result<ServedModel, RuntimeError> {
        match self.fallback {
            Some(config) => {
                self.stats.fallbacks += 1;
                Ok(ServedModel::fallback(TuningModel::new(
                    &bench.name,
                    &[],
                    config,
                )))
            }
            None => Err(RuntimeError::NoModel {
                application: bench.name.clone(),
                fingerprint: bench.fingerprint(),
            }),
        }
    }

    /// Full serve: stored model or calibration fallback (see
    /// [`TuningModelRepository::serve`]).
    pub(crate) fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        if let Some(served) = self.serve_stored(bench)? {
            return Ok(served);
        }
        self.serve_fallback(bench)
    }
}

/// Stores serialized tuning models and serves them per job.
///
/// Models are kept in their JSON wire form (what a
/// `SCOREP_RRL_TMM_PATH` file contains), so storage is exactly the
/// serialisation format and a corrupt entry surfaces as
/// [`RuntimeError::Parse`] at serve time instead of a panic.
///
/// This is the single-threaded, `&mut self` entry point — a thin wrapper
/// over exactly one `Shard`. For lock-striped concurrent serving (the
/// parallel [`ClusterScheduler`](crate::ClusterScheduler) event loop) use
/// [`SharedRepository`](crate::SharedRepository), which shares the same
/// shard implementation and therefore the same semantics.
#[derive(Debug, Default)]
pub struct TuningModelRepository {
    pub(crate) shard: Shard,
}

impl TuningModelRepository {
    /// Empty repository with no fallback and unbounded capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve `config` as a static single-scenario model whenever no
    /// stored model matches (builder form).
    #[must_use]
    pub fn with_fallback(mut self, config: SystemConfig) -> Self {
        self.shard.fallback = Some(config);
        self
    }

    /// Bound the repository to at most `capacity` stored models; storing
    /// beyond the bound evicts the least-recently-used entry (builder
    /// form). A capacity of zero is treated as unbounded.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.shard.capacity = (capacity > 0).then_some(capacity);
        self
    }

    /// Select the serve-time key matching policy (builder form).
    #[must_use]
    pub fn with_match_policy(mut self, policy: MatchPolicy) -> Self {
        self.shard.policy = policy;
        self
    }

    /// Set or replace the calibration fallback configuration.
    pub fn set_fallback(&mut self, config: SystemConfig) {
        self.shard.fallback = Some(config);
    }

    /// The configured fallback, if any.
    pub fn fallback(&self) -> Option<SystemConfig> {
        self.shard.fallback
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.shard.capacity
    }

    /// The serve-time key matching policy.
    pub fn match_policy(&self) -> MatchPolicy {
        self.shard.policy
    }

    /// Store the tuning model a design-time session produced, under the
    /// advice's own application + fingerprint — the design-time → runtime
    /// handoff. The advice's per-region energies become the entry's drift
    /// expectations. Returns the assigned version.
    pub fn publish(&mut self, advice: &Advice) -> u32 {
        self.shard.publish(advice)
    }

    /// Store a model the runtime's online tuner converged for `bench`,
    /// with its measured per-region energy expectations. Returns the
    /// assigned version (1 for a first publication, otherwise the stored
    /// version + 1).
    pub fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        self.shard.publish_online(bench, model, expected)
    }

    /// Store a tuning model for a benchmark (replaces any previous entry
    /// for the same workload; no drift expectations are recorded).
    pub fn insert(&mut self, bench: &BenchmarkSpec, model: &TuningModel) {
        self.shard.store(
            ModelKey::of(bench),
            model.to_json(),
            ModelSource::Repository,
            Vec::new(),
        );
    }

    /// Whether a stored model matches this benchmark's workload exactly.
    pub fn contains(&self, bench: &BenchmarkSpec) -> bool {
        self.shard.contains(bench)
    }

    /// Provenance of the stored entry for this benchmark's exact
    /// workload, if any.
    pub fn provenance(&self, bench: &BenchmarkSpec) -> Option<&ModelProvenance> {
        self.shard.provenance(bench)
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.shard.models.len()
    }

    /// True when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.shard.models.is_empty()
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> RepositoryStats {
        self.shard.stats
    }

    /// Serve a model for a job about to run `bench`.
    ///
    /// A stored model whose key matches (exactly, or at application level
    /// under [`MatchPolicy::Application`]) is parsed from its serialized
    /// form and returned with its provenance; the reported
    /// [`ModelSource`] is the stored entry's origin (design-time
    /// repository or online tuner). On a miss the calibration fallback —
    /// if configured — is wrapped as a zero-scenario model whose phase
    /// configuration is the fallback, so every region of the job runs
    /// statically at that configuration. Without a fallback the miss is a
    /// [`RuntimeError::NoModel`].
    pub fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.shard.serve(bench)
    }

    /// Serve the calibration fallback for `bench` without a storage
    /// lookup — the companion to [`Self::serve_stored`] for callers whose
    /// miss handling ultimately falls back anyway (the cluster
    /// scheduler's degraded path after a failed online calibration). The
    /// miss was already recorded by `serve_stored`; this only counts the
    /// fallback serve. Errors with [`RuntimeError::NoModel`] when no
    /// fallback is configured.
    pub fn serve_fallback(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        self.shard.serve_fallback(bench)
    }

    /// Serve a stored model for `bench`, or record a miss and return
    /// `Ok(None)` without consulting the fallback — the serve primitive
    /// for callers with their own miss handling (the cluster scheduler's
    /// online-calibration path). Corrupt entries still surface as
    /// [`RuntimeError::Parse`].
    pub fn serve_stored(
        &mut self,
        bench: &BenchmarkSpec,
    ) -> Result<Option<ServedModel>, RuntimeError> {
        self.shard.serve_stored(bench)
    }
}

/// The serving surface the sequential cluster event loop needs — what
/// [`ClusterScheduler::run_with`](crate::ClusterScheduler::run_with)
/// abstracts over so the same loop serves from a plain local repository
/// or from one replica of a replicated set
/// ([`crate::net::Replica`]), without the loop knowing which.
///
/// Implementations must preserve the local-repository semantics the
/// invariant suite pins down: `serve_stored` records exactly one miss
/// per cold lookup, `publish_online` returns the application-lineage
/// version it assigned, and `stats` reflects every operation.
pub trait RepositoryHandle {
    /// Serve a stored model or the calibration fallback (see
    /// [`TuningModelRepository::serve`]).
    fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError>;

    /// Serve a stored model, or record a miss and return `Ok(None)` (see
    /// [`TuningModelRepository::serve_stored`]).
    fn serve_stored(&mut self, bench: &BenchmarkSpec) -> Result<Option<ServedModel>, RuntimeError>;

    /// Serve the calibration fallback without a storage lookup (see
    /// [`TuningModelRepository::serve_fallback`]).
    fn serve_fallback(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError>;

    /// Store a model the online tuner converged; returns the assigned
    /// application-lineage version (see
    /// [`TuningModelRepository::publish_online`]).
    fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32;

    /// Serving statistics so far.
    fn stats(&self) -> RepositoryStats;
}

impl RepositoryHandle for TuningModelRepository {
    fn serve(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        TuningModelRepository::serve(self, bench)
    }

    fn serve_stored(&mut self, bench: &BenchmarkSpec) -> Result<Option<ServedModel>, RuntimeError> {
        TuningModelRepository::serve_stored(self, bench)
    }

    fn serve_fallback(&mut self, bench: &BenchmarkSpec) -> Result<ServedModel, RuntimeError> {
        TuningModelRepository::serve_fallback(self, bench)
    }

    fn publish_online(
        &mut self,
        bench: &BenchmarkSpec,
        model: &TuningModel,
        expected: Vec<(String, f64)>,
    ) -> u32 {
        TuningModelRepository::publish_online(self, bench, model, expected)
    }

    fn stats(&self) -> RepositoryStats {
        TuningModelRepository::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> BenchmarkSpec {
        kernels::benchmark("miniMD").unwrap()
    }

    fn model() -> TuningModel {
        TuningModel::new(
            "miniMD",
            &[("compute_force".into(), SystemConfig::new(24, 2500, 1500))],
            SystemConfig::new(24, 2500, 1500),
        )
    }

    #[test]
    fn serve_hits_stored_model() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        repo.insert(&b, &model());
        assert!(repo.contains(&b));
        assert_eq!(repo.len(), 1);
        let served = repo.serve(&b).expect("hit");
        assert_eq!(served.source, ModelSource::Repository);
        assert_eq!(served.model, model());
        let prov = served.provenance.expect("stored entries have provenance");
        assert_eq!(prov.version, 1);
        assert!(prov.expected.is_empty(), "insert records no expectations");
        assert_eq!(repo.stats().hits, 1);
        assert_eq!(repo.stats().misses, 0);
        assert!((repo.stats().hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_without_fallback_is_no_model() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        let err = repo.serve(&b).unwrap_err();
        assert!(matches!(err, RuntimeError::NoModel { .. }));
        assert_eq!(repo.stats().misses, 1);
        assert_eq!(repo.stats().fallbacks, 0);
        assert_eq!(repo.stats().hit_rate(), 0.0);
    }

    #[test]
    fn miss_with_fallback_serves_static_model() {
        let b = bench();
        let fb = SystemConfig::new(24, 2400, 1700);
        let mut repo = TuningModelRepository::new().with_fallback(fb);
        assert_eq!(repo.fallback(), Some(fb));
        let served = repo.serve(&b).expect("fallback");
        assert_eq!(served.source, ModelSource::Fallback);
        assert!(served.provenance.is_none());
        assert_eq!(served.model.scenario_count(), 0);
        assert_eq!(served.model.lookup("anything"), fb);
        assert_eq!(repo.stats().fallbacks, 1);
    }

    #[test]
    fn workload_change_misses() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::taurus_default());
        repo.insert(&b, &model());
        let mut scaled = b.clone();
        scaled.phase_iterations *= 2;
        let served = repo.serve(&scaled).expect("fallback on changed workload");
        assert_eq!(served.source, ModelSource::Fallback);
        assert_eq!(repo.stats().hits, 0);
        assert_eq!(repo.stats().misses, 1);
    }

    #[test]
    fn application_policy_serves_latest_on_fingerprint_miss() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_match_policy(MatchPolicy::Application);
        repo.insert(&b, &model());
        let mut scaled = b.clone();
        scaled.regions[0].character.instr_per_iter *= 1.5;
        assert!(!repo.contains(&scaled), "fingerprint differs");
        let served = repo.serve(&scaled).expect("application-level match");
        assert_eq!(served.source, ModelSource::Repository);
        assert_eq!(served.model, model());
        let s = repo.stats();
        assert_eq!((s.hits, s.approx_hits, s.misses), (1, 1, 0));
        // A different application still misses.
        let other = kernels::benchmark("Lulesh").unwrap();
        assert!(matches!(
            repo.serve(&other),
            Err(RuntimeError::NoModel { .. })
        ));
        assert_eq!(repo.stats().misses, 1);
    }

    #[test]
    fn corrupt_entry_surfaces_as_parse_error_and_is_counted() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        repo.shard.models.insert(
            ModelKey::of(&b),
            StoredEntry {
                json: "{not json".into(),
                parsed: None,
                provenance: ModelProvenance {
                    version: 1,
                    source: ModelSource::Repository,
                    expected: Vec::new(),
                },
                last_used: 0,
            },
        );
        let err = repo.serve(&b).unwrap_err();
        assert!(matches!(err, RuntimeError::Parse(_)));
        let s = repo.stats();
        assert_eq!((s.hits, s.misses, s.errors), (0, 0, 1));
        assert_eq!(s.lookups(), 1, "failed serves still count as traffic");
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn stats_hit_rate_mixes() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::taurus_default());
        repo.insert(&b, &model());
        let mut other = b.clone();
        other.name = "renamed".into();
        repo.serve(&b).unwrap();
        repo.serve(&b).unwrap();
        repo.serve(&other).unwrap();
        let s = repo.stats();
        assert_eq!((s.hits, s.misses, s.fallbacks), (2, 1, 1));
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn republication_bumps_the_version() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        repo.insert(&b, &model());
        let v = repo.publish_online(&b, &model(), vec![("compute_force".into(), 120.0)]);
        assert_eq!(v, 2);
        let prov = repo.provenance(&b).expect("stored");
        assert_eq!(prov.version, 2);
        assert_eq!(prov.source, ModelSource::Online);
        assert_eq!(prov.expected, vec![("compute_force".to_string(), 120.0)]);
        let served = repo.serve(&b).unwrap();
        assert_eq!(served.source, ModelSource::Online);
        assert_eq!(repo.stats().publications, 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let mut benches: Vec<BenchmarkSpec> = Vec::new();
        for i in 0..4 {
            let mut b = bench();
            b.name = format!("app-{i}");
            benches.push(b);
        }
        let mut repo = TuningModelRepository::new().with_capacity(3);
        assert_eq!(repo.capacity(), Some(3));
        for b in &benches[..3] {
            repo.insert(b, &model());
        }
        // Touch app-0 so app-1 becomes the LRU entry.
        repo.serve(&benches[0]).unwrap();
        repo.insert(&benches[3], &model());
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.stats().evictions, 1);
        assert!(repo.contains(&benches[0]), "recently served survives");
        assert!(!repo.contains(&benches[1]), "LRU entry evicted");
        assert!(repo.contains(&benches[2]) && repo.contains(&benches[3]));
    }

    #[test]
    fn version_lineage_survives_eviction() {
        let a = bench();
        let mut other = bench();
        other.name = "other-app".into();
        let mut repo = TuningModelRepository::new().with_capacity(1);
        assert_eq!(repo.publish_online(&a, &model(), vec![]), 1);
        assert_eq!(repo.publish_online(&a, &model(), vec![]), 2);
        // `other` evicts every miniMD entry…
        repo.insert(&other, &model());
        assert!(!repo.contains(&a));
        assert_eq!(repo.stats().evictions, 1);
        // …but the application's version lineage never regresses.
        assert_eq!(repo.publish_online(&a, &model(), vec![]), 3);
        assert_eq!(repo.provenance(&a).unwrap().version, 3);
    }

    #[test]
    fn serve_fallback_counts_only_the_fallback() {
        let b = bench();
        let mut repo = TuningModelRepository::new();
        assert!(matches!(
            repo.serve_fallback(&b),
            Err(RuntimeError::NoModel { .. })
        ));
        repo.set_fallback(SystemConfig::new(24, 2400, 1700));
        let served = repo.serve_fallback(&b).expect("fallback configured");
        assert_eq!(served.source, ModelSource::Fallback);
        let s = repo.stats();
        assert_eq!((s.misses, s.fallbacks), (0, 1), "no extra miss recorded");
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let repo = TuningModelRepository::new().with_capacity(0);
        assert_eq!(repo.capacity(), None);
    }

    #[test]
    fn serve_stored_records_miss_without_fallback_consultation() {
        let b = bench();
        let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::taurus_default());
        assert!(repo
            .serve_stored(&b)
            .expect("miss is not an error")
            .is_none());
        let s = repo.stats();
        assert_eq!((s.misses, s.fallbacks), (1, 0));
    }

    /// Regression test for the miss-accounting invariant under eviction
    /// pressure: every logical lookup is counted exactly once in
    /// `lookups()` no matter how it was answered, a miss answered by
    /// `serve_fallback` after `serve_stored` is *one* miss + *one*
    /// fallback (never a double-counted miss), and the eviction counter
    /// advances once per displaced entry.
    #[test]
    fn stats_stay_consistent_under_eviction_pressure() {
        let mut benches: Vec<BenchmarkSpec> = (0..6)
            .map(|i| {
                let mut b = bench();
                b.name = format!("churn-{i}");
                b
            })
            .collect();
        benches.push(bench()); // one more distinct application
        let mut repo = TuningModelRepository::new()
            .with_capacity(2)
            .with_fallback(SystemConfig::taurus_default());

        // Publish all seven apps through a 2-entry bound: 5 evictions.
        for b in &benches {
            repo.insert(b, &model());
        }
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.stats().evictions, 5);
        assert_eq!(repo.stats().publications, 7);

        // Serve all seven: the two survivors hit; the five evicted miss
        // and fall back. The explicit miss-then-fallback split path must
        // count exactly like the combined `serve`.
        for (i, b) in benches.iter().enumerate() {
            if i % 2 == 0 {
                repo.serve(b).unwrap();
            } else if repo.serve_stored(b).unwrap().is_none() {
                repo.serve_fallback(b).unwrap();
            }
        }
        let s = repo.stats();
        assert_eq!(s.hits, 2, "the two retained entries hit");
        assert_eq!(s.misses, 5, "one miss per evicted entry, never double");
        assert_eq!(s.fallbacks, 5, "every miss answered by the fallback");
        assert_eq!(s.lookups(), 7, "one lookup per job");
        assert!((s.hit_rate() - 2.0 / 7.0).abs() < 1e-12);

        // A fresh application displaces the LRU entry; re-publishing an
        // already-stored key replaces in place (replacement is not
        // displacement, so the eviction counter must not advance).
        let mut fresh = bench();
        fresh.name = "churn-fresh".into();
        repo.insert(&fresh, &model());
        assert_eq!(repo.stats().evictions, 5 + 1, "insert displaced the LRU");
        repo.insert(&fresh, &model());
        assert_eq!(
            repo.stats().evictions,
            6,
            "re-publishing a stored key evicts nothing"
        );
    }
}
