//! Cluster-scale job scheduling atop `simnode::cluster`.
//!
//! The [`ClusterScheduler`] multiplexes many concurrent
//! [`RuntimeSession`]s across the nodes of a [`Cluster`]: jobs are placed
//! round-robin or least-loaded (by estimated phase work), served their
//! tuning model from a [`TuningModelRepository`], and then driven
//! *interleaved* — each scheduler sweep advances every active session by
//! one region event — exactly as a cluster full of independently-running
//! RRL instances would progress. Because session accounting is
//! interleaving-independent (see [`crate::session`]), every job's result
//! is bit-identical to running its session alone.
//!
//! The run produces per-job `sacct`-style accounting, per-job savings
//! against a default-configuration run of the same job on the same node,
//! and an aggregate cluster savings report.

use std::collections::BTreeSet;

use kernels::BenchmarkSpec;
use ptf::{EnergyModel, SearchStrategy};
use simnode::{Cluster, SystemConfig};

use crate::error::RuntimeError;
use crate::online::{DriftEvent, OnlineConfig, OnlineTuner};
use crate::repository::{ModelKey, RepositoryStats, TuningModelRepository};
use crate::sacct::{JobAccounting, JobRecord};
use crate::savings::Savings;
use crate::session::RuntimeSession;

/// Job-to-node placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Cycle through the nodes in index order.
    #[default]
    RoundRobin,
    /// Place each job on the node with the least estimated work assigned
    /// so far (ties break to the lowest index).
    LeastLoaded,
}

/// Online adaptation for a scheduler run: when attached via
/// [`ClusterScheduler::with_online`], repository misses no longer pin the
/// static fallback — the first job of each unseen workload calibrates
/// in-situ through an [`OnlineTuner`] (same-workload jobs queue behind it
/// so the cluster calibrates each workload once), the converged model is
/// published back, and every subsequent job serves it as a
/// [`ModelSource::Online`](crate::ModelSource) hit. Repository hits run
/// in monitor mode: drift-flagged regions re-calibrate in place and bump
/// the stored model's version.
#[derive(Clone, Copy)]
pub struct OnlineTuning<'a> {
    /// Candidate-generation strategy for calibrations (the design-time
    /// `SearchStrategy` machinery).
    pub strategy: &'a dyn SearchStrategy,
    /// Trained energy model for model-predicting strategies (`None` is
    /// fine for exhaustive/random search).
    pub energy_model: Option<&'a EnergyModel>,
    /// Calibration and drift settings.
    pub config: OnlineConfig,
}

impl std::fmt::Debug for OnlineTuning<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineTuning")
            .field("strategy", &self.strategy.name())
            .field("has_model", &self.energy_model.is_some())
            .field("config", &self.config)
            .finish()
    }
}

/// One job's outcome after a scheduler run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name.
    pub job: String,
    /// Benchmark the job ran.
    pub benchmark: String,
    /// Node the job was placed on.
    pub node_id: u32,
    /// Full accounting of the tuned run.
    pub accounting: JobAccounting,
    /// Accounting record of the same job at the platform default
    /// configuration on the same node (the savings baseline).
    pub default: JobRecord,
    /// Per-job dynamic savings versus the default run.
    pub savings: Savings,
    /// Version assigned when this job's calibration/re-calibration was
    /// published back to the repository.
    pub published_version: Option<u32>,
    /// Drift events this job fired.
    pub drift: Vec<DriftEvent>,
}

/// Aggregate result of one scheduler run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Sums of the default-run records across all jobs.
    pub total_default: JobRecord,
    /// Sums of the tuned-run records across all jobs.
    pub total_tuned: JobRecord,
    /// Cluster-wide savings (computed on the summed records).
    pub aggregate: Savings,
    /// Repository statistics after serving this run.
    pub repository: RepositoryStats,
    /// Distinct nodes that executed at least one job.
    pub nodes_used: usize,
}

/// Aggregate online-adaptation activity of one scheduler run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineSummary {
    /// Jobs that calibrated a cold workload in-situ.
    pub calibrations: usize,
    /// Models published back to the repository (calibrations plus
    /// drift-triggered re-publications).
    pub publications: usize,
    /// Drift events fired across all jobs.
    pub drift_events: u64,
    /// Regions re-calibrated in place across all jobs.
    pub recalibrated_regions: u64,
}

impl ClusterReport {
    /// Aggregate online-adaptation activity (all zeros when the run had
    /// no online tuning attached).
    pub fn online_summary(&self) -> OnlineSummary {
        let mut summary = OnlineSummary::default();
        for job in &self.jobs {
            if let Some(online) = &job.accounting.online {
                if online.explored_iterations > 0 {
                    summary.calibrations += 1;
                }
                summary.drift_events += u64::from(online.drift_events);
                summary.recalibrated_regions += u64::from(online.recalibrated_regions);
            }
            if job.published_version.is_some() {
                summary.publications += 1;
            }
        }
        summary
    }

    /// Human-readable cluster report: one line per job plus the
    /// aggregate savings and repository hit rate.
    pub fn format_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<13} {:>5} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "job", "benchmark", "node", "source", "job[%]", "cpu[%]", "time[%]", "switches"
        ));
        for j in &self.jobs {
            out.push_str(&format!(
                "{:<18} {:<13} {:>5} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9}\n",
                j.job,
                j.benchmark,
                j.node_id,
                format!("{:?}", j.accounting.source),
                j.savings.job_energy_pct,
                j.savings.cpu_energy_pct,
                j.savings.time_pct,
                j.accounting.switches,
            ));
        }
        out.push_str(&format!(
            "\n{} jobs over {} nodes — aggregate savings: job {:.2}%  cpu {:.2}%  time {:.2}%\n",
            self.jobs.len(),
            self.nodes_used,
            self.aggregate.job_energy_pct,
            self.aggregate.cpu_energy_pct,
            self.aggregate.time_pct,
        ));
        out.push_str(&format!(
            "repository: {} hits / {} misses ({} fallback, {} evicted) — hit rate {:.0}%\n",
            self.repository.hits,
            self.repository.misses,
            self.repository.fallbacks,
            self.repository.evictions,
            100.0 * self.repository.hit_rate(),
        ));
        let online = self.online_summary();
        if online != OnlineSummary::default() {
            out.push_str(&format!(
                "online: {} calibrations, {} publications, {} drift events, \
                 {} regions re-calibrated\n",
                online.calibrations,
                online.publications,
                online.drift_events,
                online.recalibrated_regions,
            ));
        }
        out
    }
}

struct QueuedJob {
    name: String,
    bench: BenchmarkSpec,
    node_idx: usize,
}

/// Schedules and drives many concurrent runtime sessions over a cluster.
pub struct ClusterScheduler<'a> {
    cluster: &'a Cluster,
    placement: Placement,
    online: Option<OnlineTuning<'a>>,
    rr_next: usize,
    queue: Vec<QueuedJob>,
    /// Estimated phase work (instructions) assigned per node.
    load: Vec<f64>,
}

/// Estimated total work of a job, for least-loaded placement.
fn estimated_work(bench: &BenchmarkSpec) -> f64 {
    bench.phase_character().instr_per_iter * f64::from(bench.phase_iterations)
}

impl<'a> ClusterScheduler<'a> {
    /// Scheduler over `cluster` with round-robin placement.
    pub fn new(cluster: &'a Cluster) -> Result<Self, RuntimeError> {
        if cluster.is_empty() {
            return Err(RuntimeError::EmptyCluster);
        }
        Ok(Self {
            cluster,
            placement: Placement::RoundRobin,
            online: None,
            rr_next: 0,
            queue: Vec::new(),
            load: vec![0.0; cluster.len()],
        })
    }

    /// Select the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Attach online adaptation: repository misses calibrate in-situ and
    /// publish back instead of pinning the static fallback, and hits are
    /// drift-monitored (see [`OnlineTuning`]).
    #[must_use]
    pub fn with_online(mut self, online: OnlineTuning<'a>) -> Self {
        self.online = Some(online);
        self
    }

    /// Jobs queued but not yet run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Submit a job; returns the id of the node it was placed on.
    pub fn submit(&mut self, name: impl Into<String>, bench: BenchmarkSpec) -> u32 {
        let idx = match self.placement {
            Placement::RoundRobin => {
                let idx = self.rr_next % self.cluster.len();
                self.rr_next += 1;
                idx
            }
            Placement::LeastLoaded => self
                .load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        self.load[idx] += estimated_work(&bench);
        self.queue.push(QueuedJob {
            name: name.into(),
            bench,
            node_idx: idx,
        });
        self.cluster.node(idx).id()
    }

    /// Run every queued job to completion, interleaved across the
    /// cluster, serving tuning models from `repo`.
    ///
    /// Each sweep of the scheduler loop advances every active session by
    /// one event (a region enter/exit pair or a phase completion), so at
    /// any instant up to `pending()` sessions are in flight. The queue is
    /// consumed by the run, including on error.
    ///
    /// With [`ClusterScheduler::with_online`] attached, admission is
    /// gated per workload: the first job of a workload the repository
    /// cannot serve starts calibrating, further jobs of the *same*
    /// workload wait until that calibration publishes, and then start as
    /// repository hits — the cluster warm-up pattern (miss → calibrate →
    /// publish → fleet-wide hits). Jobs of distinct workloads calibrate
    /// concurrently.
    pub fn run(&mut self, repo: &mut TuningModelRepository) -> Result<ClusterReport, RuntimeError> {
        let cluster = self.cluster;
        let jobs = std::mem::take(&mut self.queue);
        self.load = vec![0.0; cluster.len()];
        self.rr_next = 0;

        enum State<'b> {
            Waiting,
            Plain(Box<RuntimeSession<'b>>),
            Online(Box<OnlineTuner<'b>>),
            Done,
        }

        struct Driver<'b> {
            state: State<'b>,
            region_idx: usize,
            accounting: Option<JobAccounting>,
            published_version: Option<u32>,
            drift: Vec<DriftEvent>,
        }

        let mut drivers: Vec<Driver<'_>> = jobs
            .iter()
            .map(|_| Driver {
                state: State::Waiting,
                region_idx: 0,
                accounting: None,
                published_version: None,
                drift: Vec::new(),
            })
            .collect();

        // Workload keys with a calibration in flight: same-key jobs wait.
        let mut calibrating: BTreeSet<ModelKey> = BTreeSet::new();
        // Workload keys whose calibration failed (budget/planning): the
        // rest of the queue degrades to ordinary fallback serving instead
        // of re-attempting — and instead of aborting healthy jobs.
        let mut failed: BTreeSet<ModelKey> = BTreeSet::new();
        let mut done = 0usize;
        while done < jobs.len() {
            // Admission pass, in submission order.
            for (driver, job) in drivers.iter_mut().zip(&jobs) {
                if !matches!(driver.state, State::Waiting) {
                    continue;
                }
                let node = cluster.node(job.node_idx);
                driver.state = match &self.online {
                    None => {
                        let served = repo.serve(&job.bench)?;
                        State::Plain(Box::new(RuntimeSession::start(
                            &job.name, &job.bench, node, served,
                        )?))
                    }
                    Some(online) => {
                        let key = ModelKey::of(&job.bench);
                        if failed.contains(&key) {
                            let served = repo.serve(&job.bench)?;
                            State::Plain(Box::new(RuntimeSession::start(
                                &job.name, &job.bench, node, served,
                            )?))
                        } else if calibrating.contains(&key) {
                            continue; // wait for the in-flight calibration
                        } else {
                            match repo.serve_stored(&job.bench)? {
                                Some(served) => State::Online(Box::new(OnlineTuner::monitor(
                                    &job.name,
                                    &job.bench,
                                    node,
                                    served,
                                    online.config,
                                )?)),
                                None => match OnlineTuner::calibrate(
                                    &job.name,
                                    &job.bench,
                                    node,
                                    online.strategy,
                                    online.energy_model,
                                    online.config,
                                ) {
                                    Ok(tuner) => {
                                        calibrating.insert(key);
                                        State::Online(Box::new(tuner))
                                    }
                                    Err(
                                        RuntimeError::ExplorationBudget { .. }
                                        | RuntimeError::Planning(_),
                                    ) => {
                                        // This workload cannot calibrate;
                                        // fall back (the miss was already
                                        // recorded by serve_stored).
                                        failed.insert(key);
                                        let served = repo.serve_fallback(&job.bench)?;
                                        State::Plain(Box::new(RuntimeSession::start(
                                            &job.name, &job.bench, node, served,
                                        )?))
                                    }
                                    Err(other) => return Err(other),
                                },
                            }
                        }
                    }
                };
            }

            // Event pass: one event per active session per sweep.
            for (driver, job) in drivers.iter_mut().zip(&jobs) {
                let finished_iterations = match &driver.state {
                    State::Plain(session) => {
                        session.phase_iteration() >= job.bench.phase_iterations
                    }
                    State::Online(tuner) => tuner.phase_iteration() >= job.bench.phase_iterations,
                    State::Waiting | State::Done => continue,
                };
                if finished_iterations {
                    match std::mem::replace(&mut driver.state, State::Done) {
                        State::Plain(session) => {
                            driver.accounting = Some(session.finish()?);
                        }
                        State::Online(tuner) => {
                            let outcome = tuner.finish()?;
                            driver.accounting = Some(outcome.accounting);
                            driver.drift = outcome.drift_events;
                            if let Some(publication) = outcome.publication {
                                driver.published_version = Some(repo.publish_online(
                                    &job.bench,
                                    &publication.model,
                                    publication.expected,
                                ));
                            }
                            calibrating.remove(&ModelKey::of(&job.bench));
                        }
                        State::Waiting | State::Done => unreachable!("checked active above"),
                    }
                    done += 1;
                } else if driver.region_idx < job.bench.regions.len() {
                    let region = &job.bench.regions[driver.region_idx];
                    match &mut driver.state {
                        State::Plain(session) => {
                            session.region_enter(&region.name)?;
                            session.region_exit(&region.name)?;
                        }
                        State::Online(tuner) => {
                            tuner.region_enter(&region.name)?;
                            tuner.region_exit(&region.name)?;
                        }
                        State::Waiting | State::Done => unreachable!("checked active above"),
                    }
                    driver.region_idx += 1;
                } else {
                    match &mut driver.state {
                        State::Plain(session) => {
                            session.phase_complete()?;
                        }
                        State::Online(tuner) => {
                            if let Err(e) = tuner.phase_complete() {
                                match e {
                                    RuntimeError::ExplorationBudget { .. }
                                    | RuntimeError::Planning(_) => {
                                        // The calibration abandoned itself
                                        // (budget discovered at the
                                        // planning point); the tuner keeps
                                        // running as a degraded static
                                        // job. Unblock same-key waiters —
                                        // they will serve the fallback.
                                        let key = ModelKey::of(&job.bench);
                                        calibrating.remove(&key);
                                        failed.insert(key);
                                    }
                                    other => return Err(other),
                                }
                            }
                        }
                        State::Waiting | State::Done => unreachable!("checked active above"),
                    }
                    driver.region_idx = 0;
                }
            }
        }

        let mut outcomes = Vec::with_capacity(jobs.len());
        let mut total_default = JobRecord {
            job_energy_j: 0.0,
            cpu_energy_j: 0.0,
            elapsed_s: 0.0,
        };
        let mut total_tuned = total_default;
        let mut nodes_used = vec![false; cluster.len()];
        for (driver, job) in drivers.into_iter().zip(&jobs) {
            let accounting = driver.accounting.expect("all jobs finished");
            let node = cluster.node(job.node_idx);
            let default = RuntimeSession::static_run(
                &job.name,
                &job.bench,
                node,
                SystemConfig::taurus_default(),
            )?
            .record;
            total_default.job_energy_j += default.job_energy_j;
            total_default.cpu_energy_j += default.cpu_energy_j;
            total_default.elapsed_s += default.elapsed_s;
            total_tuned.job_energy_j += accounting.record.job_energy_j;
            total_tuned.cpu_energy_j += accounting.record.cpu_energy_j;
            total_tuned.elapsed_s += accounting.record.elapsed_s;
            nodes_used[job.node_idx] = true;
            outcomes.push(JobOutcome {
                job: job.name.clone(),
                benchmark: job.bench.name.clone(),
                node_id: node.id(),
                savings: Savings::between(&default, &accounting.record),
                accounting,
                default,
                published_version: driver.published_version,
                drift: driver.drift,
            });
        }

        Ok(ClusterReport {
            aggregate: Savings::between(&total_default, &total_tuned),
            jobs: outcomes,
            total_default,
            total_tuned,
            repository: repo.stats(),
            nodes_used: nodes_used.iter().filter(|&&used| used).count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf::TuningModel;
    use simnode::RegionCharacter;

    fn lulesh_model() -> TuningModel {
        TuningModel::new(
            "Lulesh",
            &[
                (
                    "IntegrateStressForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                (
                    "CalcKinematicsForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
            ],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    fn toy(name: &str, instr: f64) -> BenchmarkSpec {
        use kernels::{ProgrammingModel, RegionSpec, Suite};
        BenchmarkSpec::new(
            name,
            Suite::Npb,
            ProgrammingModel::OpenMp,
            4,
            vec![RegionSpec::new(
                "omp parallel:1",
                RegionCharacter::builder(instr).dram_bytes(instr).build(),
            )],
        )
    }

    #[test]
    fn empty_cluster_rejected() {
        let cluster = Cluster::exact(0);
        assert!(matches!(
            ClusterScheduler::new(&cluster),
            Err(RuntimeError::EmptyCluster)
        ));
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let cluster = Cluster::exact(3);
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        let ids: Vec<u32> = (0..6)
            .map(|i| sched.submit(format!("j{i}"), toy("t", 1e9)))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(sched.pending(), 6);
    }

    #[test]
    fn least_loaded_balances_by_estimated_work() {
        let cluster = Cluster::exact(2);
        let mut sched = ClusterScheduler::new(&cluster)
            .unwrap()
            .with_placement(Placement::LeastLoaded);
        // Heavy job lands on node 0, then both small jobs go to node 1
        // (their combined work is still below the heavy job's).
        assert_eq!(sched.submit("heavy", toy("heavy", 1e12)), 0);
        assert_eq!(sched.submit("small-1", toy("small", 1e9)), 1);
        assert_eq!(sched.submit("small-2", toy("small", 1e9)), 1);
        assert_eq!(sched.submit("small-3", toy("small", 1e9)), 1);
    }

    #[test]
    fn scheduler_serves_and_reports() {
        let cluster = Cluster::exact(2);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let mut repo =
            TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
        repo.insert(&lulesh, &lulesh_model());

        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        for i in 0..3 {
            sched.submit(format!("lulesh-{i}"), lulesh.clone());
        }
        sched.submit("toy-0", toy("toy", 5e9));
        let report = sched.run(&mut repo).unwrap();

        assert_eq!(report.jobs.len(), 4);
        assert_eq!(sched.pending(), 0, "queue consumed");
        assert_eq!(report.nodes_used, 2);
        assert_eq!(report.repository.hits, 3);
        assert_eq!(report.repository.fallbacks, 1);
        // Tuned Lulesh jobs save energy versus their defaults.
        for j in report.jobs.iter().filter(|j| j.benchmark == "Lulesh") {
            assert!(j.savings.job_energy_pct > 0.0, "{j:?}");
            assert!(j.accounting.switches > 0);
        }
        let text = report.format_report();
        assert!(text.contains("lulesh-2"), "{text}");
        assert!(text.contains("hit rate 75%"), "{text}");
    }

    #[test]
    fn serve_failure_propagates() {
        let cluster = Cluster::exact(1);
        let mut repo = TuningModelRepository::new(); // no model, no fallback
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        sched.submit("j", toy("t", 1e9));
        assert!(matches!(
            sched.run(&mut repo),
            Err(RuntimeError::NoModel { .. })
        ));
    }
}
