//! Cluster-scale job scheduling atop `simnode::cluster`.
//!
//! The [`ClusterScheduler`] multiplexes many concurrent
//! [`RuntimeSession`]s across the nodes of a [`Cluster`]: jobs are placed
//! round-robin or least-loaded (by estimated phase work), served their
//! tuning model from a repository, and then driven *interleaved* — each
//! event-loop sweep advances every active session by one region event —
//! exactly as a cluster full of independently-running RRL instances would
//! progress. Because session accounting is interleaving-independent (see
//! [`crate::session`]), every job's result is bit-identical to running
//! its session alone.
//!
//! Two event loops drive the same job-state machine:
//!
//! * [`ClusterScheduler::run`] — single-threaded over a `&mut`
//!   [`TuningModelRepository`]; every job advances on one thread.
//! * [`ClusterScheduler::run_parallel`] — the submitted jobs are
//!   partitioned across real worker threads (`rayon::scope`), each worker
//!   running the interleaved event loop over its own partition while all
//!   of them serve from one lock-striped [`SharedRepository`]. Cold
//!   workloads stay correct under concurrency through a
//!   [`CalibrationLatch`]: leadership of each unseen workload is fixed in
//!   submission order before the workers start, and same-workload
//!   followers block on the workload's latch entry — not on a global
//!   scheduler stall — until the leader publishes or fails.
//!
//! Both produce a [`ClusterReport`] with per-job outcomes in submission
//! order, and — for the same submissions, seeds and repository contents —
//! **bit-identical per-job [`JobAccounting`]**: accounting depends only
//! on the job's identity and its served model, never on which thread or
//! sweep ordering executed it. (The one caveat is LRU pressure: when the
//! repository is actively evicting *during* the run, serve order — which
//! is nondeterministic across workers — can change which entries survive;
//! a follower whose leader's publication was already evicted re-calibrates
//! as the sequential loop would, but several same-workload followers may
//! do so concurrently instead of queuing. Keep the capacity at or above
//! the distinct-workload count of a wave to retain the guarantee.
//! Publication *version numbers* may also be assigned in a different
//! order when several workloads of one application publish concurrently.)
//!
//! The run produces per-job `sacct`-style accounting, per-job savings
//! against a default-configuration run of the same job on the same node,
//! and an aggregate cluster savings report.

use std::collections::BTreeSet;

use kernels::BenchmarkSpec;
use obskit::{NoopRecorder, Recorder};
use parking_lot::Mutex;
use ptf::{EnergyModel, SearchStrategy, TuningModel};
use simnode::{Cluster, Node, SystemConfig};

use crate::error::RuntimeError;
use crate::inject::FaultInjector;
use crate::net::ReplicaSet;
use crate::online::{DriftEvent, ModelPublication, OnlineConfig, OnlineTuner};
use crate::repository::{
    ModelKey, RepositoryHandle, RepositoryStats, ServedModel, TuningModelRepository,
};
use crate::sacct::{JobAccounting, JobRecord};
use crate::savings::Savings;
use crate::session::RuntimeSession;
use crate::shard::{CalibrationLatch, CalibrationOutcome, LatchStatus, SharedRepository};

/// Job-to-node placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Cycle through the nodes in index order.
    #[default]
    RoundRobin,
    /// Place each job on the node with the least estimated work assigned
    /// so far (ties break to the lowest index).
    LeastLoaded,
}

/// Online adaptation for a scheduler run: when attached via
/// [`ClusterScheduler::with_online`], repository misses no longer pin the
/// static fallback — the first job of each unseen workload calibrates
/// in-situ through an [`OnlineTuner`] (same-workload jobs queue behind it
/// so the cluster calibrates each workload once), the converged model is
/// published back, and every subsequent job serves it as a
/// [`ModelSource::Online`](crate::ModelSource) hit. Repository hits run
/// in monitor mode: drift-flagged regions re-calibrate in place and bump
/// the stored model's version.
#[derive(Clone, Copy)]
pub struct OnlineTuning<'a> {
    /// Candidate-generation strategy for calibrations (the design-time
    /// `SearchStrategy` machinery). `SearchStrategy: Sync`, so one
    /// strategy serves every worker of a parallel run.
    pub strategy: &'a dyn SearchStrategy,
    /// Trained energy model for model-predicting strategies (`None` is
    /// fine for exhaustive/random search).
    pub energy_model: Option<&'a EnergyModel>,
    /// Calibration and drift settings.
    pub config: OnlineConfig,
}

impl std::fmt::Debug for OnlineTuning<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineTuning")
            .field("strategy", &self.strategy.name())
            .field("has_model", &self.energy_model.is_some())
            .field("config", &self.config)
            .finish()
    }
}

/// Record of a capability-gap rejection the scheduler *degraded* instead
/// of aborting the run: the job's served tuning model (or its launch
/// configuration) carried a configuration its placed node cannot apply
/// ([`Node::supports`] said no), so the job ran untuned at the
/// node-clamped default instead. Carries the job and node identity so
/// scenario reports and shrinker output can name the culprit placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRejection {
    /// The job whose model/launch was rejected.
    pub job: String,
    /// The node that rejected it.
    pub node_id: u32,
    /// The configuration the node could not apply.
    pub config: SystemConfig,
}

/// One job's outcome after a scheduler run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name.
    pub job: String,
    /// Benchmark the job ran.
    pub benchmark: String,
    /// Node the job was placed on.
    pub node_id: u32,
    /// Full accounting of the tuned run.
    pub accounting: JobAccounting,
    /// Accounting record of the same job at the platform default
    /// configuration on the same node (the savings baseline).
    pub default: JobRecord,
    /// Per-job dynamic savings versus the default run.
    pub savings: Savings,
    /// Version assigned when this job's calibration/re-calibration was
    /// published back to the repository.
    pub published_version: Option<u32>,
    /// Drift events this job fired.
    pub drift: Vec<DriftEvent>,
    /// Set when the job's served model or launch configuration was
    /// rejected by its node's capabilities and the job degraded to a
    /// static run at the node-clamped default.
    pub rejection: Option<JobRejection>,
    /// Set when an injected fault truncated the job: the phase iteration
    /// it stopped at (its baseline is truncated to match).
    pub aborted_at: Option<u32>,
}

/// Aggregate result of one scheduler run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Sums of the default-run records across all jobs.
    pub total_default: JobRecord,
    /// Sums of the tuned-run records across all jobs.
    pub total_tuned: JobRecord,
    /// Cluster-wide savings (computed on the summed records).
    pub aggregate: Savings,
    /// Repository statistics after serving this run.
    pub repository: RepositoryStats,
    /// Distinct nodes that executed at least one job.
    pub nodes_used: usize,
    /// Virtual-time service metrics — present only for
    /// [`ClusterScheduler::run_service`] runs (the sweep loops have no
    /// timeline to measure latency on).
    pub service: Option<crate::service::ServiceSummary>,
}

/// Aggregate online-adaptation activity of one scheduler run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineSummary {
    /// Jobs that calibrated a cold workload in-situ.
    pub calibrations: usize,
    /// Models published back to the repository (calibrations plus
    /// drift-triggered re-publications).
    pub publications: usize,
    /// Drift events fired across all jobs.
    pub drift_events: u64,
    /// Regions re-calibrated in place across all jobs.
    pub recalibrated_regions: u64,
}

impl ClusterReport {
    /// Aggregate online-adaptation activity (all zeros when the run had
    /// no online tuning attached).
    pub fn online_summary(&self) -> OnlineSummary {
        let mut summary = OnlineSummary::default();
        for job in &self.jobs {
            if let Some(online) = &job.accounting.online {
                if online.explored_iterations > 0 {
                    summary.calibrations += 1;
                }
                summary.drift_events += u64::from(online.drift_events);
                summary.recalibrated_regions += u64::from(online.recalibrated_regions);
            }
            if job.published_version.is_some() {
                summary.publications += 1;
            }
        }
        summary
    }

    /// Human-readable cluster report: one line per job plus the
    /// aggregate savings and repository hit rate.
    pub fn format_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<13} {:>5} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "job", "benchmark", "node", "source", "job[%]", "cpu[%]", "time[%]", "switches"
        ));
        for j in &self.jobs {
            out.push_str(&format!(
                "{:<18} {:<13} {:>5} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9}\n",
                j.job,
                j.benchmark,
                j.node_id,
                format!("{:?}", j.accounting.source),
                j.savings.job_energy_pct,
                j.savings.cpu_energy_pct,
                j.savings.time_pct,
                j.accounting.switches,
            ));
        }
        out.push_str(&format!(
            "\n{} jobs over {} nodes — aggregate savings: job {:.2}%  cpu {:.2}%  time {:.2}%\n",
            self.jobs.len(),
            self.nodes_used,
            self.aggregate.job_energy_pct,
            self.aggregate.cpu_energy_pct,
            self.aggregate.time_pct,
        ));
        out.push_str(&format!(
            "repository: {} hits / {} misses ({} fallback, {} evicted) — hit rate {:.0}%\n",
            self.repository.hits,
            self.repository.misses,
            self.repository.fallbacks,
            self.repository.evictions,
            100.0 * self.repository.hit_rate(),
        ));
        let online = self.online_summary();
        if online != OnlineSummary::default() {
            out.push_str(&format!(
                "online: {} calibrations, {} publications, {} drift events, \
                 {} regions re-calibrated\n",
                online.calibrations,
                online.publications,
                online.drift_events,
                online.recalibrated_regions,
            ));
        }
        if let Some(service) = &self.service {
            out.push_str(&service.format_lines());
        }
        let aborted = self.jobs.iter().filter(|j| j.aborted_at.is_some()).count();
        let rejected: Vec<&JobRejection> = self
            .jobs
            .iter()
            .filter_map(|j| j.rejection.as_ref())
            .collect();
        if aborted > 0 || !rejected.is_empty() {
            out.push_str(&format!(
                "faults: {aborted} job{} aborted, {} degraded by capability gaps",
                if aborted == 1 { "" } else { "s" },
                rejected.len()
            ));
            for r in rejected {
                out.push_str(&format!(" [{} on node {}]", r.job, r.node_id));
            }
            out.push('\n');
        }
        out
    }
}

pub(crate) struct QueuedJob {
    pub(crate) name: String,
    pub(crate) bench: BenchmarkSpec,
    pub(crate) node_idx: usize,
}

/// The per-job execution state both event loops drive.
pub(crate) enum State<'b> {
    /// Not yet admitted (queued behind a calibration, or not yet reached
    /// by its worker).
    Waiting,
    /// An ordinary model-serving session.
    Plain(Box<RuntimeSession<'b>>),
    /// An online calibration or monitor session.
    Online(Box<OnlineTuner<'b>>),
    /// Finished; the accounting has been collected.
    Done,
}

/// What [`JobDriver::advance`] observed.
pub(crate) enum EventOutcome {
    /// The session advanced by one event.
    Advanced,
    /// An online calibration abandoned itself (exploration budget or
    /// planning failure discovered at a phase boundary); the session
    /// keeps running as a degraded static job, and same-workload waiters
    /// must be released to the fallback path.
    Abandoned,
}

/// One job's driver: its state machine plus everything the final report
/// needs. The sequential and the parallel event loops share this
/// completely — only admission (who serves the model, and when) differs.
pub(crate) struct JobDriver<'b> {
    pub(crate) state: State<'b>,
    region_idx: usize,
    /// Phase iterations this job will actually run: the benchmark's
    /// count, or an injected abort point (clamped to ≥ 1).
    pub(crate) iterations: u32,
    accounting: Option<JobAccounting>,
    default: Option<JobRecord>,
    pub(crate) published_version: Option<u32>,
    drift: Vec<DriftEvent>,
    pub(crate) rejection: Option<JobRejection>,
}

impl<'b> JobDriver<'b> {
    /// A driver for `job`, with any injected abort already resolved into
    /// the effective iteration count — a pure function of the job name,
    /// so both event loops (and both runs of a replay) truncate
    /// identically.
    pub(crate) fn new(job: &QueuedJob, faults: Option<&dyn FaultInjector>) -> Self {
        let iterations = faults
            .and_then(|f| f.abort_phase(&job.name))
            .map_or(job.bench.phase_iterations, |k| {
                k.max(1).min(job.bench.phase_iterations)
            });
        Self {
            state: State::Waiting,
            region_idx: 0,
            iterations,
            accounting: None,
            default: None,
            published_version: None,
            drift: Vec::new(),
            rejection: None,
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        matches!(self.state, State::Plain(_) | State::Online(_))
    }

    /// Whether the job's phase loop has run out of iterations (its next
    /// event must be the finish).
    pub(crate) fn finished_iterations(&self) -> bool {
        match &self.state {
            State::Plain(session) => session.phase_iteration() >= self.iterations,
            State::Online(tuner) => tuner.phase_iteration() >= self.iterations,
            State::Waiting | State::Done => false,
        }
    }

    /// The phase iteration an active session is currently in (0 when not
    /// active). The discrete-event service uses this to truncate jobs on
    /// a failed node at their next phase boundary.
    pub(crate) fn phase_iteration(&self) -> u32 {
        match &self.state {
            State::Plain(session) => session.phase_iteration(),
            State::Online(tuner) => tuner.phase_iteration(),
            State::Waiting | State::Done => 0,
        }
    }

    /// Virtual wall time the active session has accumulated so far (0
    /// when not active). The discrete-event service reads this after
    /// every event to place the next one on the virtual timeline.
    pub(crate) fn elapsed_s(&self) -> f64 {
        match &self.state {
            State::Plain(session) => session.elapsed_s(),
            State::Online(tuner) => tuner.session().elapsed_s(),
            State::Waiting | State::Done => 0.0,
        }
    }

    /// Advance an active, unfinished job by one event: the next region's
    /// enter/exit pair, or — once the phase's regions are exhausted — the
    /// phase-complete.
    pub(crate) fn advance(&mut self, bench: &BenchmarkSpec) -> Result<EventOutcome, RuntimeError> {
        if self.region_idx < bench.regions.len() {
            let region = &bench.regions[self.region_idx];
            match &mut self.state {
                State::Plain(session) => {
                    session.region_enter(&region.name)?;
                    session.region_exit(&region.name)?;
                }
                State::Online(tuner) => {
                    tuner.region_enter(&region.name)?;
                    tuner.region_exit(&region.name)?;
                }
                State::Waiting | State::Done => unreachable!("advance requires an active driver"),
            }
            self.region_idx += 1;
            return Ok(EventOutcome::Advanced);
        }
        self.region_idx = 0;
        match &mut self.state {
            State::Plain(session) => {
                session.phase_complete()?;
                Ok(EventOutcome::Advanced)
            }
            State::Online(tuner) => match tuner.phase_complete() {
                Ok(_) => Ok(EventOutcome::Advanced),
                // The calibration abandoned itself (budget/planning
                // discovered at the planning point); the tuner keeps
                // running as a degraded static job.
                Err(RuntimeError::ExplorationBudget { .. } | RuntimeError::Planning(_)) => {
                    Ok(EventOutcome::Abandoned)
                }
                Err(other) => Err(other),
            },
            State::Waiting | State::Done => unreachable!("advance requires an active driver"),
        }
    }

    /// Advance an active, unfinished job through the *rest of its
    /// current phase* in one call: drain the phase's remaining
    /// contiguous region enter/exit events back to back, then take the
    /// phase-complete, and return that boundary event's outcome. One
    /// repository/accounting pass per session sweep instead of
    /// per-event dispatch — the batched twin of [`JobDriver::advance`]
    /// used by the parallel and discrete-event loops (the sequential
    /// loop keeps single-event `advance` as the reference
    /// implementation). Per-job accounting is interleaving-independent,
    /// so batching granularity is unobservable in the report.
    pub(crate) fn advance_phase(
        &mut self,
        bench: &BenchmarkSpec,
    ) -> Result<EventOutcome, RuntimeError> {
        loop {
            let at_boundary = self.region_idx >= bench.regions.len();
            let outcome = self.advance(bench)?;
            if at_boundary || !matches!(outcome, EventOutcome::Advanced) {
                return Ok(outcome);
            }
        }
    }

    /// Finish an active job whose iterations are exhausted: collect its
    /// accounting, hand any converged model to `publish`, and run the
    /// default-configuration baseline for the savings comparison. The
    /// baseline runs at the node-clamped default (identical to the
    /// platform default on a full-capability node) and — for an aborted
    /// job — over the same truncated phase count, so the savings compare
    /// like with like.
    pub(crate) fn finish(
        &mut self,
        job: &QueuedJob,
        node: &Node,
        publish: &mut dyn FnMut(&BenchmarkSpec, ModelPublication) -> u32,
    ) -> Result<(), RuntimeError> {
        match std::mem::replace(&mut self.state, State::Done) {
            State::Plain(session) => {
                self.accounting = Some(session.finish()?);
            }
            State::Online(tuner) => {
                let outcome = tuner.finish()?;
                self.accounting = Some(outcome.accounting);
                self.drift = outcome.drift_events;
                if let Some(publication) = outcome.publication {
                    self.published_version = Some(publish(&job.bench, publication));
                }
            }
            State::Waiting | State::Done => unreachable!("finish requires an active driver"),
        }
        let truncated;
        let baseline_bench = if self.iterations < job.bench.phase_iterations {
            truncated = {
                let mut b = job.bench.clone();
                b.phase_iterations = self.iterations;
                b
            };
            &truncated
        } else {
            &job.bench
        };
        self.default = Some(
            RuntimeSession::static_run(&job.name, baseline_bench, node, node_default(node))?.record,
        );
        Ok(())
    }
}

/// The platform default clamped to what `node` can actually run — the
/// launch/baseline configuration for jobs on capability-gapped nodes.
/// Identical to [`SystemConfig::taurus_default`] on a full node.
pub(crate) fn node_default(node: &Node) -> SystemConfig {
    let default = SystemConfig::taurus_default();
    default.with_threads(default.threads.min(node.topology().max_threads()))
}

/// Start the degraded replacement for a job whose served model or launch
/// configuration its node rejected: an untuned static session at the
/// node-clamped default, with the rejection recorded for the report.
/// Errors with the distinct [`RuntimeError::JobRejected`] — naming the
/// job and the node — when even the degraded configuration cannot run.
fn start_degraded<'b>(
    job: &'b QueuedJob,
    node: &'b Node,
    rejected: SystemConfig,
) -> Result<(RuntimeSession<'b>, JobRejection), RuntimeError> {
    let config = node_default(node);
    let served = ServedModel::fallback(TuningModel::new(&job.bench.name, &[], config));
    match RuntimeSession::start_from(&job.name, &job.bench, node, served, config) {
        Ok(session) => Ok((
            session,
            JobRejection {
                job: job.name.clone(),
                node_id: node.id(),
                config: rejected,
            },
        )),
        Err(RuntimeError::UnsupportedConfig { .. } | RuntimeError::UnsupportedInitial { .. }) => {
            Err(RuntimeError::JobRejected {
                job: job.name.clone(),
                node_id: node.id(),
                application: job.bench.name.clone(),
                config: rejected,
            })
        }
        Err(other) => Err(other),
    }
}

/// Start a plain serving session for an already-served model, degrading a
/// capability-gap rejection to a static run instead of failing the job.
pub(crate) fn start_plain<'b>(
    job: &'b QueuedJob,
    node: &'b Node,
    served: ServedModel,
) -> Result<(State<'b>, Option<JobRejection>), RuntimeError> {
    match RuntimeSession::start(&job.name, &job.bench, node, served) {
        Ok(session) => Ok((State::Plain(Box::new(session)), None)),
        Err(
            RuntimeError::UnsupportedConfig { config, .. }
            | RuntimeError::UnsupportedInitial { config },
        ) => {
            let (session, rejection) = start_degraded(job, node, config)?;
            Ok((State::Plain(Box::new(session)), Some(rejection)))
        }
        Err(other) => Err(other),
    }
}

/// Start a drift-monitoring tuner for a repository hit, degrading a
/// capability-gap rejection to a static run instead of failing the job.
pub(crate) fn start_monitor<'b>(
    job: &'b QueuedJob,
    node: &'b Node,
    served: ServedModel,
    config: OnlineConfig,
    faults: Option<&'b dyn FaultInjector>,
) -> Result<(State<'b>, Option<JobRejection>), RuntimeError> {
    match OnlineTuner::monitor(&job.name, &job.bench, node, served, config) {
        Ok(tuner) => {
            let tuner = match faults {
                Some(f) => tuner.with_faults(f),
                None => tuner,
            };
            Ok((State::Online(Box::new(tuner)), None))
        }
        Err(
            RuntimeError::UnsupportedConfig { config, .. }
            | RuntimeError::UnsupportedInitial { config },
        ) => {
            let (session, rejection) = start_degraded(job, node, config)?;
            Ok((State::Plain(Box::new(session)), Some(rejection)))
        }
        Err(other) => Err(other),
    }
}

/// Start a cold workload's calibration leader. Calibration refusals — an
/// injected fault, an exploration-budget failure, a planning failure, or
/// a capability-gap rejection of the calibration launch — degrade the
/// leader instead of erroring; the returned flag tells the caller to mark
/// the workload's calibration *failed* (the sequential `failed` set, or
/// the parallel latch) so same-workload followers take the fallback path.
pub(crate) fn start_calibration<'b>(
    job: &'b QueuedJob,
    node: &'b Node,
    online: &OnlineTuning<'b>,
    faults: Option<&'b dyn FaultInjector>,
    serve_fallback: &mut dyn FnMut(&BenchmarkSpec) -> Result<ServedModel, RuntimeError>,
) -> Result<(State<'b>, Option<JobRejection>, bool), RuntimeError> {
    let injected = faults.is_some_and(|f| f.fail_calibration(&job.name));
    if !injected {
        match OnlineTuner::calibrate(
            &job.name,
            &job.bench,
            node,
            online.strategy,
            online.energy_model,
            online.config,
        ) {
            Ok(tuner) => {
                let tuner = match faults {
                    Some(f) => tuner.with_faults(f),
                    None => tuner,
                };
                return Ok((State::Online(Box::new(tuner)), None, false));
            }
            // This workload cannot calibrate; fall through to the
            // fallback path (the miss was already recorded).
            Err(RuntimeError::ExplorationBudget { .. } | RuntimeError::Planning(_)) => {}
            // The calibration launch itself cannot run on this node:
            // degrade the job and fail the workload's calibration.
            Err(
                RuntimeError::UnsupportedConfig { config, .. }
                | RuntimeError::UnsupportedInitial { config },
            ) => {
                let (session, rejection) = start_degraded(job, node, config)?;
                return Ok((State::Plain(Box::new(session)), Some(rejection), true));
            }
            Err(other) => return Err(other),
        }
    }
    let served = serve_fallback(&job.bench)?;
    let (state, rejection) = start_plain(job, node, served)?;
    Ok((state, rejection, true))
}

/// Fold finished drivers into the aggregate report (submission order, so
/// the floating-point totals are identical no matter which event loop —
/// or how many workers — produced the drivers). `placements` gives each
/// job's final node index: the sweep loops pass the submission-time
/// placement verbatim, the discrete-event service passes its live
/// placements (which churn re-placement may have moved).
pub(crate) fn assemble_report(
    cluster: &Cluster,
    jobs: &[QueuedJob],
    placements: &[usize],
    drivers: Vec<JobDriver<'_>>,
    repository: RepositoryStats,
) -> ClusterReport {
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut total_default = JobRecord {
        job_energy_j: 0.0,
        cpu_energy_j: 0.0,
        elapsed_s: 0.0,
    };
    let mut total_tuned = total_default;
    let mut nodes_used = vec![false; cluster.len()];
    for ((driver, job), &node_idx) in drivers.into_iter().zip(jobs).zip(placements) {
        let aborted_at =
            (driver.iterations < job.bench.phase_iterations).then_some(driver.iterations);
        let accounting = driver.accounting.expect("all jobs finished");
        let default = driver.default.expect("baseline computed at finish");
        total_default.job_energy_j += default.job_energy_j;
        total_default.cpu_energy_j += default.cpu_energy_j;
        total_default.elapsed_s += default.elapsed_s;
        total_tuned.job_energy_j += accounting.record.job_energy_j;
        total_tuned.cpu_energy_j += accounting.record.cpu_energy_j;
        total_tuned.elapsed_s += accounting.record.elapsed_s;
        nodes_used[node_idx] = true;
        outcomes.push(JobOutcome {
            job: job.name.clone(),
            benchmark: job.bench.name.clone(),
            node_id: cluster.node(node_idx).id(),
            savings: Savings::between(&default, &accounting.record),
            accounting,
            default,
            published_version: driver.published_version,
            drift: driver.drift,
            rejection: driver.rejection,
            aborted_at,
        });
    }
    ClusterReport {
        aggregate: Savings::between(&total_default, &total_tuned),
        jobs: outcomes,
        total_default,
        total_tuned,
        repository,
        nodes_used: nodes_used.iter().filter(|&&used| used).count(),
        service: None,
    }
}

/// How the parallel event loop will admit one job, decided up front — in
/// submission order, exactly as the sequential loop's first admission
/// sweep would — so leadership of every cold workload is deterministic
/// no matter which worker reaches the job first.
enum Admission {
    /// Served at classification time (no online tuning, or a failed-path
    /// serve); start a plain session.
    Plain(ServedModel),
    /// Repository hit at classification time; start a drift-monitoring
    /// tuner.
    Monitor(ServedModel),
    /// First submitted job of a cold workload: calibrate, then resolve
    /// the workload's latch entry.
    Lead,
    /// Later job of a cold workload: block on the latch until the leader
    /// publishes (→ repository hit) or fails (→ calibration fallback).
    Follow,
}

/// One job's slot in the parallel run: its pre-decided admission, the
/// shared driver, and whether it leads a calibration (so an aborting
/// worker can release its waiters).
struct Slot<'b> {
    admission: Option<Admission>,
    driver: JobDriver<'b>,
    lead: bool,
}

/// Schedules and drives many concurrent runtime sessions over a cluster.
pub struct ClusterScheduler<'a> {
    cluster: &'a Cluster,
    placement: Placement,
    online: Option<OnlineTuning<'a>>,
    faults: Option<&'a dyn FaultInjector>,
    recorder: Option<&'a dyn Recorder>,
    rr_next: usize,
    queue: Vec<QueuedJob>,
    /// Estimated phase work (instructions) assigned per node.
    load: Vec<f64>,
}

/// The recorder handed to runs when none is attached: recording off.
static NOOP_RECORDER: NoopRecorder = NoopRecorder;

/// Estimated total work of a job, for least-loaded placement.
pub(crate) fn estimated_work(bench: &BenchmarkSpec) -> f64 {
    bench.phase_character().instr_per_iter * f64::from(bench.phase_iterations)
}

impl<'a> ClusterScheduler<'a> {
    /// Scheduler over `cluster` with round-robin placement.
    pub fn new(cluster: &'a Cluster) -> Result<Self, RuntimeError> {
        if cluster.is_empty() {
            return Err(RuntimeError::EmptyCluster);
        }
        Ok(Self {
            cluster,
            placement: Placement::RoundRobin,
            online: None,
            faults: None,
            recorder: None,
            rr_next: 0,
            queue: Vec::new(),
            load: vec![0.0; cluster.len()],
        })
    }

    /// Select the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Attach online adaptation: repository misses calibrate in-situ and
    /// publish back instead of pinning the static fallback, and hits are
    /// drift-monitored (see [`OnlineTuning`]).
    #[must_use]
    pub fn with_online(mut self, online: OnlineTuning<'a>) -> Self {
        self.online = Some(online);
        self
    }

    /// Attach a deterministic [`FaultInjector`] honored by both event
    /// loops: jobs abort at an injected phase boundary (truncated
    /// accounting and baseline), cold-workload calibrations can be
    /// refused at admission, and monitoring jobs can have drift shifts
    /// injected into their detectors. Every fault is a pure function of
    /// the job identity, so a faulted parallel run still matches its
    /// faulted sequential counterpart bit for bit.
    #[must_use]
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attach a telemetry recorder: the discrete-event service
    /// ([`ClusterScheduler::run_service`]) and the parallel and
    /// replicated loops emit metrics, spans, and instants into it (see
    /// the `obskit` crate). Without this call every run uses
    /// [`NoopRecorder`] — one predictable branch per instrumentation
    /// point, zero allocation — so existing call sites are unaffected.
    /// Recording never changes execution: recorded and unrecorded runs
    /// of the same inputs are bit-identical (the testkit `observability`
    /// invariant).
    #[must_use]
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Jobs queued but not yet run.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The cluster this scheduler places onto (for the discrete-event
    /// service, which lives in [`crate::service`]).
    pub(crate) fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// The configured placement policy.
    pub(crate) fn placement(&self) -> Placement {
        self.placement
    }

    /// The attached online adaptation, if any.
    pub(crate) fn online(&self) -> Option<OnlineTuning<'a>> {
        self.online
    }

    /// The attached fault injector, if any.
    pub(crate) fn faults(&self) -> Option<&'a dyn FaultInjector> {
        self.faults
    }

    /// The attached recorder, or the shared no-op.
    pub(crate) fn recorder(&self) -> &'a dyn Recorder {
        self.recorder.unwrap_or(&NOOP_RECORDER)
    }

    /// Submit a job; returns the id of the node it was placed on.
    pub fn submit(&mut self, name: impl Into<String>, bench: BenchmarkSpec) -> u32 {
        let idx = match self.placement {
            Placement::RoundRobin => {
                let idx = self.rr_next % self.cluster.len();
                self.rr_next += 1;
                idx
            }
            Placement::LeastLoaded => self
                .load
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0),
        };
        self.load[idx] += estimated_work(&bench);
        self.queue.push(QueuedJob {
            name: name.into(),
            bench,
            node_idx: idx,
        });
        self.cluster.node(idx).id()
    }

    /// Consume the queue and reset the placement bookkeeping for the next
    /// submission wave.
    fn take_queue(&mut self) -> Vec<QueuedJob> {
        self.load = vec![0.0; self.cluster.len()];
        self.rr_next = 0;
        std::mem::take(&mut self.queue)
    }

    /// Run every queued job to completion, interleaved across the
    /// cluster, serving tuning models from `repo`.
    ///
    /// Each sweep of the scheduler loop advances every active session by
    /// one event (a region enter/exit pair or a phase completion), so at
    /// any instant up to `pending()` sessions are in flight. The queue is
    /// consumed by the run, including on error.
    ///
    /// With [`ClusterScheduler::with_online`] attached, admission is
    /// gated per workload: the first job of a workload the repository
    /// cannot serve starts calibrating, further jobs of the *same*
    /// workload wait until that calibration publishes, and then start as
    /// repository hits — the cluster warm-up pattern (miss → calibrate →
    /// publish → fleet-wide hits). Jobs of distinct workloads calibrate
    /// concurrently.
    pub fn run(&mut self, repo: &mut TuningModelRepository) -> Result<ClusterReport, RuntimeError> {
        self.run_with(repo)
    }

    /// [`ClusterScheduler::run`] over any model store implementing
    /// [`RepositoryHandle`] — the seam that lets the same event loop
    /// serve from a plain [`TuningModelRepository`] or from one replica
    /// of a [`ReplicaSet`] (see
    /// [`ClusterScheduler::run_replicated`]).
    pub fn run_with(
        &mut self,
        repo: &mut dyn RepositoryHandle,
    ) -> Result<ClusterReport, RuntimeError> {
        let cluster = self.cluster;
        let online = self.online;
        let faults = self.faults;
        let jobs = self.take_queue();

        let mut drivers: Vec<JobDriver<'_>> =
            jobs.iter().map(|job| JobDriver::new(job, faults)).collect();

        // Workload keys with a calibration in flight: same-key jobs wait.
        let mut calibrating: BTreeSet<ModelKey> = BTreeSet::new();
        // Workload keys whose calibration failed (budget/planning/fault):
        // the rest of the queue degrades to ordinary fallback serving
        // instead of re-attempting — and instead of aborting healthy jobs.
        let mut failed: BTreeSet<ModelKey> = BTreeSet::new();
        let mut done = 0usize;
        while done < jobs.len() {
            // Admission pass, in submission order.
            for (driver, job) in drivers.iter_mut().zip(&jobs) {
                if !matches!(driver.state, State::Waiting) {
                    continue;
                }
                let node = cluster.node(job.node_idx);
                let (state, rejection) = match &online {
                    None => start_plain(job, node, repo.serve(&job.bench)?)?,
                    Some(online) => {
                        let key = ModelKey::of(&job.bench);
                        if failed.contains(&key) {
                            start_plain(job, node, repo.serve(&job.bench)?)?
                        } else if calibrating.contains(&key) {
                            continue; // wait for the in-flight calibration
                        } else {
                            match repo.serve_stored(&job.bench)? {
                                Some(served) => {
                                    start_monitor(job, node, served, online.config, faults)?
                                }
                                None => {
                                    let (state, rejection, calibration_failed) =
                                        start_calibration(job, node, online, faults, &mut |b| {
                                            repo.serve_fallback(b)
                                        })?;
                                    if calibration_failed {
                                        failed.insert(key);
                                    } else {
                                        calibrating.insert(key);
                                    }
                                    (state, rejection)
                                }
                            }
                        }
                    }
                };
                driver.state = state;
                driver.rejection = rejection;
            }

            // Event pass: one event per active session per sweep.
            for (driver, job) in drivers.iter_mut().zip(&jobs) {
                if !driver.is_active() {
                    continue;
                }
                if driver.finished_iterations() {
                    let was_online = matches!(driver.state, State::Online(_));
                    driver.finish(
                        job,
                        cluster.node(job.node_idx),
                        &mut |bench, publication| {
                            repo.publish_online(bench, &publication.model, publication.expected)
                        },
                    )?;
                    if was_online {
                        let key = ModelKey::of(&job.bench);
                        let led_calibration = calibrating.remove(&key);
                        if led_calibration && driver.published_version.is_none() {
                            // The leader finished without converging
                            // (e.g. an injected abort truncated the
                            // calibration): same-key waiters degrade to
                            // the fallback, exactly as the parallel
                            // latch's failed outcome would make them.
                            failed.insert(key);
                        }
                    }
                    done += 1;
                } else {
                    match driver.advance(&job.bench)? {
                        EventOutcome::Advanced => {}
                        EventOutcome::Abandoned => {
                            // Unblock same-key waiters — they will serve
                            // the fallback.
                            let key = ModelKey::of(&job.bench);
                            calibrating.remove(&key);
                            failed.insert(key);
                        }
                    }
                }
            }
        }

        let placements: Vec<usize> = jobs.iter().map(|j| j.node_idx).collect();
        Ok(assemble_report(
            cluster,
            &jobs,
            &placements,
            drivers,
            repo.stats(),
        ))
    }

    /// [`ClusterScheduler::run`], serving from (and publishing to) one
    /// replica of a [`ReplicaSet`].
    ///
    /// The run is local to the addressed replica: hits and misses go
    /// against its repository, and online publications are stamped into
    /// its replication log. Nothing crosses the wire here — call
    /// [`ReplicaSet::converge`] afterwards to anti-entropy the
    /// publications out to the other replicas. Addressing a replica the
    /// set does not contain fails with
    /// [`RuntimeError::Replication`].
    pub fn run_replicated(
        &mut self,
        set: &mut ReplicaSet<'_>,
        replica: u32,
    ) -> Result<ClusterReport, RuntimeError> {
        let replica = set
            .replica_mut(replica)
            .map_err(RuntimeError::Replication)?;
        self.recorder().counter_add("cluster.replicated_runs", 1);
        self.run_with(replica)
    }

    /// [`ClusterScheduler::run`], but across `workers` real threads over
    /// a lock-striped [`SharedRepository`].
    ///
    /// The submitted jobs are split into contiguous submission-order
    /// partitions, one per worker; each worker drives its partition with
    /// the same interleaved event loop the sequential path uses. Three
    /// mechanisms keep the result equal to the sequential run:
    ///
    /// 1. **Up-front admission.** Before the workers start, every job is
    ///    classified in submission order against the repository — hits
    ///    are served immediately, and the *first* job of each cold
    ///    workload is fixed as that workload's calibration leader — so
    ///    who serves what never depends on thread timing.
    /// 2. **The calibration latch.** Followers of an in-flight
    ///    calibration park on their workload's [`CalibrationLatch`] entry
    ///    (only when their worker has nothing else runnable), and resume
    ///    as repository hits the moment the leader publishes — or degrade
    ///    to the calibration fallback if it fails, exactly like the
    ///    sequential failed-workload path. Leaders never wait, so the
    ///    wait graph is acyclic and the loop cannot deadlock.
    /// 3. **Interleaving-independent accounting** (see
    ///    [`crate::session`]) makes each job's result independent of
    ///    what runs beside it.
    ///
    /// Per-job [`JobAccounting`], savings and drift events are therefore
    /// bit-identical to [`ClusterScheduler::run`] for the same
    /// submissions and repository contents — the property the
    /// `tests/runtime.rs` suite locks in — as long as the repository is
    /// not LRU-evicting mid-run (see the module docs for the caveat).
    ///
    /// `workers` is clamped to `1..=pending()`. Errors mirror the
    /// sequential path; when several workers fail, the error of the
    /// earliest-submitted failing job is returned. The queue is consumed
    /// by the run, including on error.
    pub fn run_parallel(
        &mut self,
        repo: &SharedRepository,
        workers: usize,
    ) -> Result<ClusterReport, RuntimeError> {
        let cluster = self.cluster;
        let online = self.online;
        let faults = self.faults;
        let recorder = self.recorder();
        let jobs = self.take_queue();
        if jobs.is_empty() {
            return Ok(assemble_report(
                cluster,
                &jobs,
                &[],
                Vec::new(),
                repo.stats(),
            ));
        }
        let workers = workers.clamp(1, jobs.len());

        // Per-run latch, matching the repository's shard partitioning —
        // claims must not outlive the run (a workload that failed to
        // calibrate in this wave is retried in the next).
        let latch = CalibrationLatch::new(repo.shard_count());

        // 1. Classification: the sequential loop's first admission sweep,
        //    replayed verbatim — submission order against the current
        //    repository state.
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(jobs.len());
        let mut leaders: BTreeSet<ModelKey> = BTreeSet::new();
        for job in &jobs {
            let (admission, lead) = match &online {
                None => (Admission::Plain(repo.serve(&job.bench)?), false),
                Some(_) => {
                    let key = ModelKey::of(&job.bench);
                    if leaders.contains(&key) {
                        (Admission::Follow, false)
                    } else {
                        match repo.serve_stored(&job.bench)? {
                            Some(served) => (Admission::Monitor(served), false),
                            None => {
                                leaders.insert(key.clone());
                                latch.begin(&key);
                                (Admission::Lead, true)
                            }
                        }
                    }
                }
            };
            slots.push(Slot {
                admission: Some(admission),
                driver: JobDriver::new(job, faults),
                lead,
            });
        }

        // 2. Fan the partitions out to real threads. Worker errors are
        //    collected with their global job index so the reported error
        //    is the earliest-submitted one, independent of thread timing.
        let chunk = jobs.len().div_ceil(workers);
        let errors: Mutex<Vec<(usize, RuntimeError)>> = Mutex::new(Vec::new());
        rayon::scope(|scope| {
            for (w, (job_chunk, slot_chunk)) in
                jobs.chunks(chunk).zip(slots.chunks_mut(chunk)).enumerate()
            {
                let (errors, latch, online) = (&errors, &latch, &online);
                scope.spawn(move |_| {
                    // Release every calibration this partition leads when
                    // the worker exits for *any* reason — normal return
                    // (claims already resolved; `fail` is first-writer-
                    // wins, so published ones are safe), error, or panic
                    // unwind. Without the drop guard, a panicking leader
                    // would park its followers in `CalibrationLatch::wait`
                    // forever: `std::thread::scope` joins every thread
                    // before re-raising the panic, so the whole run would
                    // hang instead of surfacing it.
                    struct ReleaseOnExit<'x> {
                        latch: &'x CalibrationLatch,
                        led: Vec<ModelKey>,
                    }
                    impl Drop for ReleaseOnExit<'_> {
                        fn drop(&mut self) {
                            for key in &self.led {
                                self.latch.fail(key);
                            }
                        }
                    }
                    let _release = ReleaseOnExit {
                        latch,
                        led: job_chunk
                            .iter()
                            .zip(slot_chunk.iter())
                            .filter(|(_, slot)| slot.lead)
                            .map(|(job, _)| ModelKey::of(&job.bench))
                            .collect(),
                    };
                    if let Err(at) = drive_partition(
                        cluster, repo, latch, online, faults, recorder, job_chunk, slot_chunk,
                    ) {
                        errors.lock().push((w * chunk + at.0, at.1));
                    }
                });
            }
        });
        // The no-orphaned-claims invariant: every claim taken at
        // classification must be resolved once the workers have exited —
        // by a publication, a failure, or a worker's drop guard. An
        // in-flight claim here would have been a future deadlock. Checked
        // in release builds too (the cost is one pass over the claims):
        // the soak harness runs `--release`, and a leaked claim whose
        // followers all lived in the leader's own partition would
        // otherwise pass silently.
        assert_eq!(
            latch.unresolved(),
            0,
            "run_parallel left orphaned calibration claims"
        );

        let mut failures = errors.into_inner();
        failures.sort_by_key(|(idx, _)| *idx);
        if let Some((_, error)) = failures.into_iter().next() {
            return Err(error);
        }
        let drivers: Vec<JobDriver<'_>> = slots.into_iter().map(|slot| slot.driver).collect();
        let placements: Vec<usize> = jobs.iter().map(|j| j.node_idx).collect();
        Ok(assemble_report(
            cluster,
            &jobs,
            &placements,
            drivers,
            repo.stats(),
        ))
    }
}

/// One worker's event loop over its contiguous partition of the
/// submitted jobs: admit what the classification decided, advance every
/// active session one event per sweep, and park on the calibration latch
/// only when nothing in the partition is runnable. Errors carry the
/// partition-local index of the failing job.
#[allow(clippy::too_many_arguments)]
fn drive_partition<'b>(
    cluster: &'b Cluster,
    repo: &SharedRepository,
    latch: &CalibrationLatch,
    online: &Option<OnlineTuning<'b>>,
    faults: Option<&'b dyn FaultInjector>,
    recorder: &dyn Recorder,
    jobs: &'b [QueuedJob],
    slots: &mut [Slot<'b>],
) -> Result<(), (usize, RuntimeError)> {
    let mut done = 0usize;
    while done < jobs.len() {
        // Sampled *before* the sweep: a resolution that lands anywhere
        // between here and a park below advances the epoch, so the park
        // returns immediately instead of missing the wakeup.
        let resolution_epoch = latch.resolution_epoch();
        let mut progressed = false;
        let mut blocked: Option<ModelKey> = None;
        for (i, (slot, job)) in slots.iter_mut().zip(jobs).enumerate() {
            // Admission: act on the pre-decided classification.
            if matches!(slot.driver.state, State::Waiting) {
                let node = cluster.node(job.node_idx);
                let fail = |e| (i, e);
                let (state, rejection) =
                    match slot.admission.take().expect("waiting slot is classified") {
                        Admission::Plain(served) => start_plain(job, node, served).map_err(fail)?,
                        Admission::Monitor(served) => {
                            let config = online.as_ref().expect("monitor implies online").config;
                            start_monitor(job, node, served, config, faults).map_err(fail)?
                        }
                        Admission::Lead => {
                            let online = online.as_ref().expect("lead implies online");
                            let key = ModelKey::of(&job.bench);
                            let (state, rejection, calibration_failed) =
                                start_calibration(job, node, online, faults, &mut |b| {
                                    repo.serve_fallback(b)
                                })
                                .map_err(fail)?;
                            if calibration_failed {
                                // This workload cannot calibrate: release
                                // the waiters to the fallback path; the
                                // leader runs degraded (the miss was
                                // already recorded at classification).
                                latch.fail(&key);
                            }
                            (state, rejection)
                        }
                        Admission::Follow => {
                            let key = ModelKey::of(&job.bench);
                            match latch.status(&key) {
                                LatchStatus::InFlight | LatchStatus::Unclaimed => {
                                    // Leader still calibrating (possibly in
                                    // this very partition): stay waiting,
                                    // remember the key in case the whole
                                    // partition has nothing else to do.
                                    slot.admission = Some(Admission::Follow);
                                    blocked.get_or_insert(key);
                                    continue;
                                }
                                LatchStatus::Done(CalibrationOutcome::Published) => {
                                    match repo.serve_stored(&job.bench).map_err(fail)? {
                                        Some(served) => {
                                            let config = online
                                                .as_ref()
                                                .expect("follow implies online")
                                                .config;
                                            start_monitor(job, node, served, config, faults)
                                                .map_err(fail)?
                                        }
                                        // Published but already LRU-evicted:
                                        // calibrate afresh, exactly as the
                                        // sequential admission would on the
                                        // re-miss (the claim stays resolved,
                                        // so under churn this heavy several
                                        // same-workload followers may each
                                        // re-calibrate rather than queue).
                                        None => {
                                            let online =
                                                online.as_ref().expect("follow implies online");
                                            let (state, rejection, _refused) = start_calibration(
                                                job,
                                                node,
                                                online,
                                                faults,
                                                &mut |b| repo.serve_fallback(b),
                                            )
                                            .map_err(fail)?;
                                            (state, rejection)
                                        }
                                    }
                                }
                                LatchStatus::Done(CalibrationOutcome::Failed) => {
                                    // Exactly the sequential failed-workload
                                    // path: a full serve (miss + fallback).
                                    let served = repo.serve(&job.bench).map_err(fail)?;
                                    start_plain(job, node, served).map_err(fail)?
                                }
                            }
                        }
                    };
                slot.driver.state = state;
                slot.driver.rejection = rejection;
                progressed = true;
            }

            // Event: one step per active session per sweep.
            if slot.driver.is_active() {
                if slot.driver.finished_iterations() {
                    slot.driver
                        .finish(
                            job,
                            cluster.node(job.node_idx),
                            &mut |bench, publication| {
                                repo.publish_online(bench, &publication.model, publication.expected)
                            },
                        )
                        .map_err(|e| (i, e))?;
                    if slot.lead {
                        let key = ModelKey::of(&job.bench);
                        if slot.driver.published_version.is_some() {
                            latch.publish(&key);
                        } else {
                            // Converged nothing (abandoned mid-run): the
                            // abandon already failed the latch; this is
                            // belt and braces for any other no-publish
                            // path.
                            latch.fail(&key);
                        }
                    }
                    done += 1;
                } else {
                    // Batched: drain the session's contiguous region
                    // events and take the phase boundary in one pass.
                    match slot.driver.advance_phase(&job.bench).map_err(|e| (i, e))? {
                        EventOutcome::Advanced => {}
                        EventOutcome::Abandoned => latch.fail(&ModelKey::of(&job.bench)),
                    }
                }
                progressed = true;
            }
        }

        if !progressed {
            // Every remaining job follows a calibration led elsewhere.
            // Leaders never block, so some resolution is guaranteed to
            // arrive; park until the latch's resolution epoch moves past
            // the value sampled before this sweep. Any resolution — on
            // *any* workload, not just the first blocked one — wakes the
            // worker, which then re-sweeps the partition to admit every
            // follower that became runnable. No polling interval, no
            // missed-wakeup window (a resolution during the sweep
            // already advanced the epoch, so the wait returns at once).
            debug_assert!(blocked.is_some(), "no progress implies a blocked follower");
            if recorder.enabled() {
                let parked = std::time::Instant::now();
                latch.wait_resolution(resolution_epoch);
                let waited = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
                recorder.counter_add("latch.waits", 1);
                recorder.histogram_record("latch.wait_ns", waited);
            } else {
                latch.wait_resolution(resolution_epoch);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf::TuningModel;

    fn lulesh_model() -> TuningModel {
        TuningModel::new(
            "Lulesh",
            &[
                (
                    "IntegrateStressForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                (
                    "CalcKinematicsForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
            ],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    fn toy(name: &str, instr: f64) -> BenchmarkSpec {
        kernels::toy_benchmark(name, instr, 4)
    }

    #[test]
    fn empty_cluster_rejected() {
        let cluster = Cluster::exact(0);
        assert!(matches!(
            ClusterScheduler::new(&cluster),
            Err(RuntimeError::EmptyCluster)
        ));
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let cluster = Cluster::exact(3);
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        let ids: Vec<u32> = (0..6)
            .map(|i| sched.submit(format!("j{i}"), toy("t", 1e9)))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(sched.pending(), 6);
    }

    #[test]
    fn least_loaded_balances_by_estimated_work() {
        let cluster = Cluster::exact(2);
        let mut sched = ClusterScheduler::new(&cluster)
            .unwrap()
            .with_placement(Placement::LeastLoaded);
        // Heavy job lands on node 0, then both small jobs go to node 1
        // (their combined work is still below the heavy job's).
        assert_eq!(sched.submit("heavy", toy("heavy", 1e12)), 0);
        assert_eq!(sched.submit("small-1", toy("small", 1e9)), 1);
        assert_eq!(sched.submit("small-2", toy("small", 1e9)), 1);
        assert_eq!(sched.submit("small-3", toy("small", 1e9)), 1);
    }

    #[test]
    fn scheduler_serves_and_reports() {
        let cluster = Cluster::exact(2);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let mut repo =
            TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
        repo.insert(&lulesh, &lulesh_model());

        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        for i in 0..3 {
            sched.submit(format!("lulesh-{i}"), lulesh.clone());
        }
        sched.submit("toy-0", toy("toy", 5e9));
        let report = sched.run(&mut repo).unwrap();

        assert_eq!(report.jobs.len(), 4);
        assert_eq!(sched.pending(), 0, "queue consumed");
        assert_eq!(report.nodes_used, 2);
        assert_eq!(report.repository.hits, 3);
        assert_eq!(report.repository.fallbacks, 1);
        // Tuned Lulesh jobs save energy versus their defaults.
        for j in report.jobs.iter().filter(|j| j.benchmark == "Lulesh") {
            assert!(j.savings.job_energy_pct > 0.0, "{j:?}");
            assert!(j.accounting.switches > 0);
        }
        let text = report.format_report();
        assert!(text.contains("lulesh-2"), "{text}");
        assert!(text.contains("hit rate 75%"), "{text}");
    }

    #[test]
    fn run_replicated_serves_synced_entries_identically_to_a_plain_run() {
        use crate::net::{ReplicaConfig, ReplicaSet};
        let cluster = Cluster::exact(2);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let fallback = SystemConfig::new(24, 2400, 1700);

        // Publish on replica 0, sync, then serve a whole run off replica 2.
        let config = ReplicaConfig {
            fallback: Some(fallback),
            ..ReplicaConfig::default()
        };
        let mut set = ReplicaSet::new(3, config);
        set.replica_mut(0)
            .unwrap()
            .publish_model(&lulesh, &lulesh_model(), vec![]);
        set.converge().unwrap();

        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        for i in 0..3 {
            sched.submit(format!("lulesh-{i}"), lulesh.clone());
        }
        let replicated = sched.run_replicated(&mut set, 2).unwrap();
        assert_eq!(
            replicated.repository.hits, 3,
            "replicated entries serve as hits"
        );

        // The same jobs against a plain warm repository account identically:
        // where the model came from is invisible to the jobs it tunes.
        let mut repo = TuningModelRepository::new().with_fallback(fallback);
        repo.insert(&lulesh, &lulesh_model());
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        for i in 0..3 {
            sched.submit(format!("lulesh-{i}"), lulesh.clone());
        }
        let plain = sched.run(&mut repo).unwrap();
        assert_eq!(replicated.jobs.len(), plain.jobs.len());
        for (a, b) in replicated.jobs.iter().zip(&plain.jobs) {
            // Only the provenance tag may differ: replicated entries
            // serve as `Replicated`, plain inserts as `Repository`.
            assert_eq!(
                a.accounting.source,
                crate::repository::ModelSource::Replicated
            );
            let mut normalized = a.accounting.clone();
            normalized.source = b.accounting.source;
            assert_eq!(normalized, b.accounting, "{}", a.job);
        }

        // Addressing a replica the set does not contain is a value, not
        // a panic.
        assert!(matches!(
            sched.run_replicated(&mut set, 7),
            Err(RuntimeError::Replication(
                crate::net::NetError::UnknownReplica {
                    replica: 7,
                    replicas: 3,
                }
            ))
        ));
    }

    #[test]
    fn serve_failure_propagates() {
        let cluster = Cluster::exact(1);
        let mut repo = TuningModelRepository::new(); // no model, no fallback
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        sched.submit("j", toy("t", 1e9));
        assert!(matches!(
            sched.run(&mut repo),
            Err(RuntimeError::NoModel { .. })
        ));
    }

    #[test]
    fn parallel_run_matches_sequential_serving() {
        let cluster = Cluster::exact(3);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let fallback = SystemConfig::new(24, 2400, 1700);

        let mut repo = TuningModelRepository::new().with_fallback(fallback);
        repo.insert(&lulesh, &lulesh_model());
        let shared = SharedRepository::new(4).with_fallback(fallback);
        shared.insert(&lulesh, &lulesh_model());

        let submit = |sched: &mut ClusterScheduler<'_>| {
            for i in 0..6 {
                sched.submit(format!("lulesh-{i}"), lulesh.clone());
            }
            sched.submit("toy-0", toy("toy", 5e9));
        };
        let mut seq = ClusterScheduler::new(&cluster).unwrap();
        submit(&mut seq);
        let sequential = seq.run(&mut repo).unwrap();

        let mut par = ClusterScheduler::new(&cluster).unwrap();
        submit(&mut par);
        let parallel = par.run_parallel(&shared, 4).unwrap();

        assert_eq!(parallel.jobs.len(), sequential.jobs.len());
        for (p, s) in parallel.jobs.iter().zip(&sequential.jobs) {
            assert_eq!(p.job, s.job, "submission order preserved");
            assert_eq!(p.node_id, s.node_id);
            assert_eq!(p.accounting.record, s.accounting.record, "{}", p.job);
            assert_eq!(p.accounting.regions, s.accounting.regions);
            assert_eq!(p.default, s.default);
            assert_eq!(p.savings, s.savings);
        }
        assert_eq!(parallel.total_tuned, sequential.total_tuned);
        assert_eq!(parallel.total_default, sequential.total_default);
        assert_eq!(parallel.aggregate, sequential.aggregate);
        assert_eq!(parallel.repository.hits, sequential.repository.hits);
        assert_eq!(parallel.repository.misses, sequential.repository.misses);
        assert_eq!(shared.stats(), shared.shard_stats());
    }

    #[test]
    fn parallel_online_warm_up_calibrates_once_and_matches_sequential() {
        use ptf::RandomSearch;

        let cluster = Cluster::exact(3);
        let bench = kernels::benchmark("miniMD").unwrap();
        let strategy = RandomSearch::new(16, 7);
        let online = OnlineTuning {
            strategy: &strategy,
            energy_model: None,
            config: OnlineConfig::default(),
        };

        let run_seq = || {
            let mut repo = TuningModelRepository::new();
            let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
            for i in 0..6 {
                sched.submit(format!("job-{i}"), bench.clone());
            }
            sched.run(&mut repo).unwrap()
        };
        let sequential = run_seq();

        let shared = SharedRepository::new(4);
        let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
        for i in 0..6 {
            sched.submit(format!("job-{i}"), bench.clone());
        }
        // 3 workers: the leader calibrates on one thread while followers
        // on the other threads park on the workload's latch entry.
        let parallel = sched.run_parallel(&shared, 3).unwrap();

        // Warm-up shape: one calibration, five Online hits.
        let summary = parallel.online_summary();
        assert_eq!(summary.calibrations, 1);
        assert_eq!(parallel.repository.misses, 1);
        assert_eq!(parallel.repository.hits, 5);
        assert_eq!(parallel.jobs[0].published_version, Some(1));

        // …and bit-identical to the sequential warm-up, job by job.
        for (p, s) in parallel.jobs.iter().zip(&sequential.jobs) {
            assert_eq!(p.accounting.record, s.accounting.record, "{}", p.job);
            assert_eq!(p.accounting.regions, s.accounting.regions);
            assert_eq!(p.accounting.online, s.accounting.online);
            assert_eq!(p.savings, s.savings);
            assert_eq!(p.published_version, s.published_version);
        }
    }

    #[test]
    fn parallel_failed_calibration_degrades_followers_to_fallback() {
        use ptf::RandomSearch;

        let cluster = Cluster::exact(2);
        // 3 phase iterations cannot fund a thread sweep + analysis +
        // exploration: the leader's calibration fails fast and every
        // same-workload follower must degrade to the fallback.
        let mut bench = kernels::benchmark("miniMD").unwrap();
        bench.phase_iterations = 3;
        let strategy = RandomSearch::new(16, 7);
        let online = OnlineTuning {
            strategy: &strategy,
            energy_model: None,
            config: OnlineConfig::default(),
        };

        let shared = SharedRepository::new(2).with_fallback(SystemConfig::new(24, 2400, 1700));
        let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
        for i in 0..4 {
            sched.submit(format!("job-{i}"), bench.clone());
        }
        let report = sched.run_parallel(&shared, 2).unwrap();
        assert_eq!(report.jobs.len(), 4);
        for job in &report.jobs {
            assert_eq!(
                job.accounting.source,
                crate::repository::ModelSource::Fallback
            );
            assert!(job.published_version.is_none());
        }
        // Leader: one classification miss, no fallback-serve miss;
        // followers: one miss + fallback each (the sequential counts).
        assert_eq!(report.repository.misses, 4);
        assert_eq!(report.repository.fallbacks, 4);
    }

    #[test]
    fn injected_abort_truncates_job_and_baseline() {
        struct AbortSecond;
        impl crate::inject::FaultInjector for AbortSecond {
            fn abort_phase(&self, job: &str) -> Option<u32> {
                (job == "doomed").then_some(2)
            }
        }

        let cluster = Cluster::exact(1);
        let bench = toy("t", 5e9); // 4 phase iterations
        let mut repo =
            TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
        let mut sched = ClusterScheduler::new(&cluster)
            .unwrap()
            .with_faults(&AbortSecond);
        sched.submit("doomed", bench.clone());
        sched.submit("healthy", bench.clone());
        let report = sched.run(&mut repo).unwrap();

        let doomed = &report.jobs[0];
        let healthy = &report.jobs[1];
        assert_eq!(doomed.aborted_at, Some(2));
        assert_eq!(healthy.aborted_at, None);
        // Truncated run: half the phases, so roughly half the energy and
        // a baseline truncated to match (savings stay comparable).
        assert!(doomed.accounting.record.elapsed_s < healthy.accounting.record.elapsed_s);
        assert!(doomed.default.elapsed_s < healthy.default.elapsed_s);
        let text = report.format_report();
        assert!(text.contains("faults: 1 job aborted"), "{text}");
    }

    #[test]
    fn capability_gap_degrades_job_instead_of_aborting_run() {
        use simnode::Topology;
        // Node 1 has half the cores: the stored 24-thread model — and the
        // 24-thread platform default — cannot run there.
        let mut small = Topology::taurus_haswell();
        small.cores_per_socket = 6;
        let cluster =
            Cluster::from_nodes(vec![Node::exact(0), Node::exact(1).with_topology(small)]);
        let lulesh = kernels::benchmark("Lulesh").unwrap();
        let mut repo = TuningModelRepository::new();
        repo.insert(&lulesh, &lulesh_model());

        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        sched.submit("fits", lulesh.clone()); // node 0: full capability
        sched.submit("gapped", lulesh.clone()); // node 1: rejected
        let report = sched.run(&mut repo).expect("run degrades, not aborts");

        let fits = &report.jobs[0];
        assert!(fits.rejection.is_none());
        assert_eq!(
            fits.accounting.source,
            crate::repository::ModelSource::Repository
        );

        let gapped = &report.jobs[1];
        let rejection = gapped.rejection.as_ref().expect("gap recorded");
        assert_eq!(rejection.job, "gapped");
        assert_eq!(rejection.node_id, 1);
        assert_eq!(
            gapped.accounting.source,
            crate::repository::ModelSource::Fallback,
            "degraded to an untuned static run"
        );
        assert_eq!(gapped.accounting.switches, 0);
        // The baseline ran at the node-clamped default, so savings are
        // the honest zero-ish of an untuned job, not nonsense.
        assert!(
            gapped.savings.job_energy_pct.abs() < 5.0,
            "{:?}",
            gapped.savings
        );
        let text = report.format_report();
        assert!(text.contains("gapped on node 1"), "{text}");
    }

    #[test]
    fn parallel_empty_queue_reports_nothing() {
        let cluster = Cluster::exact(2);
        let shared = SharedRepository::new(2);
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        let report = sched.run_parallel(&shared, 8).unwrap();
        assert!(report.jobs.is_empty());
        assert_eq!(report.nodes_used, 0);
    }

    #[test]
    fn parallel_serve_failure_reports_earliest_job() {
        let cluster = Cluster::exact(2);
        let shared = SharedRepository::new(2); // no models, no fallback
        let mut sched = ClusterScheduler::new(&cluster).unwrap();
        sched.submit("a", toy("t", 1e9));
        sched.submit("b", toy("t", 1e9));
        assert!(matches!(
            sched.run_parallel(&shared, 2),
            Err(RuntimeError::NoModel { .. })
        ));
        assert_eq!(sched.pending(), 0, "queue consumed on error");
    }
}
