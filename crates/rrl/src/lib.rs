//! # rrl — the READEX Runtime Library analog
//!
//! The production half of the paper's workflow (Section V-D): the tuning
//! model generated at design time is handed to the RRL
//! (`SCOREP_RRL_TMM_PATH`), which performs Runtime Application Tuning —
//! "dynamically adjusts the system configuration during application
//! runtime according to the generated tuning model" — through the Score-P
//! PCPs. This crate provides:
//!
//! * [`tmm`] — the Tuning Model Manager,
//! * [`rat`] — the runtime switching hook driven by the scenario
//!   classifier,
//! * [`static_tuning`] — best-static-configuration runs,
//! * [`sacct`] — SLURM-style job accounting (job energy / CPU energy /
//!   elapsed, the three quantities of Table VI),
//! * [`savings`] — default-vs-tuned comparisons including the
//!   configuration-setting performance reduction and the combined
//!   DVFS/UFS/Score-P overhead decomposition of Section V-E.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod rat;
pub mod sacct;
pub mod savings;
pub mod static_tuning;
pub mod tmm;

pub use rat::RrlHook;
pub use sacct::JobRecord;
pub use savings::{compare_static_dynamic, BenchmarkComparison, Savings};
pub use static_tuning::run_static;
pub use tmm::TuningModelManager;
