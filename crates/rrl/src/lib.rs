//! # rrl — the READEX Runtime Library analog
//!
//! The production half of the paper's workflow (Section V-D): the tuning
//! model generated at design time is handed to the RRL, which performs
//! Runtime Application Tuning — "dynamically adjusts the system
//! configuration during application runtime according to the generated
//! tuning model" — through the Score-P PCPs. This crate serves that model
//! at cluster scale:
//!
//! * [`repository`] — the [`TuningModelRepository`]: stores serialized
//!   tuning models keyed by application + workload fingerprint — each
//!   entry carrying a [`ModelProvenance`] version/origin record and the
//!   drift expectations — serves them with hit/miss statistics, optional
//!   LRU capacity bounding and application-level matching
//!   ([`MatchPolicy`]), and a calibration fallback (a best-known static
//!   configuration) when no model matches,
//! * [`shard`] — the concurrent [`SharedRepository`]: the same storage
//!   semantics striped across N `RwLock`-guarded shards (partitioned by
//!   application hash) with lock-free statistics, plus the
//!   [`CalibrationLatch`] that gates cold-workload admission in the
//!   parallel event loop,
//! * [`session`] — the event-driven [`RuntimeSession`]: one handle per
//!   job, driven by explicit `region_enter` / `region_exit` /
//!   `phase_complete` events through the scenario→configuration resolver
//!   and the node's frequency/thread switching; every transition returns
//!   `Result<_, `[`RuntimeError`]`>`,
//! * [`online`] — the online adaptation engine: on a repository miss the
//!   [`OnlineTuner`] calibrates in-situ (the job's early phase iterations
//!   explore the design-time search strategy's candidates against live
//!   region measurements) and publishes the converged model back
//!   ([`ModelSource::Online`]); on a hit the [`DriftDetector`] flags
//!   stale models and triggers scoped re-calibration,
//! * [`cluster`] — the [`ClusterScheduler`]: multiplexes many concurrent
//!   sessions across the nodes of a simulated cluster (round-robin or
//!   least-loaded placement), gates cold workloads behind a single
//!   online calibration when [`OnlineTuning`] is attached, and reports
//!   per-job and aggregate savings — either on one thread
//!   ([`ClusterScheduler::run`]) or across real worker threads over a
//!   [`SharedRepository`] ([`ClusterScheduler::run_parallel`]), with
//!   bit-identical per-job accounting either way,
//! * [`inject`] — deterministic fault injection: the [`FaultInjector`]
//!   seam both event loops, the online tuner and the simulated network
//!   honor (job aborts at a phase boundary, refused calibrations,
//!   injected drift shifts, message delay/drop/duplication/partition),
//!   so a scenario engine can drive the unhappy paths without forking
//!   the runtime,
//! * [`service`] — the long-lived cluster service on the `simkit`
//!   discrete-event kernel: [`ClusterScheduler::run_service`] drives a
//!   timestamped [`JobArrival`] trace in virtual time with per-node run
//!   queues, mid-run node join/drain/fail churn
//!   ([`FaultInjector::node_churn`]) and latency/queue-depth percentiles
//!   in the report ([`ServiceSummary`]),
//! * [`net`] — replicated serving: a seeded fault-injectable
//!   [`SimTransport`], a length-framed versioned wire format, per-peer
//!   handshake [`Session`](net::Session)s, and [`ReplicaSet`] — N
//!   replica repositories converged to bit-identical model maps by
//!   version-vector anti-entropy sync
//!   ([`ClusterScheduler::run_replicated`]),
//! * [`sacct`] — SLURM-style job accounting: the job-level Table VI
//!   record plus the per-region energy/time breakdown,
//! * [`savings`] — default-vs-tuned comparisons including the
//!   configuration-setting performance reduction and the combined
//!   DVFS/UFS/Score-P overhead decomposition of Section V-E,
//! * [`tmm`] — the Tuning Model Manager (file/env loading à la
//!   `SCOREP_RRL_TMM_PATH`),
//! * [`rat`], [`static_tuning`] — the pre-repository entry points, kept
//!   as thin deprecated shims.
//!
//! ```text
//! repository.publish(&advice);                   // design-time handoff
//! let served = repository.serve(&bench)?;        // hit, or fallback
//! let mut job = RuntimeSession::start("job-1", &bench, &node, served)?;
//! job.run_to_completion()?;                      // or event-by-event
//! println!("{}", job.finish()?.format_sacct());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod error;
pub mod inject;
pub mod net;
pub mod online;
pub mod rat;
pub mod repository;
pub mod sacct;
pub mod savings;
pub mod service;
pub mod session;
pub mod shard;
pub mod static_tuning;
pub mod tmm;

pub use cluster::{
    ClusterReport, ClusterScheduler, JobOutcome, JobRejection, OnlineSummary, OnlineTuning,
    Placement,
};
pub use error::RuntimeError;
pub use inject::{
    ChurnEvent, ChurnKind, FaultInjector, NoFaults, ReplicaChurnEvent, ReplicaChurnKind,
};
pub use net::{
    ConvergeCulprit, ConvergeReport, NetError, Replica, ReplicaConfig, ReplicaSet, SimTransport,
    Stamp, TransportStats, VersionVector,
};
pub use online::{
    ConvergedModel, DriftConfig, DriftDetector, DriftEvent, DriftPolicy, ModelPublication,
    OnlineConfig, OnlineOutcome, OnlineTuner,
};
pub use repository::{
    MatchPolicy, ModelKey, ModelProvenance, ModelSource, RepositoryHandle, RepositoryStats,
    ServedModel, TuningModelRepository,
};
pub use sacct::{JobAccounting, JobRecord, OnlineActivity, RegionAccounting, RegionColumns};
pub use savings::{compare_static_dynamic, BenchmarkComparison, ComparisonError, Savings};
pub use service::{
    GossipConfig, JobArrival, Percentiles, ReplicationSummary, ServiceConfig, ServiceSummary,
};
pub use session::{RegionExit, RuntimeSession};
pub use shard::{CalibrationLatch, CalibrationOutcome, LatchStatus, SharedRepository};
pub use tmm::TuningModelManager;

#[allow(deprecated)]
pub use rat::RrlHook;
#[allow(deprecated)]
pub use static_tuning::run_static;
