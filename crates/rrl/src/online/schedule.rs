//! The calibration schedule: how a cold job's phase iterations become an
//! exploration budget.
//!
//! Design time runs the search on the experiments engine; an online
//! calibration runs the *same* [`ExplorationPlan`](ptf::ExplorationPlan)
//! against live region measurements, one candidate configuration per
//! phase iteration:
//!
//! | stage | iterations | mirrors |
//! |-------|------------|---------|
//! | thread sweep | one per thread candidate | tuning step 1 |
//! | analysis | 1 (calibration frequencies, best threads) | PAPI counter rates + significant regions |
//! | phase search | one per phase candidate | strategy stage 1 |
//! | verification | one per *extra* verification config | strategy stage 2 |
//! | exploit | the rest | production serving |
//!
//! Verification configurations already measured during the phase search
//! are reused, so the verification stage only pays for the set
//! difference. Candidate order within the phase search is rotated by the
//! job seed — the deterministic, job-seeded explore schedule — which
//! never changes *what* converges on a stationary workload, only *when*
//! each candidate is measured.
//!
//! Convergence picks, per significant region (observed mean time above
//! the `readex-dyn-detect` threshold in the analysis iteration), the
//! verification configuration minimising the tuning objective on that
//! region's own measurements. Ties break on the configuration key, so the
//! result is independent of exploration order. On the energy objective
//! this selects exactly the configurations the design-time analysis
//! selects for the same strategy, pool and seed (the measurement bases
//! differ only by the uniform per-region instrumentation stretch, which
//! preserves per-region ordering); the *phase* configuration may sit a
//! grid step from the design-time one because the runtime can only
//! measure the phase as the sum of its regions, not as the aggregate
//! phase character.

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use ptf::{EnergyModel, ExplorationInputs, ExplorationPlan, SearchStrategy, TuningModel};
use simnode::{Node, SystemConfig};

use crate::error::RuntimeError;
use crate::online::{cfg_key as key, OnlineConfig};
use crate::session::RegionExit;

/// Stable per-config map key — see [`crate::online::cfg_key`].
type CfgKey = (u32, u32, u32);

/// SplitMix64 step for the job-seeded candidate rotation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Accumulated measurement of one region under one configuration.
#[derive(Debug, Clone, Copy, Default)]
struct Observation {
    energy_j: f64,
    duration_s: f64,
}

/// What a finished calibration hands back for publication.
#[derive(Debug, Clone)]
pub struct ConvergedModel {
    /// The converged tuning model.
    pub model: TuningModel,
    /// Per significant region: measured node energy per instance at the
    /// converged configuration — the drift expectations for future jobs.
    pub expected: Vec<(String, f64)>,
}

#[derive(Debug)]
enum Stage {
    Threads {
        idx: usize,
    },
    Analysis,
    Phase {
        idx: usize,
    },
    Verify {
        idx: usize,
    },
    Exploit,
    /// Exploration planning failed (budget exhausted or the strategy
    /// rejected the analysis inputs). Terminal: the job keeps running at
    /// the analysis configuration and nothing is published.
    Abandoned,
}

/// The per-job calibration state machine (see the module docs).
pub(crate) struct CalibrationSchedule<'a> {
    strategy: &'a dyn SearchStrategy,
    energy_model: Option<&'a EnergyModel>,
    cfg: OnlineConfig,
    seed: u64,
    stage: Stage,
    explored_iterations: u32,
    thread_candidates: Vec<u32>,
    /// `(threads, phase energy, phase duration)` per sweep point.
    thread_sweep: Vec<(u32, f64, f64)>,
    best_threads: u32,
    /// Per-region measurements from the analysis iteration.
    analysis: Vec<Observation>,
    plan: Option<ExplorationPlan>,
    phase_candidates: Vec<SystemConfig>,
    /// `(energy, duration)` totals per phase candidate.
    phase_totals: Vec<(f64, f64)>,
    phase_best: SystemConfig,
    verification: Vec<SystemConfig>,
    extras: Vec<SystemConfig>,
    /// Per-(region, config) accumulated measurements.
    observations: BTreeMap<(usize, CfgKey), Observation>,
    /// Running totals of the current iteration.
    iter_energy_j: f64,
    iter_duration_s: f64,
    converged: Option<ConvergedModel>,
}

impl<'a> CalibrationSchedule<'a> {
    /// Plan a calibration for `bench`. Fails fast when even the thread
    /// sweep, the analysis iteration and a single exploration iteration
    /// would not fit the job's phase loop.
    pub(crate) fn new(
        bench: &BenchmarkSpec,
        node: &Node,
        strategy: &'a dyn SearchStrategy,
        energy_model: Option<&'a EnergyModel>,
        cfg: OnlineConfig,
        seed: u64,
    ) -> Result<Self, RuntimeError> {
        let thread_candidates: Vec<u32> = if bench.model.tunable_threads() {
            let max = node.topology().max_threads();
            let mut t = cfg.thread_lower_bound;
            let mut out = Vec::new();
            while t <= max {
                out.push(t);
                t += cfg.thread_step.max(1);
            }
            if out.is_empty() {
                out.push(max);
            }
            out
        } else {
            vec![node.topology().max_threads()]
        };
        let needed = thread_candidates.len() as u32 + 2;
        if needed > bench.phase_iterations {
            return Err(RuntimeError::ExplorationBudget {
                application: bench.name.clone(),
                needed,
                available: bench.phase_iterations,
            });
        }
        let regions = bench.regions.len();
        Ok(Self {
            strategy,
            energy_model,
            cfg,
            seed,
            stage: Stage::Threads { idx: 0 },
            explored_iterations: 0,
            thread_candidates,
            thread_sweep: Vec::new(),
            best_threads: 0,
            analysis: vec![Observation::default(); regions],
            plan: None,
            phase_candidates: Vec::new(),
            phase_totals: Vec::new(),
            phase_best: SystemConfig::taurus_default(),
            verification: Vec::new(),
            extras: Vec::new(),
            observations: BTreeMap::new(),
            iter_energy_j: 0.0,
            iter_duration_s: 0.0,
            converged: None,
        })
    }

    /// Stage name for progress reporting.
    pub(crate) fn stage_name(&self) -> &'static str {
        match self.stage {
            Stage::Threads { .. } => "thread-sweep",
            Stage::Analysis => "analysis",
            Stage::Phase { .. } => "phase-search",
            Stage::Verify { .. } => "verification",
            Stage::Exploit => "exploit",
            Stage::Abandoned => "abandoned",
        }
    }

    /// Whether the schedule is still exploring.
    pub(crate) fn is_exploring(&self) -> bool {
        !matches!(self.stage, Stage::Exploit | Stage::Abandoned)
    }

    /// Iterations spent exploring so far.
    pub(crate) fn explored_iterations(&self) -> u32 {
        self.explored_iterations
    }

    /// The converged model, once the exploit stage is reached.
    pub(crate) fn converged(&self) -> Option<&ConvergedModel> {
        self.converged.as_ref()
    }

    /// The configuration region `idx` must execute under in the current
    /// iteration.
    pub(crate) fn config_for(&self, bench: &BenchmarkSpec, idx: usize) -> SystemConfig {
        match &self.stage {
            Stage::Threads { idx: t } => {
                SystemConfig::calibration().with_threads(self.thread_candidates[*t])
            }
            Stage::Analysis => SystemConfig::calibration().with_threads(self.best_threads),
            Stage::Phase { idx: c } => self.phase_candidates[*c],
            Stage::Verify { idx: c } => self.extras[*c],
            Stage::Exploit => {
                let model = &self
                    .converged
                    .as_ref()
                    .expect("exploit stage implies convergence")
                    .model;
                model.lookup(&bench.regions[idx].name)
            }
            // Planning failed: degrade to a static run at the analysis
            // configuration (a safe, node-supported operating point).
            Stage::Abandoned => SystemConfig::calibration().with_threads(self.best_threads),
        }
    }

    /// Account one region exit to the current iteration. Filtered regions
    /// did not run under the scheduled configuration and are skipped.
    pub(crate) fn record(&mut self, region_idx: usize, exit: &RegionExit) {
        if exit.filtered {
            return;
        }
        self.iter_energy_j += exit.node_energy_j;
        self.iter_duration_s += exit.duration_s;
        let under = match &self.stage {
            Stage::Analysis => {
                let obs = &mut self.analysis[region_idx];
                obs.energy_j += exit.node_energy_j;
                obs.duration_s += exit.duration_s;
                return;
            }
            Stage::Phase { idx } => self.phase_candidates[*idx],
            Stage::Verify { idx } => self.extras[*idx],
            Stage::Threads { .. } | Stage::Exploit | Stage::Abandoned => return,
        };
        let obs = self
            .observations
            .entry((region_idx, key(under)))
            .or_default();
        obs.energy_j += exit.node_energy_j;
        obs.duration_s += exit.duration_s;
    }

    /// Advance the stage machine at a phase-complete event.
    pub(crate) fn phase_completed(
        &mut self,
        bench: &BenchmarkSpec,
        node: &Node,
    ) -> Result<(), RuntimeError> {
        let (iter_e, iter_d) = (self.iter_energy_j, self.iter_duration_s);
        self.iter_energy_j = 0.0;
        self.iter_duration_s = 0.0;
        if self.is_exploring() {
            self.explored_iterations += 1;
        }
        self.stage = match std::mem::replace(&mut self.stage, Stage::Exploit) {
            Stage::Threads { mut idx } => {
                self.thread_sweep
                    .push((self.thread_candidates[idx], iter_e, iter_d));
                idx += 1;
                if idx == self.thread_candidates.len() {
                    let objective = self.cfg.objective;
                    self.best_threads = self
                        .thread_sweep
                        .iter()
                        .min_by(|a, b| {
                            objective
                                .score(a.1, a.2)
                                .total_cmp(&objective.score(b.1, b.2))
                        })
                        .expect("thread sweep is nonempty")
                        .0;
                    Stage::Analysis
                } else {
                    Stage::Threads { idx }
                }
            }
            // A planning failure must not corrupt the machine: the
            // schedule transitions to the terminal `Abandoned` stage, the
            // error surfaces once, and the session stays fully drivable
            // (panic-free) as a degraded static run.
            Stage::Analysis => match self.enter_phase_search(bench, node) {
                Ok(()) => Stage::Phase { idx: 0 },
                Err(e) => {
                    self.stage = Stage::Abandoned;
                    return Err(e);
                }
            },
            Stage::Phase { mut idx } => {
                self.phase_totals.push((iter_e, iter_d));
                idx += 1;
                if idx == self.phase_candidates.len() {
                    self.enter_verification(node);
                    if self.extras.is_empty() {
                        self.converge(bench);
                        Stage::Exploit
                    } else {
                        Stage::Verify { idx: 0 }
                    }
                } else {
                    Stage::Phase { idx }
                }
            }
            Stage::Verify { mut idx } => {
                idx += 1;
                if idx == self.extras.len() {
                    self.converge(bench);
                    Stage::Exploit
                } else {
                    Stage::Verify { idx }
                }
            }
            Stage::Exploit => Stage::Exploit,
            Stage::Abandoned => Stage::Abandoned,
        };
        Ok(())
    }

    /// Analysis iteration finished: measure the phase counter rates, ask
    /// the strategy for its exploration plan, and check the budget against
    /// the worst-case remaining exploration cost.
    fn enter_phase_search(
        &mut self,
        bench: &BenchmarkSpec,
        node: &Node,
    ) -> Result<(), RuntimeError> {
        let analysis_cfg = SystemConfig::calibration().with_threads(self.best_threads);
        let rates = ptf::phase_counter_rates(bench, node, analysis_cfg);
        let thread_candidates = [self.best_threads];
        let plan = self
            .strategy
            .exploration(&ExplorationInputs {
                model: self.energy_model,
                phase_rates: &rates,
                best_threads: self.best_threads,
                thread_candidates: &thread_candidates,
            })
            .map_err(RuntimeError::Planning)?;

        let mut candidates: Vec<SystemConfig> = plan
            .phase_candidates
            .iter()
            .copied()
            .filter(|c| node.supports(c))
            .collect();
        if candidates.is_empty() {
            return Err(RuntimeError::Planning(ptf::TuningError::EmptyCandidates {
                stage: "online phase exploration",
            }));
        }
        // Worst case: every verification configuration is new.
        let needed = self.explored_iterations
            + candidates.len() as u32
            + plan.max_extra_verification() as u32;
        if needed > bench.phase_iterations {
            return Err(RuntimeError::ExplorationBudget {
                application: bench.name.clone(),
                needed,
                available: bench.phase_iterations,
            });
        }
        // Job-seeded exploration order: rotate the candidate list. The
        // rotation is a pure reordering — the explored set, and therefore
        // the converged model on a stationary workload, is unchanged.
        let mut state = self.seed;
        let offset = (splitmix64(&mut state) % candidates.len() as u64) as usize;
        candidates.rotate_left(offset);
        self.plan = Some(plan);
        self.phase_candidates = candidates;
        Ok(())
    }

    /// Phase search finished: pick the phase best and derive the extra
    /// verification configurations that still need measuring.
    fn enter_verification(&mut self, node: &Node) {
        let objective = self.cfg.objective;
        self.phase_best = self
            .phase_candidates
            .iter()
            .zip(&self.phase_totals)
            .min_by(|(ca, (ea, da)), (cb, (eb, db))| {
                objective
                    .score(*ea, *da)
                    .total_cmp(&objective.score(*eb, *db))
                    .then_with(|| key(**ca).cmp(&key(**cb)))
            })
            .map(|(c, _)| *c)
            .expect("phase candidates are nonempty");
        let plan = self.plan.as_ref().expect("plan built before phase search");
        self.verification = plan
            .verification_for(self.phase_best)
            .into_iter()
            .filter(|c| node.supports(c))
            .collect();
        let measured: Vec<CfgKey> = self.phase_candidates.iter().map(|c| key(*c)).collect();
        self.extras = self
            .verification
            .iter()
            .copied()
            .filter(|c| !measured.contains(&key(*c)))
            .collect();
    }

    /// All verification configurations measured: converge each
    /// significant region to its best configuration and build the model.
    fn converge(&mut self, bench: &BenchmarkSpec) {
        let objective = self.cfg.objective;
        // Significant regions in observed-weight order, heaviest first —
        // the same ordering `readex-dyn-detect` hands the design-time
        // session.
        let mut significant: Vec<usize> = (0..bench.regions.len())
            .filter(|&i| self.analysis[i].duration_s > self.cfg.significance_threshold_s)
            .collect();
        significant.sort_by(|&a, &b| {
            self.analysis[b]
                .duration_s
                .total_cmp(&self.analysis[a].duration_s)
        });

        let mut pairs = Vec::with_capacity(significant.len());
        let mut expected = Vec::with_capacity(significant.len());
        for &i in &significant {
            let best = self
                .verification
                .iter()
                .filter_map(|c| {
                    self.observations
                        .get(&(i, key(*c)))
                        .map(|obs| (*c, obs.energy_j, obs.duration_s))
                })
                .min_by(|(ca, ea, da), (cb, eb, db)| {
                    objective
                        .score(*ea, *da)
                        .total_cmp(&objective.score(*eb, *db))
                        .then_with(|| key(*ca).cmp(&key(*cb)))
                });
            if let Some((cfg, energy, _)) = best {
                pairs.push((bench.regions[i].name.clone(), cfg));
                expected.push((bench.regions[i].name.clone(), energy));
            }
        }
        let model = TuningModel::new(&bench.name, &pairs, self.phase_best);
        self.converged = Some(ConvergedModel { model, expected });
    }
}
