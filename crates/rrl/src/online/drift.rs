//! Staleness detection for served tuning models.
//!
//! A stored tuning model encodes *expectations*: the per-region node
//! energy the calibration measured at each region's chosen configuration
//! (kept in the repository's
//! [`ModelProvenance`](crate::ModelProvenance)). When the workload
//! evolves — a new input deck, a data-dependent hot loop, a model served
//! at application level for a changed fingerprint — those expectations go
//! stale, and the served configurations may no longer be optimal. The
//! [`DriftDetector`] watches the live per-region measurements flowing
//! through a [`RuntimeSession`](crate::RuntimeSession) and maintains an
//! EWMA of the observed/expected energy ratio per region; once the
//! smoothed ratio leaves the configured band after a warm-up, the region
//! is flagged with a [`DriftEvent`] (latched: one event per region per
//! job) and the [`OnlineTuner`](crate::OnlineTuner) can re-calibrate the
//! region in place.
//!
//! Thresholds default to 15 %: comfortably above the simulated cluster's
//! node-to-node power variability (±2.5 % σ) and the ≤ 4 % residual
//! instrumentation stretch, and comfortably below any workload shift
//! worth re-tuning for.

use std::collections::BTreeMap;

/// EWMA parameters for drift detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]` — the weight of the newest
    /// observation.
    pub alpha: f64,
    /// Relative deviation of the smoothed observed/expected ratio from
    /// 1.0 that flags drift.
    pub threshold: f64,
    /// Observations of a region before its ratio is trusted (no event can
    /// fire earlier).
    pub warmup: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            alpha: 0.35,
            threshold: 0.15,
            warmup: 3,
        }
    }
}

/// What the [`OnlineTuner`](crate::OnlineTuner) does when drift fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftPolicy {
    /// Record the event and keep serving the stored model.
    Ignore,
    /// Re-explore the flagged region's configuration neighbourhood over
    /// its next visits and converge it to a fresh optimum (refused —
    /// counted, not fatal — when too few visits remain).
    #[default]
    Recalibrate,
}

/// One region whose observed energy drifted away from the served model's
/// expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// The drifted region.
    pub region: String,
    /// The smoothed observed/expected energy ratio at fire time.
    pub ratio: f64,
    /// Phase iteration in which the detector fired.
    pub at_iteration: u32,
}

#[derive(Debug)]
struct RegionState {
    expected_j: f64,
    ewma: f64,
    observations: u32,
    latched: bool,
}

/// Per-region EWMA of observed vs. expected energy; fires a latched
/// [`DriftEvent`] when a region's smoothed ratio leaves the threshold
/// band.
#[derive(Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    regions: BTreeMap<String, RegionState>,
    events: Vec<DriftEvent>,
}

impl DriftDetector {
    /// A detector over the given `(region, expected energy)` pairs.
    /// Regions without an expectation (and expectations that are not
    /// finite and positive) are never monitored.
    pub fn new(cfg: DriftConfig, expected: &[(String, f64)]) -> Self {
        let regions = expected
            .iter()
            .filter(|(_, e)| e.is_finite() && *e > 0.0)
            .map(|(name, e)| {
                (
                    name.clone(),
                    RegionState {
                        expected_j: *e,
                        ewma: 1.0,
                        observations: 0,
                        latched: false,
                    },
                )
            })
            .collect();
        Self {
            cfg,
            regions,
            events: Vec::new(),
        }
    }

    /// Number of monitored regions.
    pub fn monitored(&self) -> usize {
        self.regions.len()
    }

    /// The expectation a region is compared against, when monitored.
    pub fn expected(&self, region: &str) -> Option<f64> {
        self.regions.get(region).map(|s| s.expected_j)
    }

    /// The current smoothed observed/expected ratio of a region.
    pub fn ratio(&self, region: &str) -> Option<f64> {
        self.regions.get(region).map(|s| s.ewma)
    }

    /// Whether a region has already fired (events are latched).
    pub fn is_latched(&self, region: &str) -> bool {
        self.regions.get(region).is_some_and(|s| s.latched)
    }

    /// Feed one measured region instance. Returns the drift event when
    /// this observation pushes the region's smoothed ratio out of the
    /// band for the first time.
    pub fn observe(&mut self, region: &str, observed_j: f64, iteration: u32) -> Option<DriftEvent> {
        let state = self.regions.get_mut(region)?;
        let ratio = observed_j / state.expected_j;
        state.ewma = if state.observations == 0 {
            ratio
        } else {
            self.cfg.alpha * ratio + (1.0 - self.cfg.alpha) * state.ewma
        };
        state.observations += 1;
        if state.latched
            || state.observations < self.cfg.warmup
            || (state.ewma - 1.0).abs() <= self.cfg.threshold
        {
            return None;
        }
        state.latched = true;
        let event = DriftEvent {
            region: region.to_string(),
            ratio: state.ewma,
            at_iteration: iteration,
        };
        self.events.push(event.clone());
        Some(event)
    }

    /// Replace a region's expectation (after a re-calibration converged)
    /// and reset its EWMA state so the region is monitored afresh.
    pub fn rebase(&mut self, region: &str, expected_j: f64) {
        if let Some(state) = self.regions.get_mut(region) {
            state.expected_j = expected_j;
            state.ewma = 1.0;
            state.observations = 0;
            state.latched = false;
        }
    }

    /// All events fired so far, in fire order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: f64) -> DriftDetector {
        DriftDetector::new(
            DriftConfig {
                alpha: 0.5,
                threshold,
                warmup: 2,
            },
            &[("hot".into(), 100.0), ("cold".into(), 50.0)],
        )
    }

    #[test]
    fn stationary_observations_never_fire() {
        let mut d = detector(0.15);
        for i in 0..20 {
            assert!(d.observe("hot", 101.0, i).is_none());
            assert!(d.observe("cold", 49.5, i).is_none());
        }
        assert!(d.events().is_empty());
        assert!((d.ratio("hot").unwrap() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn shifted_region_fires_once_after_warmup() {
        let mut d = detector(0.15);
        assert!(d.observe("hot", 140.0, 0).is_none(), "warm-up");
        let fired = d.observe("hot", 140.0, 1);
        let event = fired.expect("EWMA of 1.4 ratio is out of band");
        assert_eq!(event.region, "hot");
        assert!(event.ratio > 1.15);
        assert_eq!(event.at_iteration, 1);
        // Latched: further drifted observations do not re-fire.
        assert!(d.observe("hot", 150.0, 2).is_none());
        assert!(d.is_latched("hot"));
        assert_eq!(d.events().len(), 1);
        // The other region is unaffected.
        assert!(!d.is_latched("cold"));
    }

    #[test]
    fn unmonitored_regions_are_ignored() {
        let mut d = detector(0.15);
        assert!(d.observe("unknown", 9999.0, 0).is_none());
        assert_eq!(d.monitored(), 2);
        assert_eq!(d.expected("unknown"), None);
    }

    #[test]
    fn rebase_resets_and_rearms() {
        let mut d = detector(0.15);
        d.observe("hot", 140.0, 0);
        d.observe("hot", 140.0, 1);
        assert!(d.is_latched("hot"));
        d.rebase("hot", 140.0);
        assert!(!d.is_latched("hot"));
        assert_eq!(d.expected("hot"), Some(140.0));
        for i in 2..10 {
            assert!(
                d.observe("hot", 140.0, i).is_none(),
                "rebased to the new level"
            );
        }
        // A second genuine shift fires again — immediately, because the
        // region is past its warm-up and the rebase only reset the level.
        let fired = d.observe("hot", 200.0, 10);
        assert!(fired.is_some(), "re-armed region fires on a second shift");
        assert_eq!(fired.unwrap().at_iteration, 10);
    }

    #[test]
    fn nonpositive_expectations_are_not_monitored() {
        let d = DriftDetector::new(
            DriftConfig::default(),
            &[
                ("a".into(), 0.0),
                ("b".into(), f64::NAN),
                ("c".into(), 10.0),
            ],
        );
        assert_eq!(d.monitored(), 1);
    }
}
