//! The online tuner: a drop-in event-protocol wrapper around
//! [`RuntimeSession`] that either *calibrates* (repository miss: explore,
//! converge, publish) or *monitors* (repository hit: serve the stored
//! model, watch for drift, re-calibrate drifted regions in place).

use std::collections::BTreeMap;

use kernels::BenchmarkSpec;
use ptf::{EnergyModel, SearchSpace, SearchStrategy, TuningModel};
use simnode::{Node, SystemConfig};

use crate::error::RuntimeError;
use crate::inject::FaultInjector;
use crate::online::drift::{DriftDetector, DriftEvent, DriftPolicy};
use crate::online::schedule::CalibrationSchedule;
use crate::online::{cfg_key, OnlineConfig};
use crate::repository::{ModelProvenance, ModelSource, ServedModel};
use crate::sacct::{JobAccounting, OnlineActivity};
use crate::session::{RegionExit, RuntimeSession};

/// A converged model ready for
/// [`TuningModelRepository::publish_online`](crate::TuningModelRepository::publish_online).
#[derive(Debug, Clone)]
pub struct ModelPublication {
    /// The model to store.
    pub model: TuningModel,
    /// Per-region drift expectations measured at the converged
    /// configurations.
    pub expected: Vec<(String, f64)>,
}

/// Everything an online job produced: the ordinary accounting plus the
/// adaptation results.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The job's `sacct`-style accounting
    /// ([`JobAccounting::online`](crate::JobAccounting) is populated).
    pub accounting: JobAccounting,
    /// The model to publish back to the repository: the calibration's
    /// converged model, or the served model with re-calibrated regions
    /// patched in. `None` when nothing new was learned.
    pub publication: Option<ModelPublication>,
    /// Drift events fired during the run, in fire order.
    pub drift_events: Vec<DriftEvent>,
    /// Drift-triggered re-calibrations that were refused for lack of
    /// remaining budget.
    pub refusals: u32,
}

/// A region's in-place adaptation state in monitor mode.
enum RegionAdapt {
    /// Scoped re-exploration in progress: the region's next visits run
    /// the candidate neighbourhood in order.
    Recalibrating {
        candidates: Vec<SystemConfig>,
        idx: usize,
        observed: Vec<(SystemConfig, f64, f64)>,
    },
    /// Re-exploration done: the region runs (and is published at) the new
    /// configuration.
    Converged {
        config: SystemConfig,
        expected_j: f64,
    },
}

struct MonitorState {
    detector: Option<DriftDetector>,
    provenance: Option<ModelProvenance>,
    adapt: BTreeMap<String, RegionAdapt>,
    refusals: u32,
    recalibrated: u32,
}

enum Mode<'a> {
    Calibrate(Box<CalibrationSchedule<'a>>),
    Monitor(Box<MonitorState>),
}

/// In-situ tuning for jobs the repository cannot (fully) serve.
///
/// The tuner exposes the exact event protocol of [`RuntimeSession`]
/// (`region_enter` / `region_exit` / `phase_complete` / `finish`), so a
/// driver — the [`ClusterScheduler`](crate::ClusterScheduler) or a hand
///-written loop — treats adaptive jobs like any other. Accounting flows
/// through the wrapped session unchanged and stays deterministic and
/// interleaving-independent: the exploration schedule is a pure function
/// of the job identity and its own observations, so two interleaved
/// online jobs calibrate bit-identically to solo runs.
pub struct OnlineTuner<'a> {
    session: RuntimeSession<'a>,
    mode: Mode<'a>,
    config: OnlineConfig,
    faults: Option<&'a dyn FaultInjector>,
}

impl<'a> OnlineTuner<'a> {
    /// Calibration mode — the repository-miss path. The job launches at
    /// [`OnlineConfig::launch`], spends its early phase iterations
    /// exploring the strategy's candidate configurations against live
    /// region measurements, converges, and exploits the converged model
    /// for the rest of the run. [`OnlineTuner::finish`] then carries the
    /// model for publication.
    ///
    /// `energy_model` is consulted by model-predicting strategies
    /// (`ModelBasedNeighbourhood`); pool strategies ignore it.
    pub fn calibrate(
        job: impl Into<String>,
        bench: &'a BenchmarkSpec,
        node: &'a Node,
        strategy: &'a dyn SearchStrategy,
        energy_model: Option<&'a EnergyModel>,
        config: OnlineConfig,
    ) -> Result<Self, RuntimeError> {
        let served = ServedModel {
            model: TuningModel::new(&bench.name, &[], config.launch),
            source: ModelSource::Online,
            provenance: None,
        };
        let session = RuntimeSession::start_from(job, bench, node, served, config.launch)?;
        let schedule =
            CalibrationSchedule::new(bench, node, strategy, energy_model, config, session.seed())?;
        Ok(Self {
            session,
            mode: Mode::Calibrate(Box::new(schedule)),
            config,
            faults: None,
        })
    }

    /// Monitor mode — the repository-hit path. The served model resolves
    /// scenarios as in a plain session; when the serve carried drift
    /// expectations, a [`DriftDetector`] compares them against the live
    /// per-region measurements and — under
    /// [`DriftPolicy::Recalibrate`] — a fired region re-explores its
    /// configuration neighbourhood over its next visits and converges to
    /// a fresh optimum.
    pub fn monitor(
        job: impl Into<String>,
        bench: &'a BenchmarkSpec,
        node: &'a Node,
        served: ServedModel,
        config: OnlineConfig,
    ) -> Result<Self, RuntimeError> {
        let provenance = served.provenance.clone();
        let detector = provenance
            .as_ref()
            .filter(|p| !p.expected.is_empty())
            .map(|p| DriftDetector::new(config.drift, &p.expected));
        let session = RuntimeSession::start(job, bench, node, served)?;
        Ok(Self {
            session,
            mode: Mode::Monitor(Box::new(MonitorState {
                detector,
                provenance,
                adapt: BTreeMap::new(),
                refusals: 0,
                recalibrated: 0,
            })),
            config,
            faults: None,
        })
    }

    /// Attach a deterministic [`FaultInjector`] (builder form). The only
    /// hook the tuner itself consults is
    /// [`drift_scale`](FaultInjector::drift_scale) — the factor applied
    /// to the region energy a *monitoring* session feeds its drift
    /// detector, simulating a mid-run workload shift. Accounting is
    /// unaffected; abort/calibration faults are the scheduler's to honor.
    #[must_use]
    pub fn with_faults(mut self, faults: &'a dyn FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The job name this tuner accounts under.
    pub fn job(&self) -> &str {
        self.session.job()
    }

    /// The wrapped session (read-only).
    pub fn session(&self) -> &RuntimeSession<'a> {
        &self.session
    }

    /// Phase iteration the next region event executes in.
    pub fn phase_iteration(&self) -> u32 {
        self.session.phase_iteration()
    }

    /// Current stage: one of `thread-sweep`, `analysis`, `phase-search`,
    /// `verification`, `exploit` (calibration) or `monitor`.
    pub fn stage(&self) -> &'static str {
        match &self.mode {
            Mode::Calibrate(schedule) => schedule.stage_name(),
            Mode::Monitor(_) => "monitor",
        }
    }

    /// Whether the tuner is still spending iterations on exploration.
    pub fn is_exploring(&self) -> bool {
        match &self.mode {
            Mode::Calibrate(schedule) => schedule.is_exploring(),
            Mode::Monitor(state) => state
                .adapt
                .values()
                .any(|a| matches!(a, RegionAdapt::Recalibrating { .. })),
        }
    }

    /// The calibration's converged model, once the exploit stage is
    /// reached (`None` in monitor mode).
    pub fn converged_model(&self) -> Option<&TuningModel> {
        match &self.mode {
            Mode::Calibrate(schedule) => schedule.converged().map(|c| &c.model),
            Mode::Monitor(_) => None,
        }
    }

    /// Drift events fired so far.
    pub fn drift_events(&self) -> &[DriftEvent] {
        match &self.mode {
            Mode::Monitor(state) => state.detector.as_ref().map(|d| d.events()).unwrap_or(&[]),
            Mode::Calibrate(_) => &[],
        }
    }

    /// Region-enter event: like [`RuntimeSession::region_enter`], except
    /// the applied configuration is the tuner's — an exploration
    /// candidate, a re-calibration candidate, a converged assignment, or
    /// the served model's lookup.
    pub fn region_enter(&mut self, region: &str) -> Result<SystemConfig, RuntimeError> {
        match &self.mode {
            Mode::Calibrate(schedule) => {
                let bench = self.session.bench();
                let Some(idx) = bench.regions.iter().position(|r| r.name == region) else {
                    return Err(RuntimeError::UnknownRegion {
                        application: bench.name.clone(),
                        region: region.to_string(),
                    });
                };
                let cfg = schedule.config_for(bench, idx);
                self.session.region_enter_at(region, cfg)
            }
            Mode::Monitor(state) => match state.adapt.get(region) {
                Some(RegionAdapt::Recalibrating {
                    candidates, idx, ..
                }) => {
                    let cfg = candidates[*idx];
                    self.session.region_enter_at(region, cfg)
                }
                Some(RegionAdapt::Converged { config, .. }) => {
                    self.session.region_enter_at(region, *config)
                }
                None => self.session.region_enter(region),
            },
        }
    }

    /// Region-exit event: execute and account through the session, then
    /// feed the measurement to the calibration schedule or the drift
    /// detector.
    pub fn region_exit(&mut self, region: &str) -> Result<RegionExit, RuntimeError> {
        let exit = self.session.region_exit(region)?;
        let iteration = self.session.phase_iteration();
        let bench = self.session.bench();
        match &mut self.mode {
            Mode::Calibrate(schedule) => {
                let idx = bench
                    .regions
                    .iter()
                    .position(|r| r.name == region)
                    .expect("region resolved at enter");
                schedule.record(idx, &exit);
            }
            Mode::Monitor(state) => {
                // An injected drift shift scales only the energy the
                // detector sees — the job's own ledger stays truthful.
                let drift_energy_j = exit.node_energy_j
                    * self.faults.map_or(1.0, |f| {
                        f.drift_scale(self.session.job(), region, iteration)
                    });
                state.observe(
                    region,
                    &exit,
                    drift_energy_j,
                    iteration,
                    bench,
                    self.session.node(),
                    self.session.model(),
                    &self.config,
                );
            }
        }
        Ok(exit)
    }

    /// Phase-complete event: advances the session's phase loop and the
    /// calibration stage machine. Calibration planning failures (budget
    /// exhaustion, strategy errors) surface here, at the analysis → phase
    /// -search transition.
    pub fn phase_complete(&mut self) -> Result<u32, RuntimeError> {
        let iter = self.session.phase_complete()?;
        if let Mode::Calibrate(schedule) = &mut self.mode {
            let bench = self.session.bench();
            let node = self.session.node();
            schedule.phase_completed(bench, node)?;
        }
        Ok(iter)
    }

    /// Drive the remaining phase iterations through the event protocol.
    pub fn run_to_completion(&mut self) -> Result<(), RuntimeError> {
        let bench = self.session.bench();
        while self.session.phase_iteration() < bench.phase_iterations {
            for region in &bench.regions {
                self.region_enter(&region.name)?;
                self.region_exit(&region.name)?;
            }
            self.phase_complete()?;
        }
        Ok(())
    }

    /// Explicitly request a scoped re-calibration of one region (what the
    /// drift policy does automatically). Errors with
    /// [`RuntimeError::RecalibrationRefused`] when the job has too few
    /// remaining visits of the region to measure its neighbourhood, and
    /// when the session is a calibration (it is already exploring).
    /// Returns the number of candidate configurations the region will
    /// re-explore (0 when a re-calibration is already in flight or done).
    pub fn recalibrate_region(&mut self, region: &str) -> Result<usize, RuntimeError> {
        let bench = self.session.bench();
        if bench.region(region).is_none() {
            return Err(RuntimeError::UnknownRegion {
                application: bench.name.clone(),
                region: region.to_string(),
            });
        }
        let iteration = self.session.phase_iteration();
        match &mut self.mode {
            Mode::Calibrate(_) => Err(RuntimeError::RecalibrationRefused {
                application: bench.name.clone(),
                region: region.to_string(),
                needed: 0,
                remaining: 0,
            }),
            Mode::Monitor(state) => {
                if state.adapt.contains_key(region) {
                    return Ok(0);
                }
                let current = self.session.model().lookup(region);
                state.begin_recalibration(
                    region,
                    current,
                    iteration,
                    bench,
                    self.session.node(),
                    &self.config,
                )
            }
        }
    }

    /// Finish the job: the session's accounting (with
    /// [`OnlineActivity`] attached) plus whatever the tuner learned — the
    /// calibration's converged model, or the served model with
    /// re-calibrated regions patched in.
    pub fn finish(self) -> Result<OnlineOutcome, RuntimeError> {
        let (activity, publication, drift_events, refusals) = match self.mode {
            Mode::Calibrate(schedule) => {
                let publication = schedule.converged().map(|c| ModelPublication {
                    model: c.model.clone(),
                    expected: c.expected.clone(),
                });
                (
                    OnlineActivity {
                        explored_iterations: schedule.explored_iterations(),
                        drift_events: 0,
                        recalibrated_regions: 0,
                        publishable: publication.is_some(),
                    },
                    publication,
                    Vec::new(),
                    0,
                )
            }
            Mode::Monitor(state) => {
                let drift_events: Vec<DriftEvent> = state
                    .detector
                    .as_ref()
                    .map(|d| d.events().to_vec())
                    .unwrap_or_default();
                let publication =
                    (state.recalibrated > 0).then(|| state.republication(self.session.model()));
                (
                    OnlineActivity {
                        explored_iterations: 0,
                        drift_events: drift_events.len() as u32,
                        recalibrated_regions: state.recalibrated,
                        publishable: publication.is_some(),
                    },
                    publication,
                    drift_events,
                    state.refusals,
                )
            }
        };
        let mut accounting = self.session.finish()?;
        accounting.online = Some(activity);
        Ok(OnlineOutcome {
            accounting,
            publication,
            drift_events,
            refusals,
        })
    }
}

impl MonitorState {
    /// Feed one region measurement: advance an in-flight re-calibration,
    /// or run drift detection and possibly start one. `drift_energy_j` is
    /// the energy the detector observes — the measured value, optionally
    /// scaled by an injected drift shift; re-calibration measurements
    /// always use the true `exit` values.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        &mut self,
        region: &str,
        exit: &RegionExit,
        drift_energy_j: f64,
        iteration: u32,
        bench: &BenchmarkSpec,
        node: &Node,
        model: &TuningModel,
        config: &OnlineConfig,
    ) {
        if exit.filtered {
            return;
        }
        if let Some(RegionAdapt::Recalibrating {
            candidates,
            idx,
            observed,
        }) = self.adapt.get_mut(region)
        {
            observed.push((candidates[*idx], exit.node_energy_j, exit.duration_s));
            *idx += 1;
            if *idx == candidates.len() {
                let objective = config.objective;
                let (cfg, energy, _) = observed
                    .iter()
                    .min_by(|(ca, ea, da), (cb, eb, db)| {
                        objective
                            .score(*ea, *da)
                            .total_cmp(&objective.score(*eb, *db))
                            .then_with(|| cfg_key(*ca).cmp(&cfg_key(*cb)))
                    })
                    .copied()
                    .expect("recalibration observed at least one candidate");
                self.adapt.insert(
                    region.to_string(),
                    RegionAdapt::Converged {
                        config: cfg,
                        expected_j: energy,
                    },
                );
                self.recalibrated += 1;
                if let Some(detector) = &mut self.detector {
                    detector.rebase(region, energy);
                }
            }
            return;
        }
        // Post-recalibration observations keep flowing into the (rebased)
        // detector, so a second genuine shift can fire again.
        let fired = self
            .detector
            .as_mut()
            .and_then(|d| d.observe(region, drift_energy_j, iteration));
        if fired.is_some() && config.drift_policy == DriftPolicy::Recalibrate {
            let current = match self.adapt.get(region) {
                Some(RegionAdapt::Converged { config, .. }) => *config,
                _ => model.lookup(region),
            };
            if self
                .begin_recalibration(region, current, iteration, bench, node, config)
                .is_err()
            {
                self.refusals += 1;
            }
        }
    }

    /// Start a scoped re-exploration of `region` around `current`, if the
    /// job's remaining iterations can fit it.
    fn begin_recalibration(
        &mut self,
        region: &str,
        current: SystemConfig,
        iteration: u32,
        bench: &BenchmarkSpec,
        node: &Node,
        config: &OnlineConfig,
    ) -> Result<usize, RuntimeError> {
        let candidates: Vec<SystemConfig> =
            SearchSpace::neighbourhood(current, config.recalibration_radius, vec![current.threads])
                .configs()
                .into_iter()
                .filter(|c| node.supports(c))
                .collect();
        let needed = candidates.len();
        // The region's remaining visits after the current iteration: one
        // per remaining full phase iteration.
        let remaining = bench.phase_iterations.saturating_sub(iteration + 1) as usize;
        if candidates.is_empty() || remaining < needed {
            return Err(RuntimeError::RecalibrationRefused {
                application: bench.name.clone(),
                region: region.to_string(),
                needed: needed as u32,
                remaining: remaining as u32,
            });
        }
        self.adapt.insert(
            region.to_string(),
            RegionAdapt::Recalibrating {
                candidates,
                idx: 0,
                observed: Vec::new(),
            },
        );
        Ok(needed)
    }

    /// The served model with converged re-calibrations patched in, plus
    /// the updated drift expectations.
    fn republication(&self, model: &TuningModel) -> ModelPublication {
        let mut pairs: Vec<(String, SystemConfig)> = Vec::new();
        for scenario in &model.scenarios {
            for region in &scenario.regions {
                let cfg = match self.adapt.get(region) {
                    Some(RegionAdapt::Converged { config, .. }) => *config,
                    _ => scenario.config,
                };
                pairs.push((region.clone(), cfg));
            }
        }
        let mut expected: Vec<(String, f64)> = self
            .provenance
            .as_ref()
            .map(|p| p.expected.clone())
            .unwrap_or_default();
        for (region, adapt) in &self.adapt {
            if let RegionAdapt::Converged { expected_j, .. } = adapt {
                match expected.iter_mut().find(|(r, _)| r == region) {
                    Some(entry) => entry.1 = *expected_j,
                    None => expected.push((region.clone(), *expected_j)),
                }
            }
        }
        ModelPublication {
            model: TuningModel::new(&model.application, &pairs, model.phase_config),
            expected,
        }
    }
}
