//! SLURM-style job accounting.
//!
//! "To measure job energy and time, we use the SLURM tool `sacct` which
//! allows users to query post-mortem job data … For measuring CPU energy
//! we utilize a lightweight runtime tool called `measure-rapl`"
//! (Section V-D). A [`JobRecord`] carries exactly those three job-level
//! values; a [`JobAccounting`] adds what `sacct` alone cannot see — the
//! per-region energy/time breakdown the RRL's region events make
//! possible, plus switch and instrumentation-overhead totals.

use serde::{Deserialize, Serialize};

use scorep_lite::AppRunReport;

use crate::repository::ModelSource;

/// Post-mortem job data for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job (node) energy, joules — `sacct --format=ConsumedEnergy`.
    pub job_energy_j: f64,
    /// CPU (package) energy, joules — `measure-rapl`.
    pub cpu_energy_j: f64,
    /// Elapsed wall time, seconds — `sacct --format=Elapsed`.
    pub elapsed_s: f64,
}

impl JobRecord {
    /// Extract the accounting record from an application run.
    pub fn from_run(report: &AppRunReport) -> Self {
        Self {
            job_energy_j: report.job_energy_j,
            cpu_energy_j: report.cpu_energy_j,
            elapsed_s: report.wall_time_s,
        }
    }

    /// Average several runs (the paper averages five).
    pub fn mean(records: &[JobRecord]) -> JobRecord {
        assert!(!records.is_empty(), "mean of zero records");
        let n = records.len() as f64;
        JobRecord {
            job_energy_j: records.iter().map(|r| r.job_energy_j).sum::<f64>() / n,
            cpu_energy_j: records.iter().map(|r| r.cpu_energy_j).sum::<f64>() / n,
            elapsed_s: records.iter().map(|r| r.elapsed_s).sum::<f64>() / n,
        }
    }

    /// `sacct`-style formatted line.
    pub fn format_sacct(&self) -> String {
        format!(
            "ConsumedEnergy={:.0}J CpuEnergy={:.0}J Elapsed={:.2}s",
            self.job_energy_j, self.cpu_energy_j, self.elapsed_s
        )
    }
}

/// Accounting for one region across a whole job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionAccounting {
    /// Region name.
    pub region: String,
    /// Instances executed.
    pub visits: u64,
    /// Total wall time charged (including residual instrumentation
    /// overhead), seconds.
    pub time_s: f64,
    /// Total node energy charged, joules.
    pub node_energy_j: f64,
    /// Total CPU (RAPL) energy charged, joules.
    pub cpu_energy_j: f64,
}

/// What the online adaptation engine did during a job, recorded alongside
/// the `sacct` data so post-mortem queries can tell a calibration run from
/// a plain serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineActivity {
    /// Phase iterations spent exploring candidate configurations (thread
    /// sweep + analysis + phase search + verification).
    pub explored_iterations: u32,
    /// Drift events the detector fired during the run.
    pub drift_events: u32,
    /// Regions the session re-calibrated after a drift event.
    pub recalibrated_regions: u32,
    /// Whether the session converged a tuning model worth publishing back
    /// to the repository.
    pub publishable: bool,
}

/// Full post-mortem accounting for one job: the Table VI job-level record
/// plus the per-region breakdown and the runtime-tuning counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAccounting {
    /// Job name.
    pub job: String,
    /// Node the job executed on.
    pub node_id: u32,
    /// The three job-level quantities of Table VI.
    pub record: JobRecord,
    /// Per-region energy/time breakdown, in first-execution order.
    pub regions: Vec<RegionAccounting>,
    /// Configuration switches performed.
    pub switches: u64,
    /// Total DVFS/UFS/OpenMP transition latency charged, seconds.
    pub switch_time_s: f64,
    /// Total residual instrumentation overhead charged, seconds.
    pub instr_overhead_s: f64,
    /// Scenario lookups the runtime performed.
    pub scenario_lookups: u64,
    /// Whether the job ran a stored tuning model or the calibration
    /// fallback.
    pub source: ModelSource,
    /// Online-adaptation activity, when the job ran under the
    /// [`OnlineTuner`](crate::OnlineTuner) (`None` for plain sessions).
    pub online: Option<OnlineActivity>,
}

impl JobAccounting {
    /// Look up one region's accounting entry.
    pub fn region(&self, name: &str) -> Option<&RegionAccounting> {
        self.regions.iter().find(|r| r.region == name)
    }

    /// Sum of the per-region wall times, seconds. Together with
    /// [`Self::switch_time_s`] this reconstructs the job's elapsed time.
    pub fn regions_time_s(&self) -> f64 {
        self.regions.iter().map(|r| r.time_s).sum()
    }

    /// Sum of the per-region node energies, joules (the exact trace the
    /// HDEEM-measured [`JobRecord::job_energy_j`] samples).
    pub fn regions_node_energy_j(&self) -> f64 {
        self.regions.iter().map(|r| r.node_energy_j).sum()
    }

    /// Sum of the per-region CPU energies, joules.
    pub fn regions_cpu_energy_j(&self) -> f64 {
        self.regions.iter().map(|r| r.cpu_energy_j).sum()
    }

    /// `sacct`-style multi-line report: the job line followed by one line
    /// per region with its share of the job energy.
    pub fn format_sacct(&self) -> String {
        let mut out = format!(
            "JobName={} NodeId={} {} Switches={} Source={:?}",
            self.job,
            self.node_id,
            self.record.format_sacct(),
            self.switches,
            self.source,
        );
        if let Some(online) = &self.online {
            out.push_str(&format!(
                " Online=[explored={} drift={} recalibrated={}]",
                online.explored_iterations, online.drift_events, online.recalibrated_regions,
            ));
        }
        out.push('\n');
        let total_j = self.regions_node_energy_j().max(f64::MIN_POSITIVE);
        for r in &self.regions {
            out.push_str(&format!(
                "  {:<34} Visits={:<5} Time={:.3}s Energy={:.0}J CpuEnergy={:.0}J ({:.1}%)\n",
                r.region,
                r.visits,
                r.time_s,
                r.node_energy_j,
                r.cpu_energy_j,
                100.0 * r.node_energy_j / total_j,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_records() {
        let a = JobRecord {
            job_energy_j: 100.0,
            cpu_energy_j: 60.0,
            elapsed_s: 10.0,
        };
        let b = JobRecord {
            job_energy_j: 200.0,
            cpu_energy_j: 80.0,
            elapsed_s: 20.0,
        };
        let m = JobRecord::mean(&[a, b]);
        assert_eq!(m.job_energy_j, 150.0);
        assert_eq!(m.cpu_energy_j, 70.0);
        assert_eq!(m.elapsed_s, 15.0);
    }

    #[test]
    fn formatting() {
        let r = JobRecord {
            job_energy_j: 1234.5,
            cpu_energy_j: 678.9,
            elapsed_s: 42.123,
        };
        let s = r.format_sacct();
        assert!(s.contains("ConsumedEnergy=1235J") || s.contains("ConsumedEnergy=1234J"));
        assert!(s.contains("Elapsed=42.12s"));
    }

    #[test]
    #[should_panic(expected = "mean of zero records")]
    fn empty_mean_panics() {
        let _ = JobRecord::mean(&[]);
    }

    fn accounting() -> JobAccounting {
        JobAccounting {
            job: "job-1".into(),
            node_id: 2,
            record: JobRecord {
                job_energy_j: 995.0,
                cpu_energy_j: 600.0,
                elapsed_s: 10.0,
            },
            regions: vec![
                RegionAccounting {
                    region: "omp parallel:42".into(),
                    visits: 50,
                    time_s: 7.0,
                    node_energy_j: 700.0,
                    cpu_energy_j: 420.0,
                },
                RegionAccounting {
                    region: "filler".into(),
                    visits: 50,
                    time_s: 3.0,
                    node_energy_j: 300.0,
                    cpu_energy_j: 180.0,
                },
            ],
            switches: 100,
            switch_time_s: 0.002,
            instr_overhead_s: 0.1,
            scenario_lookups: 100,
            source: ModelSource::Repository,
            online: None,
        }
    }

    #[test]
    fn per_region_breakdown_sums_to_job_totals() {
        let acc = accounting();
        assert!((acc.regions_time_s() - 10.0).abs() < 1e-12);
        assert!((acc.regions_node_energy_j() - 1000.0).abs() < 1e-12);
        assert!((acc.regions_cpu_energy_j() - acc.record.cpu_energy_j).abs() < 1e-12);
        assert_eq!(acc.region("filler").unwrap().visits, 50);
        assert!(acc.region("nope").is_none());
    }

    #[test]
    fn sacct_report_includes_region_lines() {
        let acc = accounting();
        let s = acc.format_sacct();
        assert!(s.contains("JobName=job-1"), "{s}");
        assert!(s.contains("NodeId=2"), "{s}");
        assert!(s.contains("omp parallel:42"), "{s}");
        assert!(s.contains("(70.0%)"), "region energy share: {s}");
        assert!(s.contains("Switches=100"), "{s}");
        assert_eq!(s.lines().count(), 3, "job line + two region lines");
        assert!(!s.contains("Online="), "plain sessions show no online info");
    }

    #[test]
    fn sacct_report_shows_online_activity() {
        let mut acc = accounting();
        acc.online = Some(OnlineActivity {
            explored_iterations: 23,
            drift_events: 1,
            recalibrated_regions: 1,
            publishable: true,
        });
        let s = acc.format_sacct();
        assert!(
            s.contains("Online=[explored=23 drift=1 recalibrated=1]"),
            "{s}"
        );
        assert_eq!(s.lines().count(), 3, "online info extends the job line");
    }
}
