//! SLURM-style job accounting.
//!
//! "To measure job energy and time, we use the SLURM tool `sacct` which
//! allows users to query post-mortem job data … For measuring CPU energy
//! we utilize a lightweight runtime tool called `measure-rapl`"
//! (Section V-D). A [`JobRecord`] carries exactly those three job-level
//! values; a [`JobAccounting`] adds what `sacct` alone cannot see — the
//! per-region energy/time breakdown the RRL's region events make
//! possible, plus switch and instrumentation-overhead totals.

use serde::{Deserialize, Serialize};

use scorep_lite::AppRunReport;

use crate::repository::ModelSource;

/// Post-mortem job data for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job (node) energy, joules — `sacct --format=ConsumedEnergy`.
    pub job_energy_j: f64,
    /// CPU (package) energy, joules — `measure-rapl`.
    pub cpu_energy_j: f64,
    /// Elapsed wall time, seconds — `sacct --format=Elapsed`.
    pub elapsed_s: f64,
}

impl JobRecord {
    /// Extract the accounting record from an application run.
    pub fn from_run(report: &AppRunReport) -> Self {
        Self {
            job_energy_j: report.job_energy_j,
            cpu_energy_j: report.cpu_energy_j,
            elapsed_s: report.wall_time_s,
        }
    }

    /// Average several runs (the paper averages five).
    pub fn mean(records: &[JobRecord]) -> JobRecord {
        assert!(!records.is_empty(), "mean of zero records");
        let n = records.len() as f64;
        JobRecord {
            job_energy_j: records.iter().map(|r| r.job_energy_j).sum::<f64>() / n,
            cpu_energy_j: records.iter().map(|r| r.cpu_energy_j).sum::<f64>() / n,
            elapsed_s: records.iter().map(|r| r.elapsed_s).sum::<f64>() / n,
        }
    }

    /// `sacct`-style formatted line.
    pub fn format_sacct(&self) -> String {
        format!(
            "ConsumedEnergy={:.0}J CpuEnergy={:.0}J Elapsed={:.2}s",
            self.job_energy_j, self.cpu_energy_j, self.elapsed_s
        )
    }
}

/// Accounting for one region across a whole job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionAccounting {
    /// Region name.
    pub region: String,
    /// Instances executed.
    pub visits: u64,
    /// Total wall time charged (including residual instrumentation
    /// overhead), seconds.
    pub time_s: f64,
    /// Total node energy charged, joules.
    pub node_energy_j: f64,
    /// Total CPU (RAPL) energy charged, joules.
    pub cpu_energy_j: f64,
}

/// Struct-of-arrays storage for the per-region breakdown.
///
/// Every job touches the same handful of columns for every region —
/// summing times, summing energies, formatting a report — so the rows of
/// [`RegionAccounting`] are stored as parallel columns and materialised
/// into rows only at the accessor boundary. Callers keep working with
/// [`RegionAccounting`] values; the columnar layout is an internal detail
/// (and serialises exactly like the row vector it replaced).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionColumns {
    names: Vec<String>,
    visits: Vec<u64>,
    time_s: Vec<f64>,
    node_energy_j: Vec<f64>,
    cpu_energy_j: Vec<f64>,
}

impl RegionColumns {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct regions recorded.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no region has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Charge one region instance: bump its visit count and add the time
    /// and energy deltas, appending a fresh column entry on first sight
    /// (preserving first-execution order).
    pub fn accumulate(&mut self, region: &str, time_s: f64, node_energy_j: f64, cpu_energy_j: f64) {
        match self.names.iter().position(|n| n == region) {
            Some(i) => {
                self.visits[i] += 1;
                self.time_s[i] += time_s;
                self.node_energy_j[i] += node_energy_j;
                self.cpu_energy_j[i] += cpu_energy_j;
            }
            None => {
                self.names.push(region.to_string());
                self.visits.push(1);
                self.time_s.push(time_s);
                self.node_energy_j.push(node_energy_j);
                self.cpu_energy_j.push(cpu_energy_j);
            }
        }
    }

    /// Materialise the row at `index`.
    fn row(&self, index: usize) -> RegionAccounting {
        RegionAccounting {
            region: self.names[index].clone(),
            visits: self.visits[index],
            time_s: self.time_s[index],
            node_energy_j: self.node_energy_j[index],
            cpu_energy_j: self.cpu_energy_j[index],
        }
    }

    /// Look up one region's accounting row by name.
    pub fn region(&self, name: &str) -> Option<RegionAccounting> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.row(i))
    }

    /// Iterate the breakdown as materialised rows, in first-execution
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = RegionAccounting> + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// The whole breakdown as a row vector.
    pub fn rows(&self) -> Vec<RegionAccounting> {
        self.iter().collect()
    }

    /// Rebuild the columns from a row vector (inverse of [`Self::rows`]).
    pub fn from_rows(rows: Vec<RegionAccounting>) -> Self {
        let mut cols = Self::default();
        for r in rows {
            cols.names.push(r.region);
            cols.visits.push(r.visits);
            cols.time_s.push(r.time_s);
            cols.node_energy_j.push(r.node_energy_j);
            cols.cpu_energy_j.push(r.cpu_energy_j);
        }
        cols
    }

    /// Sum of the time column, seconds.
    pub fn total_time_s(&self) -> f64 {
        self.time_s.iter().sum()
    }

    /// Sum of the node-energy column, joules.
    pub fn total_node_energy_j(&self) -> f64 {
        self.node_energy_j.iter().sum()
    }

    /// Sum of the CPU-energy column, joules.
    pub fn total_cpu_energy_j(&self) -> f64 {
        self.cpu_energy_j.iter().sum()
    }
}

impl IntoIterator for &RegionColumns {
    type Item = RegionAccounting;
    type IntoIter = std::vec::IntoIter<RegionAccounting>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows().into_iter()
    }
}

// Wire-compatible with the `Vec<RegionAccounting>` field it replaced: the
// columns serialise as the row array, so persisted accounting round-trips
// across the flatten unchanged.
impl Serialize for RegionColumns {
    fn to_value(&self) -> serde::json::Value {
        self.rows().to_value()
    }
}

impl Deserialize for RegionColumns {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        Vec::<RegionAccounting>::from_value(v).map(Self::from_rows)
    }
}

/// What the online adaptation engine did during a job, recorded alongside
/// the `sacct` data so post-mortem queries can tell a calibration run from
/// a plain serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineActivity {
    /// Phase iterations spent exploring candidate configurations (thread
    /// sweep + analysis + phase search + verification).
    pub explored_iterations: u32,
    /// Drift events the detector fired during the run.
    pub drift_events: u32,
    /// Regions the session re-calibrated after a drift event.
    pub recalibrated_regions: u32,
    /// Whether the session converged a tuning model worth publishing back
    /// to the repository.
    pub publishable: bool,
}

/// Full post-mortem accounting for one job: the Table VI job-level record
/// plus the per-region breakdown and the runtime-tuning counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAccounting {
    /// Job name.
    pub job: String,
    /// Node the job executed on.
    pub node_id: u32,
    /// The three job-level quantities of Table VI.
    pub record: JobRecord,
    /// Per-region energy/time breakdown, in first-execution order.
    pub regions: RegionColumns,
    /// Configuration switches performed.
    pub switches: u64,
    /// Total DVFS/UFS/OpenMP transition latency charged, seconds.
    pub switch_time_s: f64,
    /// Total residual instrumentation overhead charged, seconds.
    pub instr_overhead_s: f64,
    /// Scenario lookups the runtime performed.
    pub scenario_lookups: u64,
    /// Whether the job ran a stored tuning model or the calibration
    /// fallback.
    pub source: ModelSource,
    /// Online-adaptation activity, when the job ran under the
    /// [`OnlineTuner`](crate::OnlineTuner) (`None` for plain sessions).
    pub online: Option<OnlineActivity>,
}

impl JobAccounting {
    /// Look up one region's accounting entry.
    pub fn region(&self, name: &str) -> Option<RegionAccounting> {
        self.regions.region(name)
    }

    /// Sum of the per-region wall times, seconds. Together with
    /// [`Self::switch_time_s`] this reconstructs the job's elapsed time.
    pub fn regions_time_s(&self) -> f64 {
        self.regions.total_time_s()
    }

    /// Sum of the per-region node energies, joules (the exact trace the
    /// HDEEM-measured [`JobRecord::job_energy_j`] samples).
    pub fn regions_node_energy_j(&self) -> f64 {
        self.regions.total_node_energy_j()
    }

    /// Sum of the per-region CPU energies, joules.
    pub fn regions_cpu_energy_j(&self) -> f64 {
        self.regions.total_cpu_energy_j()
    }

    /// `sacct`-style multi-line report: the job line followed by one line
    /// per region with its share of the job energy.
    pub fn format_sacct(&self) -> String {
        let mut out = format!(
            "JobName={} NodeId={} {} Switches={} Source={:?}",
            self.job,
            self.node_id,
            self.record.format_sacct(),
            self.switches,
            self.source,
        );
        if let Some(online) = &self.online {
            out.push_str(&format!(
                " Online=[explored={} drift={} recalibrated={}]",
                online.explored_iterations, online.drift_events, online.recalibrated_regions,
            ));
        }
        out.push('\n');
        let total_j = self.regions_node_energy_j().max(f64::MIN_POSITIVE);
        for r in &self.regions {
            out.push_str(&format!(
                "  {:<34} Visits={:<5} Time={:.3}s Energy={:.0}J CpuEnergy={:.0}J ({:.1}%)\n",
                r.region,
                r.visits,
                r.time_s,
                r.node_energy_j,
                r.cpu_energy_j,
                100.0 * r.node_energy_j / total_j,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_records() {
        let a = JobRecord {
            job_energy_j: 100.0,
            cpu_energy_j: 60.0,
            elapsed_s: 10.0,
        };
        let b = JobRecord {
            job_energy_j: 200.0,
            cpu_energy_j: 80.0,
            elapsed_s: 20.0,
        };
        let m = JobRecord::mean(&[a, b]);
        assert_eq!(m.job_energy_j, 150.0);
        assert_eq!(m.cpu_energy_j, 70.0);
        assert_eq!(m.elapsed_s, 15.0);
    }

    #[test]
    fn formatting() {
        let r = JobRecord {
            job_energy_j: 1234.5,
            cpu_energy_j: 678.9,
            elapsed_s: 42.123,
        };
        let s = r.format_sacct();
        assert!(s.contains("ConsumedEnergy=1235J") || s.contains("ConsumedEnergy=1234J"));
        assert!(s.contains("Elapsed=42.12s"));
    }

    #[test]
    #[should_panic(expected = "mean of zero records")]
    fn empty_mean_panics() {
        let _ = JobRecord::mean(&[]);
    }

    fn accounting() -> JobAccounting {
        JobAccounting {
            job: "job-1".into(),
            node_id: 2,
            record: JobRecord {
                job_energy_j: 995.0,
                cpu_energy_j: 600.0,
                elapsed_s: 10.0,
            },
            regions: RegionColumns::from_rows(vec![
                RegionAccounting {
                    region: "omp parallel:42".into(),
                    visits: 50,
                    time_s: 7.0,
                    node_energy_j: 700.0,
                    cpu_energy_j: 420.0,
                },
                RegionAccounting {
                    region: "filler".into(),
                    visits: 50,
                    time_s: 3.0,
                    node_energy_j: 300.0,
                    cpu_energy_j: 180.0,
                },
            ]),
            switches: 100,
            switch_time_s: 0.002,
            instr_overhead_s: 0.1,
            scenario_lookups: 100,
            source: ModelSource::Repository,
            online: None,
        }
    }

    #[test]
    fn per_region_breakdown_sums_to_job_totals() {
        let acc = accounting();
        assert!((acc.regions_time_s() - 10.0).abs() < 1e-12);
        assert!((acc.regions_node_energy_j() - 1000.0).abs() < 1e-12);
        assert!((acc.regions_cpu_energy_j() - acc.record.cpu_energy_j).abs() < 1e-12);
        assert_eq!(acc.region("filler").unwrap().visits, 50);
        assert!(acc.region("nope").is_none());
    }

    #[test]
    fn sacct_report_includes_region_lines() {
        let acc = accounting();
        let s = acc.format_sacct();
        assert!(s.contains("JobName=job-1"), "{s}");
        assert!(s.contains("NodeId=2"), "{s}");
        assert!(s.contains("omp parallel:42"), "{s}");
        assert!(s.contains("(70.0%)"), "region energy share: {s}");
        assert!(s.contains("Switches=100"), "{s}");
        assert_eq!(s.lines().count(), 3, "job line + two region lines");
        assert!(!s.contains("Online="), "plain sessions show no online info");
    }

    // ---- RegionColumns property tests (PR 9 struct-of-arrays flatten).
    // The columnar storage must be observationally identical to the
    // `Vec<RegionAccounting>` field it replaced: lossless row round
    // trips, identical accumulation, identical wire format, identical
    // sacct rendering.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    fn random_rows(rng: &mut StdRng) -> Vec<RegionAccounting> {
        let n = rng.gen_index(8);
        (0..n)
            .map(|i| RegionAccounting {
                // Distinct names (duplicates were impossible in the old
                // first-execution-order vector too).
                region: format!("region-{i}"),
                visits: rng.next_u64() % 1_000,
                time_s: (rng.next_u64() % 10_000) as f64 / 100.0,
                node_energy_j: (rng.next_u64() % 1_000_000) as f64 / 10.0,
                cpu_energy_j: (rng.next_u64() % 1_000_000) as f64 / 10.0,
            })
            .collect()
    }

    #[test]
    fn region_columns_round_trip_is_lossless() {
        let mut rng = StdRng::seed_from_u64(0xC01_5EED);
        for _ in 0..200 {
            let rows = random_rows(&mut rng);
            let cols = RegionColumns::from_rows(rows.clone());
            assert_eq!(cols.len(), rows.len());
            assert_eq!(cols.is_empty(), rows.is_empty());
            assert_eq!(cols.rows(), rows, "rows → columns → rows must be identity");
            assert_eq!(cols.iter().collect::<Vec<_>>(), rows);
            assert_eq!((&cols).into_iter().collect::<Vec<_>>(), rows);
            for r in &rows {
                assert_eq!(cols.region(&r.region).as_ref(), Some(r));
            }
            assert!(cols.region("definitely-not-a-region").is_none());
            assert_eq!(cols, RegionColumns::from_rows(cols.rows()));
        }
    }

    #[test]
    fn region_columns_accumulate_matches_the_row_reference() {
        let mut rng = StdRng::seed_from_u64(0xACC_5EED);
        let pool = ["alpha", "beta", "gamma", "delta"];
        for _ in 0..100 {
            let mut cols = RegionColumns::new();
            // The pre-flatten accumulation loop, verbatim, as the oracle.
            let mut reference: Vec<RegionAccounting> = Vec::new();
            for _ in 0..rng.gen_index(40) {
                let region = pool[rng.gen_index(pool.len())];
                let time_s = (rng.next_u64() % 1_000) as f64 / 100.0;
                let node_j = (rng.next_u64() % 100_000) as f64 / 10.0;
                let cpu_j = (rng.next_u64() % 100_000) as f64 / 10.0;
                cols.accumulate(region, time_s, node_j, cpu_j);
                match reference.iter_mut().find(|r| r.region == region) {
                    Some(acc) => {
                        acc.visits += 1;
                        acc.time_s += time_s;
                        acc.node_energy_j += node_j;
                        acc.cpu_energy_j += cpu_j;
                    }
                    None => reference.push(RegionAccounting {
                        region: region.to_string(),
                        visits: 1,
                        time_s,
                        node_energy_j: node_j,
                        cpu_energy_j: cpu_j,
                    }),
                }
            }
            assert_eq!(cols.rows(), reference, "bit-identical fold, same order");
            assert_eq!(
                cols.total_time_s(),
                reference.iter().map(|r| r.time_s).sum()
            );
            assert_eq!(
                cols.total_node_energy_j(),
                reference.iter().map(|r| r.node_energy_j).sum()
            );
            assert_eq!(
                cols.total_cpu_energy_j(),
                reference.iter().map(|r| r.cpu_energy_j).sum()
            );
        }
    }

    #[test]
    fn region_columns_serialise_exactly_like_the_row_vector() {
        let mut rng = StdRng::seed_from_u64(0x5E_12DE);
        for _ in 0..100 {
            let rows = random_rows(&mut rng);
            let cols = RegionColumns::from_rows(rows.clone());
            // Wire identity: the columnar type is invisible in JSON.
            assert_eq!(cols.to_value(), rows.to_value());
            let decoded = RegionColumns::from_value(&rows.to_value()).expect("row-shaped JSON");
            assert_eq!(decoded, cols);
            // And through the full string round trip.
            let json = serde_json::to_string(&cols).expect("render");
            assert_eq!(json, serde_json::to_string(&rows).expect("render"));
            let back: RegionColumns = serde_json::from_str(&json).expect("parse");
            assert_eq!(back.rows(), rows);
        }
    }

    /// The pre-flatten `JobAccounting::format_sacct` body, kept verbatim
    /// over materialised rows as the rendering oracle.
    fn reference_format_sacct(acc: &JobAccounting) -> String {
        let mut out = format!(
            "JobName={} NodeId={} {} Switches={} Source={:?}",
            acc.job,
            acc.node_id,
            acc.record.format_sacct(),
            acc.switches,
            acc.source,
        );
        if let Some(online) = &acc.online {
            out.push_str(&format!(
                " Online=[explored={} drift={} recalibrated={}]",
                online.explored_iterations, online.drift_events, online.recalibrated_regions,
            ));
        }
        out.push('\n');
        let rows = acc.regions.rows();
        let total_j = rows
            .iter()
            .map(|r| r.node_energy_j)
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        for r in &rows {
            out.push_str(&format!(
                "  {:<34} Visits={:<5} Time={:.3}s Energy={:.0}J CpuEnergy={:.0}J ({:.1}%)\n",
                r.region,
                r.visits,
                r.time_s,
                r.node_energy_j,
                r.cpu_energy_j,
                100.0 * r.node_energy_j / total_j,
            ));
        }
        out
    }

    #[test]
    fn format_sacct_is_byte_identical_to_the_pre_flatten_renderer() {
        let mut rng = StdRng::seed_from_u64(0xF0_124A7);
        for i in 0..100 {
            let mut acc = accounting();
            acc.regions = RegionColumns::from_rows(random_rows(&mut rng));
            if i % 2 == 0 {
                acc.online = Some(OnlineActivity {
                    explored_iterations: (rng.next_u64() % 50) as u32,
                    drift_events: (rng.next_u64() % 5) as u32,
                    recalibrated_regions: (rng.next_u64() % 5) as u32,
                    publishable: true,
                });
            }
            assert_eq!(acc.format_sacct(), reference_format_sacct(&acc));
        }
    }

    #[test]
    fn sacct_report_shows_online_activity() {
        let mut acc = accounting();
        acc.online = Some(OnlineActivity {
            explored_iterations: 23,
            drift_events: 1,
            recalibrated_regions: 1,
            publishable: true,
        });
        let s = acc.format_sacct();
        assert!(
            s.contains("Online=[explored=23 drift=1 recalibrated=1]"),
            "{s}"
        );
        assert_eq!(s.lines().count(), 3, "online info extends the job line");
    }
}
