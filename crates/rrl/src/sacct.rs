//! SLURM-style job accounting.
//!
//! "To measure job energy and time, we use the SLURM tool `sacct` which
//! allows users to query post-mortem job data … For measuring CPU energy
//! we utilize a lightweight runtime tool called `measure-rapl`"
//! (Section V-D). A [`JobRecord`] carries exactly those three values.

use serde::{Deserialize, Serialize};

use scorep_lite::AppRunReport;

/// Post-mortem job data for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job (node) energy, joules — `sacct --format=ConsumedEnergy`.
    pub job_energy_j: f64,
    /// CPU (package) energy, joules — `measure-rapl`.
    pub cpu_energy_j: f64,
    /// Elapsed wall time, seconds — `sacct --format=Elapsed`.
    pub elapsed_s: f64,
}

impl JobRecord {
    /// Extract the accounting record from an application run.
    pub fn from_run(report: &AppRunReport) -> Self {
        Self {
            job_energy_j: report.job_energy_j,
            cpu_energy_j: report.cpu_energy_j,
            elapsed_s: report.wall_time_s,
        }
    }

    /// Average several runs (the paper averages five).
    pub fn mean(records: &[JobRecord]) -> JobRecord {
        assert!(!records.is_empty(), "mean of zero records");
        let n = records.len() as f64;
        JobRecord {
            job_energy_j: records.iter().map(|r| r.job_energy_j).sum::<f64>() / n,
            cpu_energy_j: records.iter().map(|r| r.cpu_energy_j).sum::<f64>() / n,
            elapsed_s: records.iter().map(|r| r.elapsed_s).sum::<f64>() / n,
        }
    }

    /// `sacct`-style formatted line.
    pub fn format_sacct(&self) -> String {
        format!(
            "ConsumedEnergy={:.0}J CpuEnergy={:.0}J Elapsed={:.2}s",
            self.job_energy_j, self.cpu_energy_j, self.elapsed_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_records() {
        let a = JobRecord {
            job_energy_j: 100.0,
            cpu_energy_j: 60.0,
            elapsed_s: 10.0,
        };
        let b = JobRecord {
            job_energy_j: 200.0,
            cpu_energy_j: 80.0,
            elapsed_s: 20.0,
        };
        let m = JobRecord::mean(&[a, b]);
        assert_eq!(m.job_energy_j, 150.0);
        assert_eq!(m.cpu_energy_j, 70.0);
        assert_eq!(m.elapsed_s, 15.0);
    }

    #[test]
    fn formatting() {
        let r = JobRecord {
            job_energy_j: 1234.5,
            cpu_energy_j: 678.9,
            elapsed_s: 42.123,
        };
        let s = r.format_sacct();
        assert!(s.contains("ConsumedEnergy=1235J") || s.contains("ConsumedEnergy=1234J"));
        assert!(s.contains("Elapsed=42.12s"));
    }

    #[test]
    #[should_panic(expected = "mean of zero records")]
    fn empty_mean_panics() {
        let _ = JobRecord::mean(&[]);
    }
}
