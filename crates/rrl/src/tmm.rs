//! The Tuning Model Manager.
//!
//! The RRL loads the tuning model from the path in the
//! `SCOREP_RRL_TMM_PATH` environment variable. The manager parses and
//! validates the model and serves scenario lookups to the runtime hook.

use std::path::Path;

use ptf::TuningModel;
use simnode::SystemConfig;

/// Errors loading a tuning model.
#[derive(Debug)]
pub enum TmmError {
    /// File could not be read.
    Io(std::io::Error),
    /// File contents were not a valid tuning model.
    Parse(serde_json::Error),
}

impl std::fmt::Display for TmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmmError::Io(e) => write!(f, "cannot read tuning model: {e}"),
            TmmError::Parse(e) => write!(f, "cannot parse tuning model: {e}"),
        }
    }
}

impl std::error::Error for TmmError {}

/// Serves scenario configurations from a loaded tuning model.
#[derive(Debug, Clone)]
pub struct TuningModelManager {
    model: TuningModel,
}

impl TuningModelManager {
    /// Wrap an in-memory tuning model.
    pub fn new(model: TuningModel) -> Self {
        Self { model }
    }

    /// Load a tuning model from a JSON file (what the RRL does with
    /// `SCOREP_RRL_TMM_PATH`).
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, TmmError> {
        let json = std::fs::read_to_string(path).map_err(TmmError::Io)?;
        let model = TuningModel::from_json(&json).map_err(TmmError::Parse)?;
        Ok(Self { model })
    }

    /// Load from the `SCOREP_RRL_TMM_PATH` environment variable.
    pub fn from_env() -> Result<Self, TmmError> {
        let path = std::env::var("SCOREP_RRL_TMM_PATH").map_err(|_| {
            TmmError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "SCOREP_RRL_TMM_PATH not set",
            ))
        })?;
        Self::from_path(path)
    }

    /// The underlying model.
    pub fn model(&self) -> &TuningModel {
        &self.model
    }

    /// Configuration for a region (scenario lookup with phase fallback).
    pub fn configuration_for(&self, region: &str) -> SystemConfig {
        self.model.lookup(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TuningModel {
        TuningModel::new(
            "toy",
            &[("a".into(), SystemConfig::new(24, 2400, 1700))],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    #[test]
    fn lookup_via_manager() {
        let tmm = TuningModelManager::new(model());
        assert_eq!(
            tmm.configuration_for("a"),
            SystemConfig::new(24, 2400, 1700)
        );
        assert_eq!(
            tmm.configuration_for("other"),
            SystemConfig::new(24, 2500, 2100)
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rrl-tmm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tm.json");
        std::fs::write(&path, model().to_json()).unwrap();
        let tmm = TuningModelManager::from_path(&path).expect("load");
        assert_eq!(tmm.model().application, "toy");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = TuningModelManager::from_path("/nonexistent/tm.json").unwrap_err();
        assert!(matches!(err, TmmError::Io(_)));
        assert!(format!("{err}").contains("cannot read"));
    }

    #[test]
    fn bad_json_is_parse_error() {
        let dir = std::env::temp_dir().join("rrl-tmm-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{nope").unwrap();
        let err = TuningModelManager::from_path(&path).unwrap_err();
        assert!(matches!(err, TmmError::Parse(_)));
        std::fs::remove_file(&path).ok();
    }
}
