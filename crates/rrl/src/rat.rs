//! Runtime Application Tuning (legacy hook shim).
//!
//! The RRL hooks Score-P's region events: on every significant-region
//! entry it classifies the region into a scenario and requests that
//! scenario's configuration through the PCPs. The switch itself costs the
//! transition latencies of Section V-E (21 µs core, 20 µs uncore), which
//! the instrumented application charges to wall time.
//!
//! [`RrlHook`] is kept as a thin deprecated shim for `TuningHook`-based
//! callers; new code should drive the event-driven
//! [`crate::RuntimeSession`], which owns the same scenario→configuration
//! resolution and adds per-region accounting and model validation.

use ptf::TuningModel;
use scorep_lite::instrument::TuningHook;
use simnode::{RegionRun, SystemConfig};

use crate::tmm::TuningModelManager;

/// The RRL tuning hook: drives per-region dynamic switching.
#[deprecated(
    since = "0.2.0",
    note = "superseded by the event-driven `rrl::RuntimeSession` API, which adds per-region \
            accounting, model validation and repository serving"
)]
#[derive(Debug, Clone)]
pub struct RrlHook {
    tmm: TuningModelManager,
    lookups: u64,
    distinct_requests: u64,
    last_requested: Option<SystemConfig>,
}

#[allow(deprecated)]
impl RrlHook {
    /// Hook for a tuning model.
    pub fn new(model: TuningModel) -> Self {
        Self {
            tmm: TuningModelManager::new(model),
            lookups: 0,
            distinct_requests: 0,
            last_requested: None,
        }
    }

    /// Number of scenario lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of lookups that requested a configuration different from the
    /// previous request (upper bound on actual hardware switches).
    pub fn distinct_requests(&self) -> u64 {
        self.distinct_requests
    }
}

#[allow(deprecated)]
impl TuningHook for RrlHook {
    fn config_for(&mut self, region: &str, _iter: u32, _current: SystemConfig) -> SystemConfig {
        self.lookups += 1;
        let cfg = self.tmm.configuration_for(region);
        if self.last_requested != Some(cfg) {
            self.distinct_requests += 1;
            self.last_requested = Some(cfg);
        }
        cfg
    }

    fn on_region(&mut self, _region: &str, _iter: u32, _run: &RegionRun) {}
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use scorep_lite::{InstrumentationConfig, InstrumentedApp};
    use simnode::Node;

    fn two_scenario_model() -> TuningModel {
        TuningModel::new(
            "Lulesh",
            &[
                (
                    "IntegrateStressForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                (
                    "CalcFBHourglassForceForElems".into(),
                    SystemConfig::new(24, 2500, 2000),
                ),
                (
                    "CalcKinematicsForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
                ("CalcQForElems".into(), SystemConfig::new(24, 2500, 2000)),
                (
                    "ApplyMaterialPropertiesForElems".into(),
                    SystemConfig::new(24, 2400, 2000),
                ),
            ],
            SystemConfig::new(24, 2500, 2100),
        )
    }

    #[test]
    fn hook_requests_scenario_configs() {
        let mut hook = RrlHook::new(two_scenario_model());
        let c = hook.config_for("CalcKinematicsForElems", 0, SystemConfig::taurus_default());
        assert_eq!(c, SystemConfig::new(24, 2400, 2000));
        let c2 = hook.config_for("unknown", 0, c);
        assert_eq!(c2, SystemConfig::new(24, 2500, 2100), "phase fallback");
        assert_eq!(hook.lookups(), 2);
        assert_eq!(hook.distinct_requests(), 2);
    }

    #[test]
    fn repeat_lookups_do_not_count_as_switches() {
        let mut hook = RrlHook::new(two_scenario_model());
        for _ in 0..5 {
            hook.config_for("CalcQForElems", 0, SystemConfig::taurus_default());
        }
        assert_eq!(hook.lookups(), 5);
        assert_eq!(hook.distinct_requests(), 1);
    }

    #[test]
    fn rrl_run_switches_between_scenarios() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let mut hook = RrlHook::new(two_scenario_model());
        let report = app.run(&mut hook);
        // Two scenarios + phase fallback for fillers: switching happens
        // multiple times per iteration.
        assert!(report.switches > bench.phase_iterations as u64);
        assert!(report.switch_time_s > 0.0);
        assert!(hook.lookups() >= report.switches);
    }

    #[test]
    fn rrl_saves_energy_versus_default_on_lulesh() {
        let bench = kernels::benchmark("Lulesh").unwrap();
        let node = Node::exact(0);
        // Default production run: uninstrumented at the platform default.
        let plain = InstrumentedApp::new(&bench, &node, InstrumentationConfig::uninstrumented())
            .run(&mut scorep_lite::instrument::StaticHook(
                SystemConfig::taurus_default(),
            ));
        // RRL run: instrumented, dynamically tuned.
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        let mut hook = RrlHook::new(two_scenario_model());
        let tuned = app.run(&mut hook);
        assert!(
            tuned.job_energy_j < plain.job_energy_j,
            "dynamic tuning must save energy: {} vs {}",
            tuned.job_energy_j,
            plain.job_energy_j
        );
    }
}
