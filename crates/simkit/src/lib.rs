//! # simkit — the seeded discrete-event kernel
//!
//! Everything in this workspace that pretends to be "time" — cluster job
//! arrivals, region enter/exit events, node churn, network message
//! delivery — runs on the same three pieces:
//!
//! * [`VirtualClock`] — a monotone `u64` virtual timestamp. The unit is
//!   the *caller's* choice (the cluster service uses microseconds, the
//!   net fabric uses ticks); the kernel only requires monotonicity.
//! * [`EventHeap`] — a binary min-heap of typed events ordered by
//!   `(deliver_at, seq_id)`. The sequence id breaks same-instant ties
//!   deterministically: events scheduled earlier fire earlier. This is
//!   the exact rule `rrl::net::SimTransport` has used since PR 6 (there
//!   the tie-break key is the monotone message id, threaded in via
//!   [`EventHeap::schedule_keyed`]).
//! * [`Kernel`] + the [`Process`]/[`EventSink`] traits — the run loop.
//!   [`Kernel::run`] pops the earliest event, advances the clock to its
//!   timestamp, and hands it to the process, which may schedule further
//!   events through the sink. The loop ends when the heap is empty
//!   (quiescence).
//!
//! ## Determinism rules
//!
//! 1. There is no wall clock and no randomness anywhere in the kernel:
//!    the execution order is a pure function of the scheduled
//!    `(deliver_at, seq_id)` pairs. (The recorded run loop,
//!    [`Kernel::run_recorded`], *observes* the wall clock to annotate
//!    telemetry, but never lets it influence ordering — recording on
//!    and off execute the same event sequence.)
//! 2. The clock never moves backwards. A sink schedule aimed at the past
//!    is clamped to *now* (it still fires after every event already
//!    queued for *now*, because its sequence id is larger).
//! 3. Sequence ids are assigned monotonically per heap — two events at
//!    the same instant fire in the order they were scheduled.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use obskit::{Recorder, Track};

/// A virtual timestamp. The unit is chosen by the component driving the
/// kernel (microseconds for the cluster service, ticks for the net
/// fabric); the kernel itself only ever compares and maxes them.
pub type Time = u64;

/// A monotone virtual clock.
///
/// The clock only moves forward: [`advance_to`](VirtualClock::advance_to)
/// with a timestamp in the past is a no-op, so a component that advances
/// the clock to each popped event time observes a monotone sequence by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: Time,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Move the clock forward to `at` (no-op when `at` is in the past).
    /// Returns the new current time.
    pub fn advance_to(&mut self, at: Time) -> Time {
        self.now = self.now.max(at);
        self.now
    }

    /// Move the clock forward by `delta`. Returns the new current time.
    pub fn advance(&mut self, delta: Time) -> Time {
        self.now = self.now.saturating_add(delta);
        self.now
    }
}

/// One event popped from an [`EventHeap`]: its due time, its tie-break
/// sequence id, and the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The virtual instant the event fires at.
    pub at: Time,
    /// The deterministic tie-break id (scheduling order, or the caller's
    /// key for [`EventHeap::schedule_keyed`] entries).
    pub seq: u64,
    /// The typed payload.
    pub event: E,
}

/// Heap entry ordered so the std max-heap pops the *smallest*
/// `(at, seq)` first.
struct Entry<E>(Scheduled<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest (at, seq) is the "greatest" entry.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A time-ordered event heap with deterministic `(deliver_at, seq_id)`
/// tie-breaking.
///
/// [`schedule`](EventHeap::schedule) assigns monotone internal sequence
/// ids (same-instant events fire in scheduling order);
/// [`schedule_keyed`](EventHeap::schedule_keyed) lets a component supply
/// its own tie-break key — `SimTransport` threads its monotone message id
/// through so same-tick deliveries sort by message id, exactly as the
/// pre-kernel transport did. The internal counter is bumped past every
/// caller key, so the two schemes never collide on one heap.
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventHeap<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHeap")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// An empty heap.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at virtual time `at` with the next internal
    /// sequence id. Returns the id assigned.
    pub fn schedule(&mut self, at: Time, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(Scheduled { at, seq, event }));
        seq
    }

    /// Schedule `event` at `at` under the caller's own tie-break `key`
    /// (e.g. a transport message id). The internal counter is advanced
    /// past `key` so later [`schedule`](EventHeap::schedule) calls cannot
    /// collide with it.
    pub fn schedule_keyed(&mut self, at: Time, key: u64, event: E) {
        self.next_seq = self.next_seq.max(key.saturating_add(1));
        self.heap.push(Entry(Scheduled {
            at,
            seq: key,
            event,
        }));
    }

    /// The `(at, seq)` of the earliest pending event, if any.
    pub fn peek(&self) -> Option<(Time, u64)> {
        self.heap.peek().map(|e| (e.0.at, e.0.seq))
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| e.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Where a [`Process`] schedules follow-up events from inside a handler.
///
/// Both methods clamp to the present: an event aimed at the past fires
/// at *now* instead (after everything already queued for now, since its
/// sequence id is larger).
pub trait EventSink<E> {
    /// The current virtual time.
    fn now(&self) -> Time;

    /// Schedule `event` at absolute virtual time `at` (clamped to now).
    /// Returns the assigned sequence id.
    fn schedule_at(&mut self, at: Time, event: E) -> u64;

    /// Schedule `event` `delay` units from now.
    fn schedule_in(&mut self, delay: Time, event: E) -> u64 {
        let at = self.now().saturating_add(delay);
        self.schedule_at(at, event)
    }
}

/// A component driven by a [`Kernel`]: receives each due event together
/// with the (already-advanced) virtual time, and schedules follow-ups
/// through the sink.
pub trait Process<E> {
    /// The error a handler can abort the run with.
    type Error;

    /// Handle one event at virtual time `now`.
    fn handle(
        &mut self,
        now: Time,
        event: E,
        sink: &mut dyn EventSink<E>,
    ) -> Result<(), Self::Error>;
}

/// The sink view handed to a process while one event is in flight.
struct SinkView<'h, E> {
    heap: &'h mut EventHeap<E>,
    now: Time,
}

impl<E> EventSink<E> for SinkView<'_, E> {
    fn now(&self) -> Time {
        self.now
    }

    fn schedule_at(&mut self, at: Time, event: E) -> u64 {
        self.heap.schedule(at.max(self.now), event)
    }
}

/// The discrete-event run loop: a [`VirtualClock`] plus an [`EventHeap`],
/// popping events in `(deliver_at, seq_id)` order and dispatching them to
/// a [`Process`] until the heap quiesces.
#[derive(Debug, Default)]
pub struct Kernel<E> {
    clock: VirtualClock,
    heap: EventHeap<E>,
    processed: u64,
}

impl<E> Kernel<E> {
    /// A kernel at virtual time zero with an empty heap.
    pub fn new() -> Self {
        Self {
            clock: VirtualClock::new(),
            heap: EventHeap::new(),
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when the heap is empty — the run has quiesced.
    pub fn is_quiesced(&self) -> bool {
        self.heap.is_empty()
    }

    /// Seed an event before (or between) runs. Past times are clamped to
    /// the current clock. Returns the assigned sequence id.
    pub fn schedule_at(&mut self, at: Time, event: E) -> u64 {
        self.heap.schedule(at.max(self.clock.now()), event)
    }

    /// Pop and dispatch the earliest event. Returns `Ok(false)` when the
    /// heap was already empty.
    pub fn step<P: Process<E> + ?Sized>(&mut self, process: &mut P) -> Result<bool, P::Error> {
        let Some(Scheduled { at, event, .. }) = self.heap.pop() else {
            return Ok(false);
        };
        let now = self.clock.advance_to(at);
        self.processed += 1;
        let mut sink = SinkView {
            heap: &mut self.heap,
            now,
        };
        process.handle(now, event, &mut sink)?;
        Ok(true)
    }

    /// Run until the heap quiesces (or the process errors out).
    pub fn run<P: Process<E> + ?Sized>(&mut self, process: &mut P) -> Result<(), P::Error> {
        while self.step(process)? {}
        Ok(())
    }

    /// [`run`](Kernel::run), with dispatch telemetry. With a disabled
    /// recorder this *is* `run` plus one virtual call; with recording
    /// on, the loop flushes in blocks of [`RECORD_BLOCK`] events so the
    /// per-event cost stays a local increment:
    ///
    /// * counter `kernel.events` — events dispatched;
    /// * gauge `kernel.heap_depth` — pending events at the last flush;
    /// * histogram `kernel.heap_depth_dist` — pending events sampled at
    ///   each block boundary (deterministic: boundaries are event
    ///   counts, not clock reads);
    /// * histogram `kernel.dispatch_ns` — mean wall nanoseconds per
    ///   dispatch within each block (wall-derived, excluded from
    ///   deterministic comparisons per the obskit naming scheme);
    /// * span `kernel.run` on the kernel track covering the whole run
    ///   in virtual time.
    ///
    /// Telemetry is flushed even when the process errors out, so a
    /// partial run still accounts for the events it dispatched.
    pub fn run_recorded<P: Process<E> + ?Sized>(
        &mut self,
        process: &mut P,
        recorder: &dyn Recorder,
    ) -> Result<(), P::Error> {
        if !recorder.enabled() {
            return self.run(process);
        }
        let start_us = self.clock.now();
        let mut in_block = 0u64;
        let mut block_wall = std::time::Instant::now();
        let result = loop {
            match self.step(process) {
                Ok(true) => {
                    in_block += 1;
                    if in_block == RECORD_BLOCK {
                        self.flush_block(recorder, in_block, &mut block_wall);
                        in_block = 0;
                    }
                }
                Ok(false) => break Ok(()),
                Err(err) => break Err(err),
            }
        };
        if in_block > 0 {
            self.flush_block(recorder, in_block, &mut block_wall);
        }
        recorder.span(
            Track::kernel(),
            "kernel.run",
            start_us,
            self.clock.now().saturating_sub(start_us),
        );
        result
    }

    /// Emit one block's worth of dispatch telemetry and restart the
    /// block's wall-clock measurement.
    fn flush_block(
        &self,
        recorder: &dyn Recorder,
        events: u64,
        block_wall: &mut std::time::Instant,
    ) {
        let elapsed_ns = u64::try_from(block_wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        *block_wall = std::time::Instant::now();
        recorder.counter_add("kernel.events", events);
        recorder.gauge_set("kernel.heap_depth", self.heap.len() as i64);
        recorder.histogram_record("kernel.heap_depth_dist", self.heap.len() as u64);
        recorder.histogram_record("kernel.dispatch_ns", elapsed_ns / events.max(1));
    }
}

/// Telemetry flush granularity for [`Kernel::run_recorded`]: counters
/// and histograms are touched once per this many dispatched events.
pub const RECORD_BLOCK: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance_to(10), 10);
        assert_eq!(c.advance_to(5), 10, "past target is a no-op");
        assert_eq!(c.advance(3), 13);
    }

    #[test]
    fn heap_pops_by_time_then_sequence() {
        let mut h = EventHeap::new();
        h.schedule(5, "late");
        h.schedule(1, "first-at-1");
        h.schedule(1, "second-at-1");
        h.schedule(0, "earliest");
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).map(|s| s.event).collect();
        assert_eq!(order, ["earliest", "first-at-1", "second-at-1", "late"]);
    }

    #[test]
    fn keyed_scheduling_sorts_same_instant_events_by_key() {
        let mut h = EventHeap::new();
        // Keys arrive out of order; same deliver_at → key order wins.
        h.schedule_keyed(2, 7, "seven");
        h.schedule_keyed(2, 3, "three");
        h.schedule_keyed(1, 9, "nine-early");
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).map(|s| s.event).collect();
        assert_eq!(order, ["nine-early", "three", "seven"]);
        // Internal ids continue past the largest caller key.
        assert_eq!(h.schedule(0, "next"), 10);
    }

    #[test]
    fn kernel_runs_to_quiescence_and_clamps_past_schedules() {
        struct Echo {
            seen: Vec<(Time, u32)>,
        }
        impl Process<u32> for Echo {
            type Error = std::convert::Infallible;
            fn handle(
                &mut self,
                now: Time,
                event: u32,
                sink: &mut dyn EventSink<u32>,
            ) -> Result<(), Self::Error> {
                self.seen.push((now, event));
                if event == 1 {
                    // Aimed at the past: fires at `now`, after anything
                    // already queued for `now`.
                    sink.schedule_at(0, 99);
                    sink.schedule_in(5, 42);
                }
                Ok(())
            }
        }
        let mut k = Kernel::new();
        k.schedule_at(10, 1);
        k.schedule_at(10, 2);
        let mut p = Echo { seen: Vec::new() };
        k.run(&mut p).unwrap();
        assert_eq!(p.seen, vec![(10, 1), (10, 2), (10, 99), (15, 42)]);
        assert!(k.is_quiesced());
        assert_eq!(k.processed(), 4);
        assert_eq!(k.now(), 15);
    }

    #[test]
    fn kernel_step_reports_empty_heap() {
        struct Nop;
        impl Process<()> for Nop {
            type Error = std::convert::Infallible;
            fn handle(
                &mut self,
                _: Time,
                _: (),
                _: &mut dyn EventSink<()>,
            ) -> Result<(), Self::Error> {
                Ok(())
            }
        }
        let mut k = Kernel::<()>::new();
        assert!(!k.step(&mut Nop).unwrap());
        k.schedule_at(1, ());
        assert!(k.step(&mut Nop).unwrap());
        assert!(k.is_quiesced());
    }

    #[test]
    fn recorded_run_matches_plain_run_and_counts_events() {
        use obskit::{NoopRecorder, Recorder, Registry};

        struct Chain {
            seen: Vec<(Time, u32)>,
        }
        impl Process<u32> for Chain {
            type Error = std::convert::Infallible;
            fn handle(
                &mut self,
                now: Time,
                event: u32,
                sink: &mut dyn EventSink<u32>,
            ) -> Result<(), Self::Error> {
                self.seen.push((now, event));
                if event > 0 {
                    sink.schedule_in(3, event - 1);
                }
                Ok(())
            }
        }

        let run = |recorder: &dyn Recorder| {
            let mut k = Kernel::new();
            k.schedule_at(1, 5u32);
            k.schedule_at(1, 2u32);
            let mut p = Chain { seen: Vec::new() };
            k.run_recorded(&mut p, recorder).unwrap();
            (p.seen, k.processed())
        };

        let (plain, plain_n) = run(&NoopRecorder);
        let registry = Registry::new();
        let (recorded, recorded_n) = run(&registry);
        assert_eq!(plain, recorded, "recording must not change the schedule");
        assert_eq!(plain_n, recorded_n);

        let snap = registry.snapshot();
        let events = snap
            .counters
            .iter()
            .find(|(name, _)| name == "kernel.events")
            .map(|(_, v)| *v);
        assert_eq!(events, Some(recorded_n), "flushed counter covers the tail");
        assert_eq!(snap.spans, 1, "one kernel.run span per run");
    }

    #[test]
    fn process_errors_abort_the_run() {
        struct Fail;
        impl Process<u8> for Fail {
            type Error = &'static str;
            fn handle(
                &mut self,
                _: Time,
                event: u8,
                _: &mut dyn EventSink<u8>,
            ) -> Result<(), Self::Error> {
                if event == 2 {
                    Err("boom")
                } else {
                    Ok(())
                }
            }
        }
        let mut k = Kernel::new();
        k.schedule_at(1, 1u8);
        k.schedule_at(2, 2u8);
        k.schedule_at(3, 3u8);
        assert_eq!(k.run(&mut Fail), Err("boom"));
        assert_eq!(k.pending(), 1, "the event after the error stays queued");
    }
}
