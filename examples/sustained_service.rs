//! A sustained, churn-tolerant service: 10 000 jobs arrive in bursts
//! over ~40 minutes of virtual time, one node fails mid-run and later
//! rejoins — all in well under a minute of wall clock, because virtual
//! time costs nothing to skip.
//!
//! ```text
//! cargo run --release --example sustained_service
//! ```
//!
//! The trace mixes a tuned workload (repository hits) with a never-tuned
//! one (calibration-fallback serves) across a 16-node fleet whose nodes
//! each run at most two concurrent sessions, so bursts form real per-node
//! queues. Mid-run, node 3 *fails* at the instant a burst lands — its queued jobs are re-placed, its
//! running jobs are truncated at their next phase boundary — and rejoins
//! two virtual minutes later. The example prints the service summary
//! (makespan, latency / queue-depth percentiles, churn accounting) and
//! asserts the run's `event_core` guarantees: the virtual clock never
//! regressed, the event heap quiesced, and every job finished.

use std::time::Instant;

use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use dvfs_ufs_tuning::ptf::TuningModel;
use dvfs_ufs_tuning::rrl::{
    ChurnEvent, ChurnKind, ClusterScheduler, FaultInjector, JobArrival, ServiceConfig,
    TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, RegionCharacter, SystemConfig};

const JOBS: usize = 10_000;
const NODES: u32 = 16;
const BURST: usize = 50;
const GAP_S: f64 = 12.0;

/// One small OpenMP workload, cheap enough that a 10k-job service run
/// finishes in seconds of wall clock.
fn workload(name: &str, instr: f64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        2,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr)
                .dram_bytes(0.1 * instr)
                .build(),
        )],
    )
}

/// The churn schedule: node 3 fails at 804 s — the exact instant burst
/// 67 lands (arrivals at equal timestamps order before churn, so the
/// burst queues first and the failure re-places those jobs) — and
/// rejoins about two virtual minutes later.
struct ChurnPlan;

impl FaultInjector for ChurnPlan {
    fn node_churn(&self) -> Vec<ChurnEvent> {
        vec![
            ChurnEvent {
                at_s: 804.0,
                node: 3,
                kind: ChurnKind::Fail,
            },
            ChurnEvent {
                at_s: 920.0,
                node: 3,
                kind: ChurnKind::Join,
            },
        ]
    }
}

fn main() {
    let cluster = Cluster::new(NODES, 0x5E55_10AD);
    let tuned = workload("tuned-app", 2.0e10);
    let cold = workload("untuned-app", 1.5e10);

    // The tuned workload hits a stored model; the untuned one serves the
    // calibration fallback. Both run statically — the example is about
    // the *service* dynamics (bursts, queues, churn), not online tuning.
    let cfg = SystemConfig::new(24, 2400, 1900);
    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
    repo.insert(
        &tuned,
        &TuningModel::new(&tuned.name, &[("omp parallel:1".into(), cfg)], cfg),
    );

    // Bursty arrivals: every GAP_S seconds a burst of BURST jobs lands
    // at once, 4 tuned jobs for every untuned one.
    let trace: Vec<JobArrival> = (0..JOBS)
        .map(|i| JobArrival {
            name: format!("job-{i}"),
            bench: if i % 5 == 4 {
                cold.clone()
            } else {
                tuned.clone()
            },
            arrival_s: (i / BURST) as f64 * GAP_S,
        })
        .collect();
    let span_s = trace.last().expect("non-empty trace").arrival_s;

    let plan = ChurnPlan;
    let mut sched = ClusterScheduler::new(&cluster)
        .expect("non-empty cluster")
        .with_faults(&plan);
    let wall = Instant::now();
    let report = sched
        .run_service(trace, &mut repo, &ServiceConfig { slots_per_node: 2 })
        .expect("service run succeeds");
    let wall = wall.elapsed();

    let summary = report.service.as_ref().expect("service summary present");
    println!(
        "{JOBS} jobs in bursts of {BURST} over {:.0} min of virtual time, \
         {NODES} nodes x 2 slots, node 3 fails at 804s and rejoins at 920s",
        span_s / 60.0
    );
    println!(
        "executed {} kernel events in {wall:.2?} of wall clock",
        summary.events
    );
    print!("{}", summary.format_lines());

    // The event_core guarantees, asserted the same way the testkit
    // invariant checks them on generated scenarios.
    assert!(summary.monotone, "virtual clock regressed");
    assert!(summary.quiesced, "event heap not empty at quiesce");
    assert_eq!(report.jobs.len(), JOBS, "every job accounted");
    assert!(
        summary.replaced_jobs > 0,
        "the failure should have re-placed queued jobs"
    );
    assert!(
        summary.latency_s.p50 > 0.0 && summary.latency_s.p99 >= summary.latency_s.p50,
        "latency percentiles present and ordered"
    );
    println!("event core green: quiesced, monotone, {JOBS} jobs accounted");
}
