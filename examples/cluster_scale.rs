//! Cluster-scale serving: 1 024 jobs across 32 nodes, sequential vs
//! parallel.
//!
//! ```text
//! cargo run --release --example cluster_scale
//! ```
//!
//! The scale story behind `ClusterScheduler::run_parallel`: a 32-node
//! cluster receives a 1 024-job wave mixing three tuned workloads
//! (repository hits), one never-tuned workload (calibration fallback) and
//! one *cold* workload that online-calibrates exactly once — the first
//! submitted job leads, the other 127 same-workload jobs park on the
//! calibration latch and then hit the published model.
//!
//! The wave is driven twice from identical repository contents: once on
//! the single-threaded scheduler over a `TuningModelRepository`, once on
//! the parallel event loop over a lock-striped `SharedRepository` with
//! one worker per available core. The example prints the throughput of
//! both runs and then *proves* the parallel loop changed nothing: every
//! job's accounting is bit-identical between the two. (Throughput gains
//! scale with the host's cores; on a single-core runner the parallel
//! path simply matches the sequential one to within threading overhead.)

use std::time::Instant;

use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use dvfs_ufs_tuning::ptf::{RandomSearch, TuningModel};
use dvfs_ufs_tuning::rrl::{
    ClusterReport, ClusterScheduler, OnlineConfig, OnlineTuning, SharedRepository,
    TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, RegionCharacter, SystemConfig};

const JOBS: usize = 1024;
const NODES: u32 = 32;

/// A small synthetic workload: one OpenMP region, `iterations` phase
/// loops — cheap enough that a 1 024-job wave finishes in seconds.
fn workload(name: &str, instr: f64, ratio: f64, iterations: u32) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        iterations,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr)
                .dram_bytes(ratio * instr)
                .build(),
        )],
    )
}

fn model_for(bench: &BenchmarkSpec, cfg: SystemConfig) -> TuningModel {
    TuningModel::new(&bench.name, &[("omp parallel:1".into(), cfg)], cfg)
}

/// The submission wave, identical for both runs: job `i`'s workload is a
/// pure function of `i`.
fn submit_wave(sched: &mut ClusterScheduler<'_>, queue: &[&BenchmarkSpec]) {
    for i in 0..JOBS {
        let bench = queue[i % queue.len()];
        sched.submit(format!("job-{i:04}-{}", bench.name), bench.clone());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(NODES, 0x5CA1E);
    let fallback = SystemConfig::new(24, 2400, 1700);
    let strategy = RandomSearch::new(12, 3);
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };

    // Three tuned workloads, one untuned (fallback), one cold (online).
    let tuned = [
        workload("stream-like", 1.2e10, 2.0, 10),
        workload("compute-like", 2.0e10, 0.3, 8),
        workload("mixed", 1.6e10, 1.0, 12),
    ];
    // Too few phase iterations to fund even a thread sweep: with online
    // tuning attached this workload still degrades cleanly to the
    // calibration fallback instead of calibrating.
    let untuned = workload("untuned", 1.0e10, 0.8, 5);
    let cold = workload("cold", 2.5e10, 1.2, 40);
    let configs = [
        SystemConfig::new(24, 2100, 2300),
        SystemConfig::new(24, 2500, 1500),
        SystemConfig::new(24, 2400, 1900),
    ];
    // job i → workload: 8-slot rotation, 1 slot cold (128 jobs), 1 slot
    // untuned (128 jobs), 6 slots tuned.
    let queue: Vec<&BenchmarkSpec> = vec![
        &tuned[0], &tuned[1], &cold, &tuned[2], &tuned[0], &untuned, &tuned[1], &tuned[2],
    ];

    // Sequential reference: single-threaded repository + event loop.
    let mut repo = TuningModelRepository::new().with_fallback(fallback);
    for (bench, cfg) in tuned.iter().zip(configs) {
        repo.insert(bench, &model_for(bench, cfg));
    }
    let mut sched = ClusterScheduler::new(&cluster)?.with_online(online);
    submit_wave(&mut sched, &queue);
    println!("driving {JOBS} jobs across {NODES} nodes, sequential event loop…");
    let start = Instant::now();
    let sequential = sched.run(&mut repo)?;
    let seq_elapsed = start.elapsed();

    // Parallel: the same wave over a lock-striped SharedRepository.
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let shared = SharedRepository::new(16).with_fallback(fallback);
    for (bench, cfg) in tuned.iter().zip(configs) {
        shared.insert(bench, &model_for(bench, cfg));
    }
    let mut sched = ClusterScheduler::new(&cluster)?.with_online(online);
    submit_wave(&mut sched, &queue);
    println!("driving {JOBS} jobs across {NODES} nodes, {workers} parallel workers…");
    let start = Instant::now();
    let parallel = sched.run_parallel(&shared, workers)?;
    let par_elapsed = start.elapsed();

    let throughput = |report: &ClusterReport, secs: f64| report.jobs.len() as f64 / secs;
    println!(
        "\nsequential: {:>8.2} jobs/s  ({:.3} s)",
        throughput(&sequential, seq_elapsed.as_secs_f64()),
        seq_elapsed.as_secs_f64(),
    );
    println!(
        "parallel:   {:>8.2} jobs/s  ({:.3} s, {} workers, {} repository shards) — {:.2}× vs sequential",
        throughput(&parallel, par_elapsed.as_secs_f64()),
        par_elapsed.as_secs_f64(),
        workers,
        shared.shard_count(),
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64(),
    );

    // The correctness anchor: the parallel event loop must not change a
    // single bit of any job's accounting.
    for (p, s) in parallel.jobs.iter().zip(&sequential.jobs) {
        assert_eq!(p.job, s.job);
        assert_eq!(p.accounting.record, s.accounting.record, "{}", p.job);
        assert_eq!(p.accounting.regions, s.accounting.regions);
        assert_eq!(p.savings, s.savings);
    }
    assert_eq!(parallel.aggregate, sequential.aggregate);
    println!("bit-identity: every per-job accounting matches the sequential run ✔");

    let online_summary = parallel.online_summary();
    println!(
        "\naggregate savings: job {:.2}%  cpu {:.2}%  time {:.2}%  over {} nodes",
        parallel.aggregate.job_energy_pct,
        parallel.aggregate.cpu_energy_pct,
        parallel.aggregate.time_pct,
        parallel.nodes_used,
    );
    println!(
        "repository: {} hits / {} misses ({} fallback) — hit rate {:.1}%",
        parallel.repository.hits,
        parallel.repository.misses,
        parallel.repository.fallbacks,
        100.0 * parallel.repository.hit_rate(),
    );
    println!(
        "online: {} calibration warmed {} same-workload hits (cold workload served {} times)",
        online_summary.calibrations,
        parallel
            .jobs
            .iter()
            .filter(|j| {
                j.benchmark == "cold"
                    && j.accounting
                        .online
                        .is_some_and(|o| o.explored_iterations == 0)
            })
            .count(),
        parallel
            .jobs
            .iter()
            .filter(|j| j.benchmark == "cold")
            .count(),
    );
    Ok(())
}
