//! The `sustained_service` scenario with the telemetry layer switched
//! on: the same 10 000-job bursty trace through a churning 16-node
//! fleet, recorded into an [`obskit::Registry`] and exported as a
//! Chrome-`trace_event` timeline you can drop into
//! [Perfetto](https://ui.perfetto.dev) plus a JSON metrics snapshot.
//!
//! ```text
//! cargo run --release --example traced_service
//! # then open trace.json in https://ui.perfetto.dev
//! ```
//!
//! Every job becomes one `job` span on its node's track (start = virtual
//! arrival, duration = virtual latency), queued jobs get a nested
//! `job.queued` span, and the churn schedule shows up as `churn.fail` /
//! `churn.join` instants on node 3's track. All timestamps are *virtual*
//! microseconds — the trace renders ~40 minutes of simulated service
//! time, not the seconds of wall clock the run actually took. The
//! example asserts the recording is complete (one `job` span per job,
//! nothing evicted from the timeline ring) and that recording changed
//! nothing about the run itself.

use std::time::Instant;

use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use dvfs_ufs_tuning::obskit::{Registry, TimelineEvent};
use dvfs_ufs_tuning::ptf::TuningModel;
use dvfs_ufs_tuning::rrl::{
    ChurnEvent, ChurnKind, ClusterScheduler, FaultInjector, JobArrival, ServiceConfig,
    TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, RegionCharacter, SystemConfig};

const JOBS: usize = 10_000;
const NODES: u32 = 16;
const BURST: usize = 50;
const GAP_S: f64 = 12.0;

/// Enough ring capacity that nothing is evicted: one `job` span per job,
/// at most one `job.queued` span per job, plus a handful of calibration
/// and churn marks.
const TIMELINE_CAPACITY: usize = 4 * JOBS;

/// The same small OpenMP workload as `sustained_service`.
fn workload(name: &str, instr: f64) -> BenchmarkSpec {
    BenchmarkSpec::new(
        name,
        Suite::Npb,
        ProgrammingModel::OpenMp,
        2,
        vec![RegionSpec::new(
            "omp parallel:1",
            RegionCharacter::builder(instr)
                .dram_bytes(0.1 * instr)
                .build(),
        )],
    )
}

/// Node 3 fails at 804 s and rejoins at 920 s — visible in the trace as
/// instants on node 3's track bracketing a gap in its `job` spans.
struct ChurnPlan;

impl FaultInjector for ChurnPlan {
    fn node_churn(&self) -> Vec<ChurnEvent> {
        vec![
            ChurnEvent {
                at_s: 804.0,
                node: 3,
                kind: ChurnKind::Fail,
            },
            ChurnEvent {
                at_s: 920.0,
                node: 3,
                kind: ChurnKind::Join,
            },
        ]
    }
}

fn main() {
    let cluster = Cluster::new(NODES, 0x5E55_10AD);
    let tuned = workload("tuned-app", 2.0e10);
    let cold = workload("untuned-app", 1.5e10);

    let cfg = SystemConfig::new(24, 2400, 1900);
    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
    repo.insert(
        &tuned,
        &TuningModel::new(&tuned.name, &[("omp parallel:1".into(), cfg)], cfg),
    );

    let trace: Vec<JobArrival> = (0..JOBS)
        .map(|i| JobArrival {
            name: format!("job-{i}"),
            bench: if i % 5 == 4 {
                cold.clone()
            } else {
                tuned.clone()
            },
            arrival_s: (i / BURST) as f64 * GAP_S,
        })
        .collect();

    let registry = Registry::with_timeline_capacity(TIMELINE_CAPACITY);
    let plan = ChurnPlan;
    let mut sched = ClusterScheduler::new(&cluster)
        .expect("non-empty cluster")
        .with_faults(&plan)
        .with_recorder(&registry);
    let wall = Instant::now();
    let report = sched
        .run_service(trace, &mut repo, &ServiceConfig { slots_per_node: 2 })
        .expect("service run succeeds");
    let wall = wall.elapsed();

    let summary = report.service.as_ref().expect("service summary present");
    println!(
        "{JOBS} jobs recorded in {wall:.2?} of wall clock, \
         {:.0} min of virtual time",
        summary.makespan_s / 60.0
    );
    print!("{}", summary.format_lines());

    // The recording must be complete and faithful: one lifecycle span
    // per job, nothing evicted from the ring, every timestamp inside
    // the run's virtual window.
    let events = registry.timeline_events();
    let job_spans: Vec<&TimelineEvent> = events
        .iter()
        .filter(|e| matches!(e, TimelineEvent::Span { .. }) && e.name() == "job")
        .collect();
    assert_eq!(
        job_spans.len(),
        JOBS,
        "one job-lifecycle span per trace job"
    );
    let makespan_us = (summary.makespan_s * 1e6).ceil() as u64;
    for span in &job_spans {
        if let TimelineEvent::Span { ts_us, dur_us, .. } = span {
            assert!(
                ts_us + dur_us <= makespan_us,
                "span timestamps are virtual microseconds within the run"
            );
        }
    }
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.dropped_events, 0, "timeline ring never evicted");
    assert!(
        summary.telemetry.is_some(),
        "summary carries the deterministic snapshot"
    );
    assert!(summary.quiesced && summary.monotone, "event core green");
    assert_eq!(report.jobs.len(), JOBS, "every job accounted");

    // Export: a Perfetto-loadable Chrome trace and the metrics snapshot.
    let trace_json = registry.export_chrome_trace();
    std::fs::write("trace.json", &trace_json).expect("write trace.json");
    std::fs::write("metrics.json", snapshot.to_json()).expect("write metrics.json");
    let series = snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len();
    println!(
        "wrote trace.json ({} timeline events, {} bytes) and metrics.json \
         ({series} series) — open trace.json in https://ui.perfetto.dev",
        events.len(),
        trace_json.len(),
    );
}
