//! Quickstart: train the energy model and tune one application.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's whole pipeline in ~5 seconds: train the 9-5-5-1
//! network on the 14 training benchmarks, run the four-step Design-Time
//! Analysis on Lulesh, print the generated tuning model, and hand it to
//! the READEX Runtime Library for a dynamically-tuned production run.

use dvfs_ufs_tuning::ptf::{DesignTimeAnalysis, EnergyModel};
use dvfs_ufs_tuning::rrl::{run_static, RrlHook, Savings};
use dvfs_ufs_tuning::scorep_lite::{InstrumentationConfig, InstrumentedApp};
use dvfs_ufs_tuning::simnode::{Node, SystemConfig};

fn main() {
    // A compute node (seeded: the run is exactly reproducible).
    let node = Node::new(0, 42);

    // 1. Train the neural-network energy model on the training set
    //    (Section V-B protocol: all frequency combinations, OpenMP threads
    //    12–24 step 4, Adam, 10 epochs).
    println!("training the energy model on 14 benchmarks…");
    let model = EnergyModel::train_paper(&dvfs_ufs_tuning::kernels::training_set(), &node);

    // 2. Design-Time Analysis on an unseen application.
    let bench = dvfs_ufs_tuning::kernels::benchmark("Lulesh").expect("bundled benchmark");
    let dta = DesignTimeAnalysis::new(&node, &model);
    let report = dta.run(&bench);

    println!("\n=== DTA report for {} ===", bench.name);
    println!("significant regions: {:?}", report.config_file.region_names());
    println!("step 1 — optimal OpenMP threads: {}", report.thread_tuning.best_threads);
    println!(
        "step 2 — model-predicted global frequencies: {}|{}",
        report.predicted_global.0, report.predicted_global.1
    );
    println!("verified phase configuration: {}", report.phase_best);
    println!("experiments consumed: {} phase-iteration equivalents", report.experiments);
    println!("\ntuning model ({} scenarios):", report.tuning_model.scenario_count());
    for s in &report.tuning_model.scenarios {
        println!("  scenario {}: {}  <- {:?}", s.id, s.config, s.regions);
    }

    // 3. Production: default run vs dynamically-tuned RRL run.
    let default = run_static(&bench, &node, SystemConfig::taurus_default());
    let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
    let mut hook = RrlHook::new(report.tuning_model.clone());
    let tuned = app.run(&mut hook);
    let savings = Savings::between(
        &default,
        &dvfs_ufs_tuning::rrl::JobRecord::from_run(&tuned),
    );
    println!("\n=== production run ===");
    println!("default: {}", default.format_sacct());
    println!(
        "dynamic: job {:.2}%  cpu {:.2}%  time {:.2}%  ({} switches)",
        savings.job_energy_pct, savings.cpu_energy_pct, savings.time_pct, tuned.switches
    );
}
