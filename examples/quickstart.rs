//! Quickstart: train the energy model and tune one application through
//! the staged `TuningSession` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's whole pipeline in ~5 seconds: train the 9-5-5-1
//! network on the 14 training benchmarks, drive the tuning lifecycle
//! stage by stage on Lulesh (each stage is its own type — skipping one
//! does not compile), print the generated tuning model, publish it to the
//! runtime's tuning-model repository and serve it to an event-driven
//! `RuntimeSession` for a dynamically-tuned production run with per-region
//! accounting.

use dvfs_ufs_tuning::ptf::{EnergyModel, TuningSession};
use dvfs_ufs_tuning::rrl::{RuntimeSession, Savings, TuningModelRepository};
use dvfs_ufs_tuning::simnode::{Node, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compute node (seeded: the run is exactly reproducible).
    let node = Node::new(0, 42);

    // 1. Train the neural-network energy model on the training set
    //    (Section V-B protocol: all frequency combinations, OpenMP threads
    //    12–24 step 4, Adam, 10 epochs).
    println!("training the energy model on 14 benchmarks…");
    let model = EnergyModel::train_paper(&dvfs_ufs_tuning::kernels::training_set(), &node);

    // 2. The staged lifecycle on an unseen application. Every transition
    //    is fallible; nothing on this path panics.
    let bench = dvfs_ufs_tuning::kernels::benchmark("Lulesh").expect("bundled benchmark");
    let preprocessed = TuningSession::builder(&node)
        .with_model(&model)
        .preprocess(&bench)?;
    println!(
        "\npre-processing — significant regions: {:?}",
        preprocessed.config_file().region_names()
    );

    let threads_tuned = preprocessed.tune_threads()?;
    println!(
        "step 1 — optimal OpenMP threads: {}",
        threads_tuned.thread_tuning().best_threads
    );

    let analyzed = threads_tuned.analyze()?;
    println!(
        "analysis — phase counter rates measured: {:?}",
        &analyzed.phase_rates()[..2]
    );

    let frequency_tuned = analyzed.tune_frequencies()?;
    println!(
        "step 2 — verified phase configuration: {}",
        frequency_tuned.phase_best()
    );

    let advice = frequency_tuned.advice();
    if let Some((cf, ucf)) = advice.predicted_global {
        println!("model-predicted global frequencies: {cf}|{ucf}");
    }
    println!(
        "experiments consumed: {} phase-iteration equivalents ({} region simulations)",
        advice.experiments, advice.engine_runs
    );
    println!(
        "\ntuning model ({} scenarios):",
        advice.tuning_model.scenario_count()
    );
    for s in &advice.tuning_model.scenarios {
        println!("  scenario {}: {}  <- {:?}", s.id, s.config, s.regions);
    }

    // 3. Production: publish the advice to the tuning-model repository,
    //    serve it back to an event-driven runtime session, and compare
    //    against a default-configuration run of the same job.
    let mut repo = TuningModelRepository::new();
    repo.publish(&advice);
    let served = repo.serve(&bench)?;
    let default = RuntimeSession::static_run(
        "quickstart-default",
        &bench,
        &node,
        SystemConfig::taurus_default(),
    )?;
    let mut job = RuntimeSession::start("quickstart", &bench, &node, served)?;
    job.run_to_completion()?;
    let tuned = job.finish()?;
    let savings = Savings::between(&default.record, &tuned.record);
    println!("\n=== production run ===");
    println!("default: {}", default.record.format_sacct());
    println!(
        "dynamic: job {:.2}%  cpu {:.2}%  time {:.2}%  ({} switches)",
        savings.job_energy_pct, savings.cpu_energy_pct, savings.time_pct, tuned.switches
    );
    print!("{}", tuned.format_sacct());
    Ok(())
}
