//! The scenario engine's zero-to-repro loop, end to end:
//!
//! 1. generate a seeded heterogeneous scenario (bursty arrivals, a
//!    capability-gapped fleet, injected faults),
//! 2. run it through *both* cluster event loops and the full invariant
//!    catalog (`testkit::check`),
//! 3. print the cluster report and the one-line replay,
//! 4. prove the replay line reproduces the run bit-identically.
//!
//! ```text
//! cargo run --release --example scenario_replay
//! ```

use testkit::{ArrivalModel, GeneratorConfig, ScenarioGenerator};

fn main() {
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 12,
        nodes: 4,
        workloads: 3,
        arrivals: ArrivalModel::Bursty {
            burst: 4,
            gap_s: 300.0,
        },
        fault_fraction: 0.3,
        ..GeneratorConfig::default()
    });
    let seed = 0x5EED;
    let scenario = generator.generate(seed);

    println!(
        "scenario seed {seed:#x}: {} jobs / {} workloads over {} nodes \
         ({} gapped), {} faults ({} aborts, {} refused calibrations, {} drift shifts)\n",
        scenario.jobs.len(),
        scenario.workloads.len(),
        scenario.fleet.nodes.len(),
        scenario
            .fleet
            .nodes
            .iter()
            .filter(|n| n.is_gapped())
            .count(),
        scenario.faults.len(),
        scenario.faults.aborts.len(),
        scenario.faults.calibration_failures.len(),
        scenario.faults.drift_shifts.len(),
    );

    // Run both event loops and the invariant catalog: sequential↔parallel
    // per-job bit-identity, statistics double-entry, version integrity,
    // latch liveness.
    let run = match testkit::check(&scenario) {
        Ok(run) => run,
        Err(failure) => {
            // A real violation would be minimised first:
            //   testkit::shrink(&scenario, &|s| testkit::check(s).err()
            //       .map(|f| f.violation.kind().to_string()))
            eprintln!("{failure}");
            std::process::exit(1);
        }
    };

    println!("{}", run.parallel.format_report());
    let online = run.parallel.online_summary();
    println!(
        "invariants held: {} jobs bit-identical across both event loops, \
         {} calibrations, {} publications, stats double-entry clean\n",
        run.parallel.jobs.len(),
        online.calibrations,
        online.publications,
    );

    // The scenario is data: one line reproduces everything.
    let line = scenario.to_replay();
    println!("replay line ({} bytes)", line.len());
    let replayed = testkit::replay(&line).expect("replay passes the catalog");
    assert_eq!(
        replayed.parallel.aggregate, run.parallel.aggregate,
        "replay must be bit-identical"
    );
    for (a, b) in replayed.parallel.jobs.iter().zip(&run.parallel.jobs) {
        assert_eq!(a.accounting.record, b.accounting.record, "{}", a.job);
    }
    println!("replayed: bit-identical to the original run ✓");
}
