//! Replicated model serving: publish once, converge everywhere — even
//! through a partition.
//!
//! ```text
//! cargo run --release --example replicated_serving
//! ```
//!
//! Four replicas each own a shard-striped model repository and gossip
//! anti-entropy digests over a simulated, fault-injected transport:
//! messages are dropped, duplicated and reordered by a seeded plan, and
//! a partition window isolates replica 3 for the first ticks of the
//! sync. Design-time tuning publishes Lulesh and miniMD on replica 0
//! *only*; convergence carries them to every replica, and jobs then
//! serve repository hits no matter which replica their scheduler fronts.
//! A drift re-publication afterwards (version 2 from replica 0) wins
//! everywhere deterministically — the stamp order, not delivery order,
//! picks the winner.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{EnergyModel, TuningSession};
use dvfs_ufs_tuning::rrl::net::ReplicaConfig;
use dvfs_ufs_tuning::rrl::{ClusterScheduler, ReplicaSet, Stamp};
use dvfs_ufs_tuning::simnode::{Cluster, Node, SystemConfig};
use testkit::{NetPlan, PartitionWindow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The hostile network: ~12 % drops, ~10 % duplicates, up to 3 ticks
    // of reorder jitter, and replica 3 partitioned away for the first
    // 16 ticks. Every decision is a pure function of the seed.
    let plan = NetPlan {
        replicas: 4,
        fault_seed: 0x5EED_CA57,
        drop_permille: 120,
        duplicate_permille: 100,
        delay_jitter_ticks: 3,
        partitions: vec![PartitionWindow {
            from_tick: 0,
            to_tick: 16,
            isolated: vec![3],
        }],
        // Batch-style sync: this example converges explicitly between
        // phases. See `inloop_replication` for the gossip-while-serving
        // counterpart.
        gossip_cadence_us: 0,
        read_repair: false,
    };
    let config = ReplicaConfig {
        fallback: Some(SystemConfig::new(24, 2400, 1700)),
        ..ReplicaConfig::default()
    };
    let mut set = ReplicaSet::new(4, config).with_faults(&plan);

    // 1. Design time, on replica 0 only: train the energy model, tune
    //    both applications, publish. The other three replicas know
    //    nothing yet.
    println!("training the energy model on 14 benchmarks…");
    let golden = Node::exact(0);
    let model = EnergyModel::train_paper(&kernels::training_set(), &golden);
    let mut lulesh_advice = None;
    for name in ["Lulesh", "miniMD"] {
        let bench = kernels::benchmark(name).expect("bundled benchmark");
        let advice = TuningSession::builder(&golden)
            .with_model(&model)
            .run(&bench)?;
        let stamp = set
            .replica_mut(0)?
            .publish_model(&bench, &advice.tuning_model, vec![]);
        println!("published {name} on replica 0 as {stamp}");
        if name == "Lulesh" {
            lulesh_advice = Some(advice);
        }
    }

    // 2. Converge: anti-entropy sync through drops, duplicates, reorder
    //    and the partition (which heals at tick 16).
    let report = set.converge()?;
    println!(
        "\nconverged in {} ticks: {} models applied, transport saw \
         {} sent / {} dropped / {} duplicated / {} partitioned",
        report.ticks,
        report.applied,
        report.transport.sent,
        report.transport.dropped,
        report.transport.duplicated,
        report.transport.partitioned,
    );
    assert!(set.converged(), "all four replicas hold identical models");
    for id in 0..4 {
        let map = set.replica(id)?.model_map();
        let stamps: Vec<String> = map
            .iter()
            .map(|(app, digest)| format!("{app} {}", digest.stamp))
            .collect();
        println!("replica {id}: {}", stamps.join(", "));
    }

    // 3. Runtime: each replica fronts its own scheduler; every job is a
    //    repository hit regardless of which replica it lands on.
    let cluster = Cluster::new(2, 0x5EED);
    let mut hits = 0;
    for replica in 0..4u32 {
        let mut scheduler = ClusterScheduler::new(&cluster)?;
        for (i, name) in ["Lulesh", "miniMD"].iter().enumerate() {
            let bench = kernels::benchmark(name).expect("bundled benchmark");
            scheduler.submit(format!("r{replica}-job-{i}-{name}"), bench);
        }
        let report = scheduler.run_replicated(&mut set, replica)?;
        hits += report.repository.hits;
    }
    assert_eq!(hits, 8, "every job on every replica served a synced model");
    println!("\nserved 8 jobs across 4 replicas: {hits} repository hits");

    // 4. Drift at runtime: replica 0 re-publishes a re-calibrated Lulesh
    //    model. The fresh stamp (version 2) supersedes every version-1
    //    copy — deterministically, on every replica, through the same
    //    faulty transport.
    let advice = lulesh_advice.expect("tuned above");
    let lulesh = kernels::benchmark("Lulesh").expect("bundled benchmark");
    let restamp = set
        .replica_mut(0)?
        .publish_model(&lulesh, &advice.tuning_model, vec![]);
    println!("\ndrift re-publication on replica 0: {restamp}");
    let report = set.converge()?;
    assert!(set.converged());
    let winner = Stamp {
        version: 2,
        publisher: 0,
    };
    for id in 0..4 {
        let stamp = set.replica(id)?.model_map()["Lulesh"].stamp;
        assert_eq!(stamp, winner, "replica {id} must hold the re-publication");
    }
    println!(
        "re-converged in {} ticks: every replica now serves Lulesh {winner}",
        report.ticks
    );
    Ok(())
}
