//! Cluster serving: tune once, serve many re-submitted jobs.
//!
//! ```text
//! cargo run --release --example cluster_serving
//! ```
//!
//! The production pattern the runtime layer is built for: design-time
//! analysis tunes each application *once*, publishes the tuning model to
//! the `TuningModelRepository`, and every later submission of the same
//! workload is served the stored model. Here ten jobs (re-submissions of
//! three benchmarks, one of them never tuned) run concurrently across a
//! four-node cluster under least-loaded placement; the scheduler
//! interleaves their `RuntimeSession`s event by event and reports per-job
//! and aggregate savings plus the repository hit rate. The untuned
//! benchmark is served the calibration fallback — a best-known static
//! configuration — instead of failing or running at the platform default.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{EnergyModel, TuningSession};
use dvfs_ufs_tuning::rrl::{ClusterScheduler, Placement, TuningModelRepository};
use dvfs_ufs_tuning::simnode::{Cluster, Node, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-node production cluster (seeded: distinct power variability
    // per node, exactly reproducible) and the golden calibration node the
    // design-time analysis runs on.
    let cluster = Cluster::new(4, 0x5EED);
    let golden = Node::exact(0);

    // 1. Design time, once: train the energy model and tune the two
    //    applications we expect to see in the queue, publishing each
    //    tuning model to the repository. The fallback is a best-known
    //    static configuration (Table V territory) for anything untuned.
    println!("training the energy model on 14 benchmarks…");
    let model = EnergyModel::train_paper(&kernels::training_set(), &golden);
    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2400, 1700));
    for name in ["Lulesh", "miniMD"] {
        let bench = kernels::benchmark(name).expect("bundled benchmark");
        let advice = TuningSession::builder(&golden)
            .with_model(&model)
            .run(&bench)?;
        println!(
            "tuned {name}: {} scenarios, phase best {}",
            advice.tuning_model.scenario_count(),
            advice.phase_best
        );
        repo.publish(&advice);
    }

    // 2. Runtime: ten concurrent jobs — four Lulesh and four miniMD
    //    re-submissions (repository hits) plus two BEM4I jobs that were
    //    never tuned (calibration fallback).
    let mut scheduler = ClusterScheduler::new(&cluster)?.with_placement(Placement::LeastLoaded);
    let queue = [
        "Lulesh", "miniMD", "Lulesh", "miniMD", "BEM4I", "Lulesh", "miniMD", "BEM4I", "Lulesh",
        "miniMD",
    ];
    for (i, name) in queue.iter().enumerate() {
        let bench = kernels::benchmark(name).expect("bundled benchmark");
        let node = scheduler.submit(format!("job-{i}-{name}"), bench);
        println!("submitted job-{i}-{name} -> node {node}");
    }

    println!(
        "\nserving {} concurrent jobs across {} nodes…\n",
        scheduler.pending(),
        cluster.len()
    );
    let report = scheduler.run(&mut repo)?;
    print!("{}", report.format_report());

    // 3. The per-region breakdown sacct alone cannot see, for one job.
    let first = &report.jobs[0];
    println!("\nper-region accounting of {}:", first.job);
    print!("{}", first.accounting.format_sacct());
    Ok(())
}
