//! In-loop replication: gossip while serving, crash/restart catch-up,
//! and read-repair — no batch `converge` pass anywhere.
//!
//! ```text
//! cargo run --release --example inloop_replication
//! ```
//!
//! Where `replicated_serving` syncs an idle replica set *between*
//! phases, this example keeps anti-entropy inside the service loop:
//! three replicas gossip on a virtual-time cadence while a staggered
//! six-job trace calibrates and publishes mid-run, replica 1 crashes
//! and restarts mid-trace (rejoining empty and catching up from its
//! peers), and the run ends with every replica holding the same
//! winners — verified against a batch `converge` oracle that must be a
//! no-op. A second act shows read-repair: a repository miss inside the
//! gossip cadence window is served by one targeted pull instead of the
//! cold calibration the read-repair-off run pays.

use dvfs_ufs_tuning::ptf::RandomSearch;
use dvfs_ufs_tuning::rrl::{
    ClusterReport, ClusterScheduler, FaultInjector, GossipConfig, JobArrival, ModelSource,
    OnlineConfig, OnlineTuning, ReplicaChurnEvent, ReplicaChurnKind, ReplicaConfig, ReplicaSet,
    ServiceConfig,
};
use dvfs_ufs_tuning::simnode::{Cluster, SystemConfig};
use testkit::toy_benchmark;

/// The crash/restart schedule: replica 1 goes down half a second in —
/// after the first publications — and rejoins 0.6 s later with an
/// empty repository to catch up.
struct Churn;

impl FaultInjector for Churn {
    fn replica_churn(&self) -> Vec<ReplicaChurnEvent> {
        vec![
            ReplicaChurnEvent {
                at_s: 0.5,
                replica: 1,
                kind: ReplicaChurnKind::Crash,
            },
            ReplicaChurnEvent {
                at_s: 1.1,
                replica: 1,
                kind: ReplicaChurnKind::Restart,
            },
        ]
    }
}

/// One in-loop replicated service run; returns the report and the
/// replica set as the run left it (already converged — that is the
/// point).
fn inloop_run(
    replicas: u32,
    gossip: &GossipConfig,
    churn: bool,
    trace: Vec<JobArrival>,
) -> Result<(ClusterReport, ReplicaSet<'static>), Box<dyn std::error::Error>> {
    let strategy = RandomSearch::new(12, 3);
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };
    let cluster = Cluster::new(3, 0x1009);
    let mut set = ReplicaSet::new(
        replicas,
        ReplicaConfig {
            fallback: Some(SystemConfig::new(24, 2400, 1700)),
            ..ReplicaConfig::default()
        },
    );
    let mut sched = ClusterScheduler::new(&cluster)?.with_online(online);
    if churn {
        sched = sched.with_faults(&Churn);
    }
    let report =
        sched.run_service_replicated(trace, &mut set, gossip, &ServiceConfig::default())?;
    Ok((report, set))
}

fn spread_trace(jobs: usize) -> Vec<JobArrival> {
    let a = toy_benchmark("inloop-a", 2e10, 40);
    let b = toy_benchmark("inloop-b", 1.4e10, 30);
    (0..jobs)
        .map(|i| JobArrival {
            name: format!("inloop-{i}"),
            bench: if i % 2 == 0 { a.clone() } else { b.clone() },
            arrival_s: 0.4 * i as f64,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Gossip while serving, through a replica crash and restart.
    let gossip = GossipConfig {
        cadence_us: 5_000,
        ..GossipConfig::default()
    };
    println!("running 6 jobs on 3 replicas, gossip every 5 ms of virtual time…");
    let (first, mut set) = inloop_run(3, &gossip, true, spread_trace(6))?;
    let replication = first
        .service
        .as_ref()
        .and_then(|s| s.replication)
        .expect("replicated run carries a replication summary");
    println!(
        "run converged in-loop: {} gossip rounds, {} entries applied, \
         {} crash / {} restart, net idle: {}",
        replication.gossip_rounds,
        replication.applied,
        replication.crashes,
        replication.restarts,
        replication.net_idle,
    );
    assert!(
        replication.converged,
        "converged during the run: {replication:?}"
    );
    assert!(replication.net_idle, "no in-flight frames at quiesce");
    assert!(replication.applied > 0, "publications gossiped mid-run");
    assert_eq!(replication.crashes, 1);
    assert_eq!(replication.restarts, 1);

    // Every replica — including the restarted one — holds the same
    // non-empty winner map, with no trailing converge pass.
    let map0 = set.replica(0)?.model_map();
    assert!(!map0.is_empty());
    for id in 1..3 {
        assert_eq!(set.replica(id)?.model_map(), map0, "replica {id} caught up");
    }
    println!(
        "all 3 replicas hold the same {} winners (replica 1 re-synced after its restart)",
        map0.len()
    );

    // Oracle: a batch converge over the already-converged set applies
    // nothing and changes nothing.
    let before = set.replication_totals();
    set.converge()?;
    assert_eq!(
        set.replication_totals(),
        before,
        "batch converge was a no-op"
    );
    assert_eq!(set.replica(0)?.model_map(), map0);
    println!("batch-converge oracle: no-op, as required");

    // Determinism: the same trace and churn replayed is bit-identical.
    let (second, _) = inloop_run(3, &gossip, true, spread_trace(6))?;
    assert_eq!(first.service, second.service, "rerun summary identical");
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        assert_eq!(a.accounting, b.accounting, "{}: rerun accounting", a.job);
        assert_eq!(a.savings, b.savings, "{}: rerun savings", a.job);
    }
    println!("rerun is bit-identical — crash, catch-up and all");

    // 2. Read-repair vs cold calibration on a 2-replica set. Probe the
    //    single-job makespan, then land a second job one millisecond
    //    after the publication — inside the 10 ms cadence window, so
    //    its home replica does not hold the entry yet.
    let gossip = GossipConfig {
        cadence_us: 10_000,
        ..GossipConfig::default()
    };
    let bench = toy_benchmark("repair-app", 2e10, 40);
    let probe = vec![JobArrival {
        name: "rr-0".into(),
        bench: bench.clone(),
        arrival_s: 0.0,
    }];
    let (probe_report, _) = inloop_run(2, &gossip, false, probe)?;
    let makespan = probe_report.service.as_ref().unwrap().makespan_s;
    let trace = || {
        vec![
            JobArrival {
                name: "rr-0".into(),
                bench: bench.clone(),
                arrival_s: 0.0,
            },
            JobArrival {
                name: "rr-1".into(),
                bench: bench.clone(),
                arrival_s: makespan + 0.001,
            },
        ]
    };

    let (with_repair, _) = inloop_run(2, &gossip, false, trace())?;
    let repaired = with_repair
        .service
        .as_ref()
        .and_then(|s| s.replication)
        .unwrap();
    assert!(repaired.repair_released >= 1, "{repaired:?}");
    assert_eq!(with_repair.online_summary().calibrations, 1);
    assert_eq!(
        with_repair.jobs[1].accounting.source,
        ModelSource::Replicated,
        "the miss was served by a targeted pull"
    );

    let cold_gossip = GossipConfig {
        read_repair: false,
        ..gossip
    };
    let (cold, _) = inloop_run(2, &cold_gossip, false, trace())?;
    assert_eq!(
        cold.online_summary().calibrations,
        2,
        "read-repair off: the same miss cold-calibrates"
    );
    println!(
        "\nread-repair: 1 calibration + {} targeted pull(s); with it off, \
         the identical trace pays {} calibrations",
        repaired.repair_pulls,
        cold.online_summary().calibrations,
    );
    println!("read-repair avoided 1 cold calibration");
    Ok(())
}
