//! Instrumenting real Rayon kernels.
//!
//! ```text
//! cargo run --release --example real_kernels_instrumented
//! ```
//!
//! The simulator tunes *descriptions* of workloads; this example shows the
//! bridge from genuinely running parallel code to such a description: run
//! the bundled Rayon kernels (triad, blocked DGEMM, Jacobi stencil,
//! Monte-Carlo transport) on the host, derive their analytic
//! [`RegionCharacter`]s from known operation counts, and tune the
//! resulting application with an exhaustive-strategy session.

use std::time::Instant;

use dvfs_ufs_tuning::kernels::real;
use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use dvfs_ufs_tuning::ptf::{ExhaustiveSearch, TuningSession};
use dvfs_ufs_tuning::scorep_lite::dyn_detect::DynDetectConfig;
use dvfs_ufs_tuning::simnode::Node;

fn main() {
    // --- actually run the kernels on the host (Rayon-parallel) ---
    let n = 1 << 22;
    let bsrc = vec![1.0; n];
    let csrc = vec![2.0; n];
    let mut a = vec![0.0; n];
    let t = Instant::now();
    let checksum = real::triad(&mut a, &bsrc, &csrc, 3.0);
    println!(
        "triad     {n:>9} elems  {:>8.2?}  checksum {checksum:.1}",
        t.elapsed()
    );

    let m = 512;
    let am: Vec<f64> = (0..m * m).map(|i| (i % 13) as f64 - 6.0).collect();
    let bm: Vec<f64> = (0..m * m).map(|i| (i % 11) as f64 - 5.0).collect();
    let mut cm = vec![0.0; m * m];
    let t = Instant::now();
    real::dgemm(m, &am, &bm, &mut cm);
    println!(
        "dgemm     {m:>5}x{m:<5}      {:>8.2?}  c[0] {}",
        t.elapsed(),
        cm[0]
    );

    let (nx, ny) = (1024, 1024);
    let mut grid = vec![0.0; nx * ny];
    grid[..nx].fill(100.0);
    let mut next = grid.clone();
    let t = Instant::now();
    let mut delta = 0.0;
    for _ in 0..50 {
        delta = real::jacobi_sweep(nx, ny, &grid, &mut next);
        std::mem::swap(&mut grid, &mut next);
    }
    println!(
        "jacobi    {nx:>5}x{ny:<5} x50  {:>8.2?}  delta {delta:.4}",
        t.elapsed()
    );

    let particles = 2_000_000;
    let t = Instant::now();
    let transmitted = real::mc_transport(particles, 1.0, 2.0);
    println!(
        "mc        {particles:>9} parts {:>8.2?}  transmitted {transmitted:.4} (exp(-2) = {:.4})",
        t.elapsed(),
        (-2.0f64).exp()
    );

    // --- derive characters and tune the composite application ---
    let app = BenchmarkSpec::new(
        "real-kernel-mix",
        Suite::Other,
        ProgrammingModel::OpenMp,
        10,
        vec![
            RegionSpec::new("triad", real::triad_character(n * 40)),
            RegionSpec::new("dgemm", real::dgemm_character(2048)),
            RegionSpec::new("jacobi", real::jacobi_character(8192, 8192)),
            RegionSpec::new("mc_transport", real::mc_character(80_000_000)),
        ],
    );

    let node = Node::new(0, 5);
    // The short host-sized kernels sit below the default 100 ms HDEEM
    // significance threshold; lower it so all four get tuned.
    let detect = DynDetectConfig {
        threshold_s: 0.01,
        ..DynDetectConfig::default()
    };
    let advice = TuningSession::builder(&node)
        .with_strategy(&ExhaustiveSearch)
        .with_dyn_detect(detect)
        .run(&app)
        .expect("exhaustive session succeeds");
    println!("\nenergy-optimal configurations per kernel (simulated Haswell-EP node):");
    for (name, cfg, _) in &advice.region_best {
        let intensity = app.region(name).unwrap().character.intensity();
        println!("  {name:<14} intensity {intensity:>6.2} instr/byte -> {cfg}");
    }
    println!(
        "\ncompute-dense dgemm pins high CF / low UCF; streaming triad and jacobi\nprefer reduced CF with the uncore kept high — the paper's Fig. 6/7 dichotomy\nreproduced on kernels you just executed."
    );
}
