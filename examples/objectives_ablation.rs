//! Alternative tuning objectives (the paper's future work, Section VI),
//! driven through the staged session API.
//!
//! ```text
//! cargo run --release --example objectives_ablation
//! ```
//!
//! The paper tunes for plain energy and names EDP, ED²P and TCO as future
//! objectives. All four are implemented and selectable on the session
//! builder; this example tunes one benchmark per objective with the
//! exhaustive strategy (ground truth, no model required) and shows how
//! the optimal phase configuration migrates as the objective puts more
//! weight on run time: energy tolerates slow clocks, ED²P all but pins
//! the core frequency at maximum.

use dvfs_ufs_tuning::ptf::{ExhaustiveSearch, TuningObjective, TuningSession};
use dvfs_ufs_tuning::simnode::Node;

fn main() {
    let node = Node::new(0, 3);
    let objectives = [
        TuningObjective::Energy,
        TuningObjective::Edp,
        TuningObjective::Ed2p,
        TuningObjective::Tco {
            rate_j_per_s: 150.0,
        },
    ];

    for name in ["Lulesh", "Mcbenchmark", "miniMD"] {
        let bench = dvfs_ufs_tuning::kernels::benchmark(name).expect("bundled");
        println!("\n{name}:");
        for obj in objectives {
            let advice = TuningSession::builder(&node)
                .with_objective(obj)
                .with_strategy(&ExhaustiveSearch)
                .run(&bench)
                .expect("exhaustive session succeeds");
            println!(
                "  {:<8} -> {}   ({} scenarios)",
                obj.name(),
                advice.phase_best,
                advice.tuning_model.scenario_count()
            );
        }
    }
    println!(
        "\ntime-weighted objectives (EDP, ED²P) pull both frequency domains up and\nkeep all 24 threads; plain energy is the most aggressive down-clocker."
    );
}
