//! Alternative tuning objectives (the paper's future work, Section VI).
//!
//! ```text
//! cargo run --release --example objectives_ablation
//! ```
//!
//! The paper tunes for plain energy and names EDP, ED²P and TCO as future
//! objectives. All four are implemented; this example shows how the
//! optimal static configuration of one benchmark migrates as the
//! objective puts more weight on run time: energy tolerates slow clocks,
//! ED²P all but pins the core frequency at maximum.

use dvfs_ufs_tuning::ptf::{exhaustive, SearchSpace, TuningObjective};
use dvfs_ufs_tuning::simnode::Node;

fn main() {
    let node = Node::new(0, 3);
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let objectives = [
        TuningObjective::Energy,
        TuningObjective::Edp,
        TuningObjective::Ed2p,
        TuningObjective::Tco { rate_j_per_s: 150.0 },
    ];

    for name in ["Lulesh", "Mcbenchmark", "miniMD"] {
        let bench = dvfs_ufs_tuning::kernels::benchmark(name).expect("bundled");
        println!("\n{name}:");
        for obj in objectives {
            let (cfg, _) = exhaustive::search_static(&bench, &node, &space, obj);
            println!("  {:<8} -> {cfg}", obj.name());
        }
    }
    println!(
        "\ntime-weighted objectives (EDP, ED²P) pull both frequency domains up and\nkeep all 24 threads; plain energy is the most aggressive down-clocker."
    );
}
