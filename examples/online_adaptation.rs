//! Online adaptation: calibrate on miss, detect drift, write back.
//!
//! ```text
//! cargo run --release --example online_adaptation
//! ```
//!
//! The cluster warm-up story the online subsystem exists for. A *cold*
//! tuning-model repository — no design-time analysis ever ran — receives
//! eight submissions of the same workload across a three-node cluster:
//!
//! 1. Job 1 misses and **calibrates in-situ**: its early phase iterations
//!    sweep OpenMP threads, measure the phase, explore the search
//!    strategy's candidate configurations against live region energies,
//!    and converge each significant region; the learned tuning model is
//!    published back to the repository.
//! 2. Jobs 2..8 queue behind the calibration, then **hit** the published
//!    model (`ModelSource::Online`) and exploit it from iteration zero —
//!    the hit rate climbs from 0 % to 88 % within one scheduler run.
//! 3. The workload then **shifts** (the force kernel grows 45 %). Under
//!    application-level matching the stale model still serves, the
//!    drift detector's EWMA of observed vs. expected region energy fires
//!    on exactly the shifted region, the region re-explores its frequency
//!    neighbourhood mid-run, and the patched model is re-published with a
//!    bumped version — the final job serves it as an exact hit.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::RandomSearch;
use dvfs_ufs_tuning::rrl::{
    ClusterScheduler, MatchPolicy, OnlineConfig, OnlineTuning, TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::new(3, 0x5EED);
    let bench = kernels::benchmark("miniMD").expect("bundled benchmark");
    let strategy = RandomSearch::new(16, 7);
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };

    // A cold, bounded repository: no stored models, no fallback — without
    // online adaptation every job below would be an error.
    let mut repo = TuningModelRepository::new()
        .with_capacity(16)
        .with_match_policy(MatchPolicy::Application);

    println!("— warm-up: 8 cold submissions of miniMD on 3 nodes —\n");
    let mut scheduler = ClusterScheduler::new(&cluster)?.with_online(online);
    for i in 0..8 {
        scheduler.submit(format!("job-{i}"), bench.clone());
    }
    let report = scheduler.run(&mut repo)?;
    print!("{}", report.format_report());
    let calibrator = &report.jobs[0];
    println!(
        "\njob-0 calibrated in {} of {} iterations and published model v{}:",
        calibrator
            .accounting
            .online
            .as_ref()
            .map_or(0, |o| o.explored_iterations),
        bench.phase_iterations,
        calibrator.published_version.unwrap_or(0),
    );
    print!("{}", calibrator.accounting.format_sacct());

    // The workload shifts: the force kernel now does 45 % more work, so
    // the stored model's expectations are stale for it.
    let mut shifted = bench.clone();
    for region in &mut shifted.regions {
        if region.name == "compute_force" {
            region.character.instr_per_iter *= 1.45;
            region.character.dram_bytes_per_iter *= 1.45;
        }
    }
    println!("\n— workload shift: compute_force grows 45 % —\n");
    let mut shift_run = ClusterScheduler::new(&cluster)?.with_online(online);
    shift_run.submit("job-8-shifted", shifted.clone());
    let shift_report = shift_run.run(&mut repo)?;
    let job = &shift_report.jobs[0];
    for event in &job.drift {
        println!(
            "drift fired: region `{}` at iteration {} (observed/expected = {:.2})",
            event.region, event.at_iteration, event.ratio
        );
    }
    println!(
        "re-calibrated {} region(s) in place; re-published as model v{}",
        job.accounting
            .online
            .as_ref()
            .map_or(0, |o| o.recalibrated_regions),
        job.published_version.unwrap_or(0),
    );

    // A final submission of the shifted workload is an exact hit on the
    // patched model — no drift, no re-calibration.
    let mut final_run = ClusterScheduler::new(&cluster)?.with_online(online);
    final_run.submit("job-9-shifted", shifted.clone());
    let final_report = final_run.run(&mut repo)?;
    let final_job = &final_report.jobs[0];
    println!(
        "\njob-9 (shifted workload): source {:?}, {} drift events — the fleet is warm again",
        final_job.accounting.source,
        final_job.drift.len(),
    );
    let stats = repo.stats();
    println!(
        "repository after the full story: {} models, {} hits / {} misses ({} approx), \
         {} publications",
        repo.len(),
        stats.hits,
        stats.misses,
        stats.approx_hits,
        stats.publications,
    );
    Ok(())
}
