//! Memory-bound tuning: the Mcbenchmark story of Fig. 7 / Table IV.
//!
//! ```text
//! cargo run --release --example memory_bound_tuning
//! ```
//!
//! Demonstrates the detection side of the workflow: profile the
//! application, filter fine-granular regions, let `readex-dyn-detect`
//! find the significant regions and classify their intensity, then show
//! that the energy-optimal frequencies move the opposite way from a
//! compute-bound code (low core frequency, high uncore frequency).

use dvfs_ufs_tuning::ptf::{exhaustive, SearchSpace, TuningObjective};
use dvfs_ufs_tuning::scorep_lite::dyn_detect::{detect, DynDetectConfig};
use dvfs_ufs_tuning::scorep_lite::filter::{autofilter, DEFAULT_FILTER_THRESHOLD_S};
use dvfs_ufs_tuning::scorep_lite::instrument::StaticHook;
use dvfs_ufs_tuning::scorep_lite::{InstrumentationConfig, InstrumentedApp};
use dvfs_ufs_tuning::simnode::{Node, SystemConfig};

fn main() {
    let node = Node::new(0, 99);
    let bench = dvfs_ufs_tuning::kernels::benchmark("Mcbenchmark").expect("bundled");

    // Profiling run with full instrumentation.
    let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
    let profile_run = app.run(&mut StaticHook(SystemConfig::calibration()));

    // Run-time filtering.
    let filter = autofilter(&profile_run.profile, DEFAULT_FILTER_THRESHOLD_S);
    println!("filter file (fine-granular regions suppressed at compile time):");
    print!("{}", filter.to_scorep_syntax());

    // Significant-region detection.
    let filtered = InstrumentedApp::new(
        &bench,
        &node,
        InstrumentationConfig::scorep_defaults().with_filter(filter),
    )
    .run(&mut StaticHook(SystemConfig::calibration()));
    let config = detect(&bench.name, &filtered.profile, &DynDetectConfig::default());

    println!("\nsignificant regions (mean time > 100 ms):");
    for r in &config.significant_regions {
        println!(
            "  {:<20} mean {:>6.1} ms  weight {:>5.1}%  dynamism {:>4.2}  {:?}",
            r.name,
            r.mean_time_s * 1e3,
            r.weight * 100.0,
            r.time_dynamism,
            r.intensity
        );
    }
    println!("application worth tuning dynamically: {}", config.has_dynamism());

    // Exhaustive ground truth per region: the memory-bound signature.
    let space = SearchSpace::full(vec![20]);
    let names: Vec<String> = config.significant_regions.iter().map(|r| r.name.clone()).collect();
    let results =
        exhaustive::search_all_regions(&bench, &node, &space, TuningObjective::Energy, &names);
    println!("\nexhaustive per-region optima at 20 threads (paper Table IV: ~1.6|2.3):");
    for (name, cfg, _) in results {
        println!("  {name:<20} -> {cfg}");
    }
    println!(
        "\nmemory-bound signature: LOW core frequency, HIGH uncore frequency — the\nmirror image of the compute-bound Lulesh (Fig. 6 vs Fig. 7)."
    );
}
