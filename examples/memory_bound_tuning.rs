//! Memory-bound tuning: the Mcbenchmark story of Fig. 7 / Table IV.
//!
//! ```text
//! cargo run --release --example memory_bound_tuning
//! ```
//!
//! Demonstrates the detection side of the workflow using the session's
//! pre-processing stage: profile the application, filter fine-granular
//! regions, let `readex-dyn-detect` find the significant regions and
//! classify their intensity, then verify with the exhaustive strategy
//! that the energy-optimal frequencies move the opposite way from a
//! compute-bound code (low core frequency, high uncore frequency).

use dvfs_ufs_tuning::ptf::{ExhaustiveSearch, TuningSession};
use dvfs_ufs_tuning::scorep_lite::filter::{autofilter, DEFAULT_FILTER_THRESHOLD_S};
use dvfs_ufs_tuning::scorep_lite::instrument::StaticHook;
use dvfs_ufs_tuning::scorep_lite::{InstrumentationConfig, InstrumentedApp};
use dvfs_ufs_tuning::simnode::{Node, SystemConfig};

fn main() -> Result<(), dvfs_ufs_tuning::ptf::TuningError> {
    let node = Node::new(0, 99);
    let bench = dvfs_ufs_tuning::kernels::benchmark("Mcbenchmark").expect("bundled");

    // The filter file the pre-processing stage derives internally, shown
    // for illustration: a profiling run plus `scorep-autofilter`.
    let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
    let profile_run = app.run(&mut StaticHook(SystemConfig::calibration()));
    let filter = autofilter(&profile_run.profile, DEFAULT_FILTER_THRESHOLD_S);
    println!("filter file (fine-granular regions suppressed at compile time):");
    print!("{}", filter.to_scorep_syntax());

    // The session's pre-processing stage runs the same pipeline and ends
    // with the readex-dyn-detect configuration file.
    let preprocessed = TuningSession::builder(&node)
        .with_strategy(&ExhaustiveSearch)
        .preprocess(&bench)?;
    println!("\nsignificant regions (mean time > 100 ms):");
    for r in &preprocessed.config_file().significant_regions {
        println!(
            "  {:<20} mean {:>6.1} ms  weight {:>5.1}%  dynamism {:>4.2}  {:?}",
            r.name,
            r.mean_time_s * 1e3,
            r.weight * 100.0,
            r.time_dynamism,
            r.intensity
        );
    }
    println!(
        "application worth tuning dynamically: {}",
        preprocessed.config_file().has_dynamism()
    );

    // Exhaustive ground truth per region: the memory-bound signature.
    let advice = preprocessed
        .tune_threads()?
        .analyze()?
        .tune_frequencies()?
        .advice();
    println!(
        "\nexhaustive per-region optima at {} threads (paper Table IV: ~1.6|2.3):",
        advice.thread_tuning.best_threads
    );
    for (name, cfg, _) in &advice.region_best {
        println!("  {name:<20} -> {cfg}");
    }
    println!(
        "\nmemory-bound signature: LOW core frequency, HIGH uncore frequency — the\nmirror image of the compute-bound Lulesh (Fig. 6 vs Fig. 7)."
    );
    Ok(())
}
