//! Tuning a user-defined application.
//!
//! ```text
//! cargo run --release --example tune_custom_application
//! ```
//!
//! Shows the path a downstream user takes: describe your application's
//! regions with [`RegionCharacter`] builders (or measure them with the
//! real-kernel helpers), wrap them in a [`BenchmarkSpec`], and run the
//! same staged session the paper applies to its benchmark suite —
//! including writing the tuning model to disk and loading it back through
//! the `SCOREP_RRL_TMM_PATH`-style file interface.

use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
use dvfs_ufs_tuning::ptf::{EnergyModel, TuningSession};
use dvfs_ufs_tuning::rrl::{ModelSource, RuntimeSession, Savings, ServedModel, TuningModelManager};
use dvfs_ufs_tuning::simnode::{Node, RegionCharacter, SystemConfig};

fn main() {
    // A made-up CFD mini-app: a compute-heavy flux kernel, a
    // bandwidth-heavy halo exchange and a mixed limiter.
    let app = BenchmarkSpec::new(
        "my-cfd-app",
        Suite::Other,
        ProgrammingModel::Hybrid,
        20,
        vec![
            RegionSpec::new(
                "compute_fluxes",
                RegionCharacter::builder(2.5e10)
                    .ipc(1.9)
                    .parallel(0.995)
                    .dram_bytes(0.8 * 2.5e10)
                    .mix(0.26, 0.10, 0.08, 0.42)
                    .vectorised(0.7)
                    .build(),
            ),
            RegionSpec::new(
                "halo_exchange",
                RegionCharacter::builder(4e9)
                    .ipc(0.9)
                    .parallel(0.96)
                    .dram_bytes(4.5 * 4e9)
                    .stalls(0.7)
                    .build(),
            ),
            RegionSpec::new(
                "apply_limiter",
                RegionCharacter::builder(8e9)
                    .ipc(1.5)
                    .parallel(0.99)
                    .dram_bytes(1.6 * 8e9)
                    .branches(0.04, 0.5)
                    .build(),
            ),
        ],
    );

    let node = Node::new(0, 7);
    println!("training the energy model…");
    let model = EnergyModel::train_paper(&dvfs_ufs_tuning::kernels::training_set(), &node);

    let advice = TuningSession::builder(&node)
        .with_model(&model)
        .run(&app)
        .expect("session succeeds on a well-formed application");
    println!("\nper-region configurations for {}:", app.name);
    for (region, cfg, _) in &advice.region_best {
        println!("  {region:<18} -> {cfg}");
    }

    // Persist the tuning model the way READEX does, then load it back.
    let path = std::env::temp_dir().join("my-cfd-app.tm.json");
    std::fs::write(&path, advice.tuning_model.to_json()).expect("write tuning model");
    println!("\ntuning model written to {}", path.display());
    let tmm = TuningModelManager::from_path(&path).expect("reload tuning model");

    // Compare default vs dynamic through the event-driven runtime API.
    let default =
        RuntimeSession::static_run("cfd-default", &app, &node, SystemConfig::taurus_default())
            .expect("static run succeeds");
    let served = ServedModel {
        model: tmm.model().clone(),
        source: ModelSource::Repository,
        provenance: None,
    };
    let mut job = RuntimeSession::start("cfd-tuned", &app, &node, served)
        .expect("model validated against the node");
    job.run_to_completion().expect("event loop succeeds");
    let tuned = job.finish().expect("no region left open");
    let s = Savings::between(&default.record, &tuned.record);
    println!(
        "dynamic tuning: job {:.2}%  cpu {:.2}%  time {:.2}%",
        s.job_energy_pct, s.cpu_energy_pct, s.time_pct
    );
    print!("{}", tuned.format_sacct());
    std::fs::remove_file(&path).ok();
}
