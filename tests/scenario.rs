//! The scenario engine's first customers: generated heterogeneous
//! scenarios with injected faults, checked against the full invariant
//! catalog — plus the acceptance properties of the engine itself
//! (bit-identical replays, shrinking to a one-line repro) and the
//! regression locks on the documented eviction-pressure caveat and the
//! capability-gap degrade path.

use dvfs_ufs_tuning::rrl::ModelSource;
use testkit::{GeneratorConfig, Scenario, ScenarioGenerator};

/// Satellite 1 — the PR 4 property loop, beyond uniform fleets: for
/// 3 seeds × {16, 96} jobs, a generated scenario (heterogeneous
/// variability, capability gaps, mixed warm/cold workloads, Poisson
/// arrivals) with faults injected (aborts, refused calibrations, drift
/// shifts) still produces sequential↔parallel bit-identical reports —
/// `testkit::check` verifies every per-job field plus the aggregates,
/// the statistics double-entry and version integrity.
#[test]
fn generated_heterogeneous_scenarios_bit_identical_with_faults() {
    for seed in [0x5EED_u64, 0xBEEF, 0xC0FFEE] {
        for jobs in [16usize, 96] {
            let generator = ScenarioGenerator::new(GeneratorConfig {
                jobs,
                nodes: 4 + (seed % 3) as usize,
                workloads: 4,
                fault_fraction: 0.25,
                ..GeneratorConfig::default()
            });
            let scenario = generator.generate(seed);
            assert!(
                !scenario.faults.is_empty(),
                "seed {seed:#x}: the property must run *with* faults"
            );
            let run = testkit::check(&scenario)
                .unwrap_or_else(|failure| panic!("seed {seed:#x} jobs {jobs}:\n{failure}"));
            // The scenario actually exercised the messy paths it
            // generated: heterogeneous placement and online warm-up.
            assert!(run.parallel.nodes_used >= 2, "seed {seed:#x}");
            assert!(
                run.parallel.online_summary().calibrations >= 1,
                "seed {seed:#x}: at least one cold workload calibrated"
            );
        }
    }
}

/// Acceptance — a seeded scenario with injected faults reproduces
/// bit-identically across two independent runs (generation, fleet and
/// repository construction, fault injection, both event loops: all pure
/// functions of the scenario value).
#[test]
fn seeded_fault_scenario_reproduces_bit_identically() {
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 20,
        fault_fraction: 0.4,
        ..GeneratorConfig::default()
    });
    let scenario = generator.generate(0xD1CE);
    assert!(!scenario.faults.is_empty());

    let first = testkit::run_scenario(&scenario).expect("first run succeeds");
    let second = testkit::run_scenario(&scenario).expect("second run succeeds");
    for (a, b) in first.parallel.jobs.iter().zip(&second.parallel.jobs) {
        assert_eq!(a.job, b.job);
        assert_eq!(a.accounting.record, b.accounting.record, "{}", a.job);
        assert_eq!(a.accounting.regions, b.accounting.regions);
        assert_eq!(a.savings, b.savings);
        assert_eq!(a.drift, b.drift);
        assert_eq!(a.aborted_at, b.aborted_at);
        assert_eq!(a.rejection, b.rejection);
    }
    assert_eq!(first.parallel.aggregate, second.parallel.aggregate);
    assert_eq!(first.sequential.aggregate, second.sequential.aggregate);
    assert_eq!(first.shared_stats, second.shared_stats);
    // The faults visibly fired: at least one job was truncated.
    assert!(
        first.parallel.jobs.iter().any(|j| j.aborted_at.is_some()),
        "an abort fault must have fired"
    );
    // …and the replay line reruns the exact same scenario.
    let replayed = testkit::replay(&scenario.to_replay()).expect("replay passes the catalog");
    assert_eq!(
        replayed.parallel.aggregate, first.parallel.aggregate,
        "replay is bit-identical too"
    );
}

/// Satellite 2 — regression lock on the PR 4 documented caveat: when
/// generated repository pressure (capacity below the publishing-workload
/// count, single stripe) evicts publications *mid-run*, `run_parallel`
/// followers whose leader's model was already evicted re-calibrate like
/// the sequential path would — they must not pin the calibration
/// fallback, and the run must stay live.
#[test]
fn generated_eviction_pressure_recalibrates_evicted_followers() {
    // Deterministic shape (single worker — still the parallel event
    // loop: latch admission, SharedRepository, the evicted-publication
    // branch): two equal-length cold workloads whose leaders publish in
    // the same sweep through a generated capacity bound of 1, so the
    // second publication evicts the first *mid-run*, and the first
    // workload's followers — parked on an already-resolved latch — must
    // re-miss and re-calibrate.
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 6,
        workloads: 2,
        stored_fraction: 0.0, // all cold: every workload calibrates + publishes
        eviction_pressure: true,
        capability_gap_fraction: 0.0, // isolate the eviction behaviour
        fault_fraction: 0.0,
        workers: 1,
        ..GeneratorConfig::default()
    });
    let mut scenario = generator.generate(2);
    assert!(scenario.eviction_pressure());
    assert_eq!(
        scenario.repository.capacity, 1,
        "generated pressure: capacity = publishing workloads / 2"
    );
    // Make the two workloads event-count-identical (same regions, same
    // iterations — only the name and therefore the fingerprint differ)
    // so their leaders finish in the same sweep, and interleave the
    // trace leaders-first.
    let mut twin = scenario.workloads[0].bench.clone();
    twin.name = format!("{}-twin", twin.name);
    scenario.workloads[1].bench = twin;
    for (i, w) in [0usize, 1, 0, 0, 1, 1].into_iter().enumerate() {
        scenario.jobs[i].workload = w;
    }

    // Under pressure `check` deliberately skips seq↔par bit-identity
    // (the documented caveat) but still verifies double-entry, version
    // integrity and liveness.
    let run = testkit::check(&scenario).unwrap_or_else(|failure| panic!("{failure}"));
    let report = &run.parallel;
    assert!(
        report.repository.evictions > 0,
        "the second leader's publication evicts the first mid-run"
    );
    // The regression lock: every workload is calibratable, so *no* job
    // may end up pinned on the calibration fallback — evicted-publication
    // followers re-calibrate like the sequential path instead.
    for job in &report.jobs {
        assert_ne!(
            job.accounting.source,
            ModelSource::Fallback,
            "job {} pinned the fallback under eviction pressure",
            job.job
        );
    }
    let calibrations = report.online_summary().calibrations;
    assert!(
        calibrations > scenario.workloads.len(),
        "followers of the evicted workload re-calibrated \
         ({calibrations} calibrations for {} workloads)",
        scenario.workloads.len()
    );

    // The same lock under real concurrency: worker timing may change
    // *which* entries survive (the documented caveat) but never pins a
    // fallback, loses an eviction, or breaks double-entry/liveness.
    let mut concurrent = scenario.clone();
    concurrent.workers = 4;
    let run = testkit::check(&concurrent).unwrap_or_else(|failure| panic!("{failure}"));
    assert!(run.parallel.repository.evictions > 0);
    for job in &run.parallel.jobs {
        assert_ne!(job.accounting.source, ModelSource::Fallback, "{}", job.job);
    }
}

/// Satellite 3 — capability-gap fleets at scenario scale: jobs whose
/// full-width stored models land on gapped nodes degrade (with the
/// rejection naming job + node in the outcome and the report) instead of
/// aborting the run, identically in both event loops.
#[test]
fn capability_gap_scenarios_degrade_and_name_the_culprit() {
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 12,
        nodes: 4,
        workloads: 2,
        online: false,
        stored_fraction: 1.0,         // every workload serves a 24-thread model
        capability_gap_fraction: 0.6, // most nodes are gapped
        fault_fraction: 0.0,
        ..GeneratorConfig::default()
    });
    let mut rejections = 0usize;
    for seed in [11u64, 12, 13] {
        let scenario = generator.generate(seed);
        if !scenario.fleet.nodes.iter().any(|n| n.is_gapped()) {
            continue; // this seed sampled no gaps
        }
        let run =
            testkit::check(&scenario).unwrap_or_else(|failure| panic!("seed {seed}:\n{failure}"));
        for job in &run.parallel.jobs {
            if let Some(rejection) = &job.rejection {
                rejections += 1;
                assert_eq!(rejection.job, job.job, "rejection names its job");
                assert_eq!(rejection.node_id, job.node_id, "…and its node");
                assert_eq!(
                    job.accounting.source,
                    ModelSource::Fallback,
                    "degraded jobs run untuned"
                );
                assert_eq!(job.accounting.switches, 0);
                let text = run.parallel.format_report();
                assert!(
                    text.contains(&format!("{} on node {}", job.job, job.node_id)),
                    "{text}"
                );
            }
        }
    }
    assert!(rejections > 0, "gapped fleets must produce rejections");
}

/// Acceptance — the shrinker reduces a deliberately-failing scenario to
/// ≤ 3 jobs, and the emitted replay line re-triggers the same violation.
#[test]
fn shrinker_reduces_failing_scenario_to_replay_line() {
    // The planted "invariant": no job may be served the calibration
    // fallback. With cold workloads and no online tuning, fallback serves
    // are guaranteed — a deliberately failing scenario.
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 14,
        nodes: 4,
        workloads: 3,
        online: false,
        stored_fraction: 0.5,
        capability_gap_fraction: 0.0,
        fault_fraction: 0.3,
        ..GeneratorConfig::default()
    });
    let scenario = generator.generate(0xFA11);

    let fails = |s: &Scenario| -> Option<String> {
        let run = testkit::run_scenario(s).ok()?;
        run.parallel
            .jobs
            .iter()
            .any(|j| j.accounting.source == ModelSource::Fallback)
            .then(|| "fallback-served-job".to_string())
    };

    let shrunk = testkit::shrink(&scenario, &fails).expect("the scenario fails the invariant");
    assert_eq!(shrunk.violation, "fallback-served-job");
    assert!(
        shrunk.scenario.jobs.len() <= 3,
        "shrunk to {} jobs after {} attempts",
        shrunk.scenario.jobs.len(),
        shrunk.attempts
    );
    assert_eq!(shrunk.scenario.fleet.nodes.len(), 1);
    assert_eq!(shrunk.scenario.workers, 1);
    assert!(
        shrunk.scenario.workloads.len() < scenario.workloads.len(),
        "unused workloads pruned"
    );

    // The replay line is a complete, parseable repro that re-triggers
    // the same violation.
    let line = shrunk.replay_line();
    let reparsed = Scenario::from_replay(&line).expect("replay line parses");
    assert_eq!(reparsed, shrunk.scenario);
    assert_eq!(
        fails(&reparsed).as_deref(),
        Some("fallback-served-job"),
        "the minimal scenario still fails the same way"
    );
}

/// The drift-shift fault kind end to end: a monitored (drift-armed)
/// workload with an injected mid-run shift fires the detector, scoped
/// re-calibration runs, and the patched model is re-published — all
/// inside the bit-identity contract (testkit::check verified it above;
/// here the *shape* of the adaptation is asserted).
#[test]
fn injected_drift_shift_fires_detection_and_republication() {
    use testkit::{DriftShiftFault, StoredModel};

    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 6,
        nodes: 2,
        workloads: 1,
        stored_fraction: 1.0,
        capability_gap_fraction: 0.0,
        fault_fraction: 0.0,
        ..GeneratorConfig::default()
    });
    let mut scenario = generator.generate(0xD21F7);
    assert_eq!(scenario.workloads[0].stored, StoredModel::Calibrated);
    let bench = &scenario.workloads[0].bench;
    scenario.faults.drift_shifts.push(DriftShiftFault {
        job: scenario.jobs[2].name.clone(),
        region: bench.regions[0].name.clone(),
        from_iteration: bench.phase_iterations / 4,
        factor: 1.6,
    });

    let run = testkit::check(&scenario).unwrap_or_else(|failure| panic!("{failure}"));
    let shifted = &run.parallel.jobs[2];
    assert!(
        !shifted.drift.is_empty(),
        "the injected shift fires the detector: {:?}",
        shifted.drift
    );
    assert_eq!(
        shifted.drift[0].region,
        scenario.faults.drift_shifts[0].region
    );
    assert!(
        shifted.published_version.is_some(),
        "the re-calibrated model re-publishes with a bumped version"
    );
    // Accounting stays truthful: only the detector's view was scaled, so
    // the job's ledger matches its unshifted siblings' order of
    // magnitude (it re-explored, so it differs — but not by 1.6×).
    let sibling = &run.parallel.jobs[3];
    let ratio = shifted.accounting.record.job_energy_j / sibling.accounting.record.job_energy_j;
    assert!(
        (0.5..1.5).contains(&ratio),
        "injected shift must not corrupt the ledger (ratio {ratio})"
    );
}
