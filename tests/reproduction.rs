//! Reproduction-band tests: the paper's qualitative claims that must hold
//! in this implementation (the quantitative comparison lives in
//! EXPERIMENTS.md and the `bench-suite` binaries).

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{exhaustive, SearchSpace, TuningObjective};
use dvfs_ufs_tuning::simnode::{Cluster, ExecutionEngine, Node, SystemConfig};

/// Table V: static optima of the five test benchmarks, within one
/// frequency step of the paper and with exact thread counts.
#[test]
fn table5_static_optima_within_one_step() {
    let node = Node::exact(0);
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let expect: &[(&str, u32, u32, u32)] = &[
        // (name, threads, CF MHz, UCF MHz) — paper values.
        ("Lulesh", 24, 2400, 1700),
        ("Amg2013", 16, 2500, 2300),
        ("miniMD", 24, 2500, 1500),
        ("BEM4I", 24, 2300, 1900),
        ("Mcbenchmark", 20, 1600, 2500),
    ];
    for &(name, threads, cf, ucf) in expect {
        let bench = kernels::benchmark(name).unwrap();
        let (best, _) = exhaustive::search_static(&bench, &node, &space, TuningObjective::Energy);
        assert_eq!(
            best.threads, threads,
            "{name}: threads {} vs paper {threads}",
            best.threads
        );
        assert!(
            (best.core.mhz() as i64 - cf as i64).abs() <= 100,
            "{name}: CF {} vs paper {cf}",
            best.core.mhz()
        );
        assert!(
            (best.uncore.mhz() as i64 - ucf as i64).abs() <= 300,
            "{name}: UCF {} vs paper {ucf}",
            best.uncore.mhz()
        );
    }
}

/// Figures 2/3: power variability across nodes collapses under
/// normalisation.
#[test]
fn normalisation_collapses_node_variability() {
    let bench = kernels::benchmark("Lulesh").unwrap();
    let phase = bench.phase_character();
    let engine = ExecutionEngine::new();
    let cluster = Cluster::new(4, 0xBEEF);
    let calib = SystemConfig::calibration();

    let mut max_raw_spread: f64 = 0.0;
    let mut max_norm_spread: f64 = 0.0;
    for cf in (1200..=2500).step_by(100) {
        let cfg = SystemConfig::new(24, cf, 1500);
        let raw: Vec<f64> = cluster
            .iter()
            .map(|n| engine.run_region(&phase, &cfg, n).node_energy_j)
            .collect();
        let norm: Vec<f64> = cluster
            .iter()
            .map(|n| {
                engine.run_region(&phase, &cfg, n).node_energy_j
                    / engine.run_region(&phase, &calib, n).node_energy_j
            })
            .collect();
        let spread = |v: &[f64]| {
            let max = v.iter().fold(f64::MIN, |a, &b| a.max(b));
            let min = v.iter().fold(f64::MAX, |a, &b| a.min(b));
            (max - min) / min
        };
        max_raw_spread = max_raw_spread.max(spread(&raw));
        max_norm_spread = max_norm_spread.max(spread(&norm));
    }
    assert!(
        max_raw_spread > 0.01,
        "nodes must differ in raw energy ({max_raw_spread})"
    );
    assert!(
        max_norm_spread < max_raw_spread / 3.0,
        "normalisation must collapse the spread: raw {max_raw_spread}, norm {max_norm_spread}"
    );
}

/// Figures 6/7: compute-bound and memory-bound codes tune in opposite
/// frequency directions.
#[test]
fn fig6_fig7_frequency_dichotomy() {
    let node = Node::exact(0);
    let space24 = SearchSpace::full(vec![24]);
    let space20 = SearchSpace::full(vec![20]);

    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let (l_best, _) = exhaustive::search_static(&lulesh, &node, &space24, TuningObjective::Energy);

    let mcb = kernels::benchmark("Mcbenchmark").unwrap();
    let (m_best, _) = exhaustive::search_static(&mcb, &node, &space20, TuningObjective::Energy);

    assert!(
        l_best.core.mhz() >= 2300,
        "Lulesh core high: {}",
        l_best.core
    );
    assert!(
        l_best.uncore.mhz() <= 1900,
        "Lulesh uncore low: {}",
        l_best.uncore
    );
    assert!(m_best.core.mhz() <= 1800, "Mcb core low: {}", m_best.core);
    assert!(
        m_best.uncore.mhz() >= 2000,
        "Mcb uncore high: {}",
        m_best.uncore
    );
}

/// Section V-C: model-based tuning is orders of magnitude cheaper than
/// exhaustive per-region search.
#[test]
fn tuning_time_speedup_exceeds_two_orders_of_magnitude() {
    let space = SearchSpace::full(vec![12, 16, 20, 24]);
    let t = 10.0;
    let exhaustive_s = exhaustive::tuning_time_exhaustive(5, &space, t);
    // Our DTA consumes at most k + 1 + 49 + 18 phase-iteration
    // equivalents (thread sweep + analysis + recentring + verification).
    let model_s = exhaustive::tuning_time_model_based(4, 49 + 18, t);
    assert!(
        exhaustive_s / model_s >= 70.0,
        "speedup {}",
        exhaustive_s / model_s
    );
    // With per-phase-iteration experiments (progressive loops) the gap
    // widens by another factor of the iteration count.
    let model_iter_s = exhaustive::tuning_time_model_based(4, 49 + 18, t / 25.0);
    assert!(exhaustive_s / model_iter_s > 1000.0);
}

/// The 100 ms significance threshold exists because HDEEM cannot resolve
/// shorter regions (Section III-A).
#[test]
fn significance_threshold_matches_hdeem_resolution() {
    use dvfs_ufs_tuning::simnode::HdeemSensor;
    use rand::SeedableRng;
    let sensor = HdeemSensor::taurus();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    // A 100 ms region yields ≥ 90 usable samples; a 10 ms region < 10.
    let long = sensor.measure(250.0, 0.100, &mut rng);
    let short = sensor.measure(250.0, 0.010, &mut rng);
    assert!(long.samples >= 90, "long region samples {}", long.samples);
    assert!(short.samples < 10, "short region samples {}", short.samples);
    // Relative quantisation error of the long region stays small.
    let exact = 250.0 * 0.100;
    assert!((long.energy_j - exact).abs() / exact < 0.06);
}

/// MSR-level check: applying a configuration programs every core and
/// socket register (the x86_adapt path).
#[test]
fn frequencies_are_applied_through_msrs() {
    use dvfs_ufs_tuning::simnode::msr::{IA32_PERF_CTL, MSR_UNCORE_RATIO_LIMIT};
    let node = Node::exact(0);
    node.apply_frequencies(&SystemConfig::new(24, 1700, 2100));
    for core in 0..24 {
        let raw = node.msr().read(core, IA32_PERF_CTL).unwrap();
        assert_eq!((raw >> 8) & 0xFF, 17, "core {core} ratio");
    }
    for socket in 0..2 {
        let raw = node.msr().read(socket, MSR_UNCORE_RATIO_LIMIT).unwrap();
        assert_eq!(raw & 0x7F, 21, "socket {socket} max ratio");
    }
}
