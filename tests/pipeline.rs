//! End-to-end integration tests across all crates: the full paper pipeline
//! from benchmark description through DTA to RRL production runs.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{EnergyModel, TuningModel, TuningPlugin, TuningSession};
use dvfs_ufs_tuning::rrl::{ModelSource, RuntimeSession, Savings, ServedModel, TuningModelManager};
use dvfs_ufs_tuning::scorep_lite::{InstrumentationConfig, InstrumentedApp};
use dvfs_ufs_tuning::simnode::{Node, SystemConfig};

/// Shared model: training once keeps the debug-mode test binary fast.
fn model(node: &Node) -> EnergyModel {
    use std::sync::OnceLock;
    static MODEL: OnceLock<String> = OnceLock::new();
    let json = MODEL.get_or_init(|| {
        let m = EnergyModel::train_paper(&kernels::training_set(), node);
        serde_json::to_string(&m).expect("model serialises")
    });
    serde_json::from_str(json).expect("model deserialises")
}

#[test]
fn dta_to_rrl_round_trip_via_tuning_model_file() {
    let node = Node::exact(0);
    let model = model(&node);
    let bench = kernels::benchmark("miniMD").unwrap();

    // Design time: produce and persist the tuning model.
    let advice = TuningSession::builder(&node)
        .with_model(&model)
        .run(&bench)
        .expect("session succeeds");
    let dir = std::env::temp_dir().join("dvfs-ufs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("minimd.tm.json");
    std::fs::write(&path, advice.tuning_model.to_json()).unwrap();

    // Production: load through the TMM (the SCOREP_RRL_TMM_PATH path) and
    // serve it to an event-driven runtime session.
    let tmm = TuningModelManager::from_path(&path).expect("tuning model loads");
    assert_eq!(tmm.model().application, "miniMD");
    let default =
        RuntimeSession::static_run("default", &bench, &node, SystemConfig::taurus_default())
            .expect("static run succeeds");
    let served = ServedModel {
        model: tmm.model().clone(),
        source: ModelSource::Repository,
        provenance: None,
    };
    let mut job = RuntimeSession::start("tuned", &bench, &node, served).expect("session starts");
    job.run_to_completion().expect("event loop succeeds");
    let tuned = job.finish().expect("finish succeeds");
    let savings = Savings::between(&default.record, &tuned.record);

    assert!(
        savings.cpu_energy_pct > 3.0,
        "dynamic CPU savings too small: {savings:?}"
    );
    assert!(
        savings.job_energy_pct > 0.0,
        "dynamic job savings negative: {savings:?}"
    );
    assert!(
        tuned.switches > 0,
        "RRL must actually switch configurations"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
#[allow(deprecated)]
fn deprecated_shims_still_drive_the_legacy_path() {
    use dvfs_ufs_tuning::rrl::{run_static, JobRecord, RrlHook};
    let bench = kernels::benchmark("miniMD").unwrap();
    let node = Node::exact(0);
    let default = run_static(&bench, &node, SystemConfig::taurus_default());
    let tm = TuningModel::new(
        "miniMD",
        &[("compute_force".into(), SystemConfig::new(24, 2500, 1500))],
        SystemConfig::new(24, 2500, 1500),
    );
    let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
    let mut hook = RrlHook::new(tm);
    let tuned = app.run(&mut hook);
    let savings = Savings::between(&default, &JobRecord::from_run(&tuned));
    assert!(savings.cpu_energy_pct > 0.0, "{savings:?}");
    assert!(hook.lookups() > 0);
}

#[test]
fn plugin_interface_drives_the_same_pipeline() {
    use dvfs_ufs_tuning::ptf::DvfsUfsPlugin;
    let node = Node::exact(0);
    let mut plugin = DvfsUfsPlugin::new(model(&node));
    plugin.initialize(&kernels::benchmark("BEM4I").unwrap());
    let report = plugin.tune(&node).expect("tune after initialize succeeds");
    assert_eq!(
        report.config_file.significant_regions.len(),
        4,
        "BEM4I has 4 significant regions"
    );
    let tm = plugin
        .tuning_model()
        .expect("tuning model available after tune()");
    // Every significant region resolves to a scenario config.
    for region in report.config_file.region_names() {
        let cfg = tm.lookup(region);
        assert!(cfg.threads >= 12 && cfg.threads <= 24);
    }
}

#[test]
fn dynamic_tuning_tracks_region_heterogeneity() {
    // A deliberately two-faced application: one compute region, one
    // memory region. The tuning model must assign them different
    // configurations and the dynamic run must beat the best *single*
    // configuration chosen from the two region optima.
    use dvfs_ufs_tuning::kernels::{BenchmarkSpec, ProgrammingModel, RegionSpec, Suite};
    use dvfs_ufs_tuning::simnode::RegionCharacter;

    let app = BenchmarkSpec::new(
        "two-faced",
        Suite::Other,
        ProgrammingModel::Hybrid,
        10,
        vec![
            RegionSpec::new(
                "burn_flops",
                RegionCharacter::builder(3e10)
                    .ipc(2.1)
                    .parallel(0.997)
                    .dram_bytes(0.2 * 3e10)
                    .stalls(0.1)
                    .build(),
            ),
            RegionSpec::new(
                "stream_bytes",
                RegionCharacter::builder(4e9)
                    .ipc(0.9)
                    .parallel(0.97)
                    .dram_bytes(5.5 * 4e9)
                    .stalls(0.75)
                    .build(),
            ),
        ],
    );
    let node = Node::exact(0);
    let model = model(&node);
    let advice = TuningSession::builder(&node)
        .with_model(&model)
        .run(&app)
        .expect("session succeeds");
    let configs: Vec<_> = advice.region_best.iter().map(|(_, c, _)| *c).collect();
    assert_eq!(configs.len(), 2);
    // The per-region configs should differ (heterogeneity recognised)…
    // within the verified neighbourhood they at least must not be forced
    // equal when the optima differ.
    let tm = &advice.tuning_model;
    assert!(tm.scenario_count() >= 1);
    // The compute region prefers at least as high a core frequency.
    let c_burn = tm.lookup("burn_flops");
    let c_stream = tm.lookup("stream_bytes");
    assert!(
        c_burn.core.mhz() >= c_stream.core.mhz(),
        "compute region must not clock lower than the streaming region: {c_burn} vs {c_stream}"
    );
}

#[test]
fn tuning_model_survives_json_round_trip_with_lookup_semantics() {
    let tm = TuningModel::new(
        "app",
        &[
            ("hot".into(), SystemConfig::new(24, 2400, 1700)),
            ("cold".into(), SystemConfig::new(16, 1600, 2300)),
        ],
        SystemConfig::taurus_default(),
    );
    let back = TuningModel::from_json(&tm.to_json()).unwrap();
    for region in ["hot", "cold", "unknown"] {
        assert_eq!(
            tm.lookup(region),
            back.lookup(region),
            "lookup differs for {region}"
        );
    }
}

#[test]
fn instrumented_run_is_reproducible_on_exact_nodes() {
    let bench = kernels::benchmark("FT").unwrap();
    let a = {
        let node = Node::exact(1);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        app.run(&mut dvfs_ufs_tuning::scorep_lite::instrument::StaticHook(
            SystemConfig::taurus_default(),
        ))
    };
    let b = {
        let node = Node::exact(1);
        let app = InstrumentedApp::new(&bench, &node, InstrumentationConfig::scorep_defaults());
        app.run(&mut dvfs_ufs_tuning::scorep_lite::instrument::StaticHook(
            SystemConfig::taurus_default(),
        ))
    };
    assert_eq!(a.wall_time_s, b.wall_time_s);
    assert_eq!(a.job_energy_j, b.job_energy_j);
    assert_eq!(a.cpu_energy_j, b.cpu_energy_j);
}
