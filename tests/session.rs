//! Integration tests for the staged `TuningSession` API: every tuning
//! objective driven end to end, all three search strategies, and the
//! batch driver's cache transparency property.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{
    BatchDriver, EnergyModel, ExhaustiveSearch, RandomSearch, TuningError, TuningObjective,
    TuningSession,
};
use dvfs_ufs_tuning::simnode::Node;

/// Shared model: training once keeps the debug-mode test binary fast.
fn model(node: &Node) -> EnergyModel {
    use std::sync::OnceLock;
    static MODEL: OnceLock<String> = OnceLock::new();
    let json = MODEL.get_or_init(|| {
        let m = EnergyModel::train_paper(&kernels::training_set(), node);
        serde_json::to_string(&m).expect("model serialises")
    });
    serde_json::from_str(json).expect("model deserialises")
}

#[test]
fn all_four_objectives_tune_end_to_end() {
    let node = Node::exact(0);
    let model = model(&node);
    let bench = kernels::benchmark("Lulesh").unwrap();
    let objectives = [
        TuningObjective::Energy,
        TuningObjective::Edp,
        TuningObjective::Ed2p,
        TuningObjective::Tco {
            rate_j_per_s: 150.0,
        },
    ];

    let mut phase_bests = Vec::new();
    for obj in objectives {
        let advice = TuningSession::builder(&node)
            .with_model(&model)
            .with_objective(obj)
            .run(&bench)
            .unwrap_or_else(|e| panic!("objective {} failed: {e}", obj.name()));
        assert_eq!(advice.objective, obj);
        assert_eq!(advice.tuning_model.application, "Lulesh");
        assert_eq!(
            advice.region_best.len(),
            5,
            "{}: all regions verified",
            obj.name()
        );
        assert!(advice.tuning_model.scenario_count() >= 1);
        phase_bests.push((obj, advice.phase_best));
    }

    // The more time-weighted the objective, the higher (never lower) the
    // chosen core frequency: Energy ≤ EDP ≤ ED²P.
    let cf = |i: usize| phase_bests[i].1.core.mhz();
    assert!(cf(0) <= cf(1), "EDP must not clock below plain energy");
    assert!(cf(1) <= cf(2), "ED²P must not clock below EDP");
}

#[test]
fn strategies_agree_on_the_winning_personality() {
    // All three strategies must find the compute-bound shape for Lulesh;
    // the model-based one with far fewer experiments than exhaustive.
    let node = Node::exact(0);
    let model = model(&node);
    let bench = kernels::benchmark("Lulesh").unwrap();

    let model_based = TuningSession::builder(&node)
        .with_model(&model)
        .run(&bench)
        .expect("model-based session");
    let exhaustive = TuningSession::builder(&node)
        .with_strategy(&ExhaustiveSearch)
        .run(&bench)
        .expect("exhaustive session");
    let random = RandomSearch::new(32, 11);
    let sampled = TuningSession::builder(&node)
        .with_strategy(&random)
        .run(&bench)
        .expect("random session");

    for (name, advice) in [
        ("model-based", &model_based),
        ("exhaustive", &exhaustive),
        ("random", &sampled),
    ] {
        assert!(
            advice.phase_best.core.mhz() >= 2100,
            "{name}: compute-bound Lulesh wants high CF, got {}",
            advice.phase_best
        );
        assert!(
            advice.phase_best.uncore.mhz() <= 2200,
            "{name}: compute-bound Lulesh wants low-mid UCF, got {}",
            advice.phase_best
        );
    }
    assert!(
        model_based.experiments * 10 < exhaustive.experiments,
        "model-based ({}) must be an order of magnitude cheaper than exhaustive ({})",
        model_based.experiments,
        exhaustive.experiments
    );
}

#[test]
fn batch_driver_is_cache_transparent_for_every_objective() {
    // The cached batch path must be bit-identical to the uncached session
    // for each objective (the cache stores measurements, and scoring
    // happens after the cache).
    let node = Node::exact(0);
    let model = model(&node);
    let bench = kernels::benchmark("miniMD").unwrap();
    for obj in [
        TuningObjective::Energy,
        TuningObjective::Edp,
        TuningObjective::Ed2p,
        TuningObjective::Tco { rate_j_per_s: 80.0 },
    ] {
        let uncached = TuningSession::builder(&node)
            .with_model(&model)
            .with_objective(obj)
            .run(&bench)
            .expect("uncached session");
        let driver = BatchDriver::new(&node)
            .with_model(&model)
            .with_objective(obj);
        let cached = driver.tune(&bench).expect("cached session");
        assert_eq!(uncached.tuning_model, cached.tuning_model, "{}", obj.name());
        assert_eq!(uncached.phase_best, cached.phase_best);
        for ((na, ca, ea), (nb, cb, eb)) in uncached.region_best.iter().zip(&cached.region_best) {
            assert_eq!((na, ca), (nb, cb), "{}", obj.name());
            assert_eq!(
                ea.to_bits(),
                eb.to_bits(),
                "{}: region {na} energy bits",
                obj.name()
            );
        }
    }
}

#[test]
fn batch_driver_saves_work_on_resubmission() {
    let node = Node::exact(0);
    let model = model(&node);
    let bench = kernels::benchmark("BEM4I").unwrap();
    let driver = BatchDriver::new(&node).with_model(&model);
    let first = driver.tune(&bench).expect("first tune");
    let second = driver.tune(&bench).expect("second tune");
    assert!(first.engine_runs > 0);
    assert_eq!(
        second.engine_runs, 0,
        "resubmission must be fully cache-served"
    );
    assert_eq!(first.tuning_model, second.tuning_model);
    assert!(driver.cache_stats().hits >= first.engine_requests);
}

#[test]
fn misuse_surfaces_as_errors_not_panics() {
    let node = Node::exact(0);
    let bench = kernels::benchmark("EP").unwrap();
    // Model-based strategy without a model.
    let err = TuningSession::builder(&node).run(&bench).unwrap_err();
    assert!(matches!(err, TuningError::MissingModel { .. }));
    assert!(err.to_string().contains("with_model"));
}
