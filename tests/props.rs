//! Property-based tests over the core data structures and the simulator's
//! physical invariants.
//!
//! Implemented as seeded-RNG property loops (the offline toolchain has no
//! proptest): each property draws 64 random cases from the same generator
//! strategies the original proptest suite used, so failures reproduce
//! deterministically from the fixed seed.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use dvfs_ufs_tuning::enermodel::linalg::Matrix;
use dvfs_ufs_tuning::enermodel::scaler::StandardScaler;
use dvfs_ufs_tuning::enermodel::vif::vif_all;
use dvfs_ufs_tuning::ptf::TuningModel;
use dvfs_ufs_tuning::scorep_lite::{parse_trace, TraceReader, TraceWriter};
use dvfs_ufs_tuning::simnode::{ExecutionEngine, FreqDomain, Node, RegionCharacter, SystemConfig};

const CASES: usize = 64;

fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn uniform_u32(rng: &mut StdRng, lo: u32, hi: u32) -> u32 {
    lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32
}

/// Random valid region character (same ranges as the original strategy).
fn character(rng: &mut StdRng) -> RegionCharacter {
    let ins = uniform(rng, 1e8, 1e11);
    RegionCharacter::builder(ins)
        .ipc(uniform(rng, 0.5, 2.6))
        .parallel(uniform(rng, 0.8, 0.9995))
        .dram_bytes(uniform(rng, 0.0, 6.0) * ins)
        .stalls(uniform(rng, 0.0, 0.95))
        .overlap(uniform(rng, 0.5, 0.95))
        .build()
}

/// Random valid system configuration on the Haswell domains.
fn config(rng: &mut StdRng) -> SystemConfig {
    SystemConfig::new(
        uniform_u32(rng, 1, 24),
        uniform_u32(rng, 12, 25) * 100,
        uniform_u32(rng, 13, 30) * 100,
    )
}

fn random_name(rng: &mut StdRng) -> String {
    let len = 1 + (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
        .collect()
}

/// Energy equals power times duration, and both sensors agree on ordering
/// (node ≥ cpu).
#[test]
fn energy_is_power_times_time() {
    let mut rng = StdRng::seed_from_u64(0xE0);
    let engine = ExecutionEngine::new();
    let node = Node::exact(0);
    for _ in 0..CASES {
        let c = character(&mut rng);
        let cfg = config(&mut rng);
        let run = engine.run_region(&c, &cfg, &node);
        assert!(run.duration_s > 0.0);
        assert!((run.node_energy_j - run.power.node_w() * run.duration_s).abs() < 1e-9);
        assert!(run.cpu_energy_j < run.node_energy_j);
        assert!(run.t_comp_s >= 0.0 && run.t_mem_s >= 0.0);
        assert!(run.duration_s + 1e-12 >= run.t_comp_s.max(run.t_mem_s));
    }
}

/// Raising the core frequency never slows a region down; raising the
/// uncore frequency never slows it down either.
#[test]
fn time_is_monotone_in_frequencies() {
    let mut rng = StdRng::seed_from_u64(0x71);
    let engine = ExecutionEngine::new();
    for _ in 0..CASES {
        let c = character(&mut rng);
        let cfg = config(&mut rng);
        let (t0, ..) = engine.timing(&c, &cfg);
        if cfg.core.mhz() < 2500 {
            let (t1, ..) = engine.timing(&c, &cfg.with_core_mhz(cfg.core.mhz() + 100));
            assert!(t1 <= t0 + 1e-15, "CF up must not slow down: {t0} -> {t1}");
        }
        if cfg.uncore.mhz() < 3000 {
            let (t2, ..) = engine.timing(&c, &cfg.with_uncore_mhz(cfg.uncore.mhz() + 100));
            assert!(t2 <= t0 + 1e-15, "UCF up must not slow down: {t0} -> {t2}");
        }
    }
}

/// More threads never slow down a pure-compute region.
#[test]
fn compute_bound_threads_monotone() {
    let mut rng = StdRng::seed_from_u64(0x7C);
    let engine = ExecutionEngine::new();
    for _ in 0..CASES {
        let ins = uniform(&mut rng, 1e9, 1e11);
        let t = uniform_u32(&mut rng, 1, 23);
        let c = RegionCharacter::builder(ins)
            .ipc(2.0)
            .parallel(0.999)
            .dram_bytes(0.0)
            .build();
        let cfg = SystemConfig::new(t, 2500, 2000);
        let (t0, ..) = engine.timing(&c, &cfg);
        let (t1, ..) = engine.timing(&c, &cfg.with_threads(t + 1));
        assert!(
            t1 <= t0 + 1e-15,
            "threads up slowed pure compute: {t0} -> {t1}"
        );
    }
}

/// Frequency domain snap always lands inside the domain, and
/// neighbourhoods contain their centre.
#[test]
fn freq_domain_snap_and_neighbourhood() {
    let mut rng = StdRng::seed_from_u64(0x5A);
    let d = FreqDomain::haswell_core();
    for _ in 0..CASES {
        let mhz = (rng.next_u64() % 5000) as u32;
        let radius = (rng.next_u64() % 4) as u32;
        let snapped = d.snap(mhz);
        assert!(
            d.contains(snapped),
            "snap({mhz}) = {snapped} outside domain"
        );
        let hood = d.neighbourhood(mhz, radius);
        assert!(hood.contains(&snapped));
        assert!(hood.len() <= 2 * radius as usize + 1);
        for f in hood {
            assert!(d.contains(f));
        }
    }
}

/// Standard scaler round-trips arbitrary matrices.
#[test]
fn scaler_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5C);
    for _ in 0..CASES {
        let nrows = 2 + (rng.next_u64() % 18) as usize;
        let rows: Vec<Vec<f64>> = (0..nrows)
            .map(|_| (0..4).map(|_| uniform(&mut rng, -1e6, 1e6)).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        let sc = StandardScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        assert!(m.max_abs_diff(&back) < 1e-6);
    }
}

/// VIF values are always ≥ 1 (or infinite) for non-degenerate input.
#[test]
fn vif_at_least_one() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    for _ in 0..CASES {
        let nrows = 8 + (rng.next_u64() % 16) as usize;
        let rows: Vec<Vec<f64>> = (0..nrows)
            .map(|_| (0..3).map(|_| uniform(&mut rng, -1e3, 1e3)).collect())
            .collect();
        let m = Matrix::from_rows(&rows);
        for v in vif_all(&m) {
            assert!(v >= 1.0 - 1e-6 || v.is_infinite());
        }
    }
}

/// Trace serialisation round-trips arbitrary region event sequences.
#[test]
fn trace_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7A);
    for _ in 0..CASES {
        let n = 1 + (rng.next_u64() % 29) as usize;
        let durations: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 999_999).collect();
        let mut w = TraceWriter::new();
        let phase = w.define_region("PHASE");
        let r = w.define_region("region");
        let mut t = 0u64;
        w.enter(phase, t);
        for d in &durations {
            w.enter(r, t);
            t += d;
            w.leave(r, t, *d as f64 * 0.1, None);
        }
        w.leave(phase, t, 1.0, None);
        let trace = w.finish();
        let back = TraceReader::read(trace.to_bytes()).expect("round trip");
        assert_eq!(trace, back);
        let summary = parse_trace(&back).expect("parse");
        assert_eq!(summary.phase_instances.len(), 1);
    }
}

/// Tuning-model lookup is total: any region name resolves to a valid
/// configuration, known names to a configuration that was associated with
/// them.
#[test]
fn tuning_model_lookup_total() {
    let mut rng = StdRng::seed_from_u64(0x70);
    for _ in 0..CASES {
        let nnames = 1 + (rng.next_u64() % 7) as usize;
        let names: Vec<String> = (0..nnames).map(|_| random_name(&mut rng)).collect();
        let cfgs: Vec<SystemConfig> = (0..8).map(|_| config(&mut rng)).collect();
        let probe = random_name(&mut rng);
        let pairs: Vec<(String, SystemConfig)> =
            names.iter().cloned().zip(cfgs.iter().copied()).collect();
        let phase = cfgs[7];
        let tm = TuningModel::new("app", &pairs, phase);
        for (name, _) in &pairs {
            // When a name repeats, the classifier keeps the last insert;
            // either way the lookup must resolve to one of the configs
            // that was associated with this name.
            let candidates: Vec<_> = pairs
                .iter()
                .filter(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .collect();
            let got = tm.lookup(name);
            assert!(
                candidates.contains(&got),
                "{name}: {got:?} not in {candidates:?}"
            );
        }
        if !names.contains(&probe) {
            assert_eq!(tm.lookup(&probe), phase);
        }
    }
}

/// Tuning models survive JSON *bit-identically*: serialize → parse →
/// re-serialize yields the same bytes, and the parsed model is equal to
/// the original. This pins the `TuningModelRepository`'s storage format
/// (models are stored in serialized form and re-parsed on every serve).
#[test]
fn tuning_model_json_round_trip_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x7B17);
    for case in 0..CASES {
        let nregions = 1 + (rng.next_u64() % 8) as usize;
        let pairs: Vec<(String, SystemConfig)> = (0..nregions)
            .map(|_| (random_name(&mut rng), config(&mut rng)))
            .collect();
        let tm = TuningModel::new(random_name(&mut rng), &pairs, config(&mut rng));

        let json = tm.to_json();
        let parsed = TuningModel::from_json(&json).expect("storage format parses");
        assert_eq!(tm, parsed, "case {case}: parse must reconstruct the model");
        let rejson = parsed.to_json();
        assert_eq!(
            json, rejson,
            "case {case}: re-serialisation must be byte-identical"
        );
        // And the repository's unit of storage — the serialized string —
        // keeps lookup semantics intact.
        for (region, _) in &pairs {
            assert_eq!(tm.lookup(region), parsed.lookup(region));
        }
    }
}

/// System configurations survive JSON.
#[test]
fn config_serde_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x53);
    for _ in 0..CASES {
        let cfg = config(&mut rng);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}

/// Node energy at any configuration is bounded by physical sanity:
/// a node never draws less than the blade floor nor more than 500 W.
#[test]
fn node_power_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB0);
    let engine = ExecutionEngine::new();
    let node = Node::exact(0);
    for _ in 0..CASES {
        let c = character(&mut rng);
        let cfg = config(&mut rng);
        let run = engine.run_region(&c, &cfg, &node);
        let watts = run.power.node_w();
        assert!(watts > 70.0, "below blade floor: {watts}");
        assert!(watts < 500.0, "implausible draw: {watts}");
    }
}
