//! Property-based tests (proptest) over the core data structures and the
//! simulator's physical invariants.

use proptest::prelude::*;

use dvfs_ufs_tuning::enermodel::linalg::Matrix;
use dvfs_ufs_tuning::enermodel::scaler::StandardScaler;
use dvfs_ufs_tuning::enermodel::vif::vif_all;
use dvfs_ufs_tuning::ptf::TuningModel;
use dvfs_ufs_tuning::scorep_lite::{parse_trace, TraceReader, TraceWriter};
use dvfs_ufs_tuning::simnode::{
    ExecutionEngine, FreqDomain, Node, RegionCharacter, SystemConfig,
};

/// Strategy for a valid region character.
fn character() -> impl Strategy<Value = RegionCharacter> {
    (
        1e8..1e11f64,                 // instructions
        0.5..2.6f64,                  // ipc
        0.8..0.9995f64,               // parallel fraction
        0.0..6.0f64,                  // dram bytes per instruction
        0.0..0.95f64,                 // stalls
        0.5..0.95f64,                 // overlap
    )
        .prop_map(|(ins, ipc, p, ratio, stalls, overlap)| {
            RegionCharacter::builder(ins)
                .ipc(ipc)
                .parallel(p)
                .dram_bytes(ratio * ins)
                .stalls(stalls)
                .overlap(overlap)
                .build()
        })
}

/// Strategy for a valid system configuration on the Haswell domains.
fn config() -> impl Strategy<Value = SystemConfig> {
    (1u32..=24, 12u32..=25, 13u32..=30)
        .prop_map(|(t, cf, ucf)| SystemConfig::new(t, cf * 100, ucf * 100))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Energy equals power times duration, and both sensors agree on
    /// ordering (node ≥ cpu).
    #[test]
    fn energy_is_power_times_time(c in character(), cfg in config()) {
        let engine = ExecutionEngine::new();
        let node = Node::exact(0);
        let run = engine.run_region(&c, &cfg, &node);
        prop_assert!(run.duration_s > 0.0);
        prop_assert!((run.node_energy_j - run.power.node_w() * run.duration_s).abs() < 1e-9);
        prop_assert!(run.cpu_energy_j < run.node_energy_j);
        prop_assert!(run.t_comp_s >= 0.0 && run.t_mem_s >= 0.0);
        prop_assert!(run.duration_s + 1e-12 >= run.t_comp_s.max(run.t_mem_s));
    }

    /// Raising the core frequency never slows a region down; raising the
    /// uncore frequency never slows it down either.
    #[test]
    fn time_is_monotone_in_frequencies(c in character(), cfg in config()) {
        let engine = ExecutionEngine::new();
        let (t0, ..) = engine.timing(&c, &cfg);
        if cfg.core.mhz() < 2500 {
            let (t1, ..) = engine.timing(&c, &cfg.with_core_mhz(cfg.core.mhz() + 100));
            prop_assert!(t1 <= t0 + 1e-15, "CF up must not slow down: {t0} -> {t1}");
        }
        if cfg.uncore.mhz() < 3000 {
            let (t2, ..) = engine.timing(&c, &cfg.with_uncore_mhz(cfg.uncore.mhz() + 100));
            prop_assert!(t2 <= t0 + 1e-15, "UCF up must not slow down: {t0} -> {t2}");
        }
    }

    /// More threads never slow down a region whose queue sensitivity is
    /// moderate (bandwidth curve is normalised to peak near full threads).
    #[test]
    fn compute_bound_threads_monotone(ins in 1e9..1e11f64, t in 1u32..24) {
        let c = RegionCharacter::builder(ins).ipc(2.0).parallel(0.999).dram_bytes(0.0).build();
        let engine = ExecutionEngine::new();
        let cfg = SystemConfig::new(t, 2500, 2000);
        let (t0, ..) = engine.timing(&c, &cfg);
        let (t1, ..) = engine.timing(&c, &cfg.with_threads(t + 1));
        prop_assert!(t1 <= t0 + 1e-15, "threads up slowed pure compute: {t0} -> {t1}");
    }

    /// Frequency domain snap always lands inside the domain, and
    /// neighbourhoods contain their centre.
    #[test]
    fn freq_domain_snap_and_neighbourhood(mhz in 0u32..5000, radius in 0u32..4) {
        let d = FreqDomain::haswell_core();
        let snapped = d.snap(mhz);
        prop_assert!(d.contains(snapped), "snap({mhz}) = {snapped} outside domain");
        let hood = d.neighbourhood(mhz, radius);
        prop_assert!(hood.contains(&snapped));
        prop_assert!(hood.len() <= (2 * radius as usize + 1));
        for f in hood {
            prop_assert!(d.contains(f));
        }
    }

    /// Standard scaler round-trips arbitrary matrices.
    #[test]
    fn scaler_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec(-1e6..1e6f64, 4), 2..20)) {
        let m = Matrix::from_rows(&rows);
        let sc = StandardScaler::fit(&m);
        let back = sc.inverse_transform(&sc.transform(&m));
        prop_assert!(m.max_abs_diff(&back) < 1e-6);
    }

    /// VIF values are always ≥ 1 (or infinite) for non-degenerate input.
    #[test]
    fn vif_at_least_one(rows in proptest::collection::vec(
        proptest::collection::vec(-1e3..1e3f64, 3), 8..24)) {
        let m = Matrix::from_rows(&rows);
        for v in vif_all(&m) {
            prop_assert!(v >= 1.0 - 1e-6 || v.is_infinite());
        }
    }

    /// Trace serialisation round-trips arbitrary region event sequences.
    #[test]
    fn trace_round_trip(durations in proptest::collection::vec(1u64..1_000_000, 1..30)) {
        let mut w = TraceWriter::new();
        let phase = w.define_region("PHASE");
        let r = w.define_region("region");
        let mut t = 0u64;
        w.enter(phase, t);
        for d in &durations {
            w.enter(r, t);
            t += d;
            w.leave(r, t, *d as f64 * 0.1, None);
        }
        w.leave(phase, t, 1.0, None);
        let trace = w.finish();
        let back = TraceReader::read(trace.to_bytes()).expect("round trip");
        prop_assert_eq!(&trace, &back);
        let summary = parse_trace(&back).expect("parse");
        prop_assert_eq!(summary.phase_instances.len(), 1);
    }

    /// Tuning-model lookup is total: any region name resolves to a valid
    /// configuration, known names to their scenario config.
    #[test]
    fn tuning_model_lookup_total(
        names in proptest::collection::vec("[a-z]{1,12}", 1..8),
        cfgs in proptest::collection::vec(config(), 8),
        probe in "[a-z]{1,12}",
    ) {
        let pairs: Vec<(String, SystemConfig)> = names
            .iter()
            .cloned()
            .zip(cfgs.iter().copied())
            .collect();
        let phase = cfgs[7];
        let tm = TuningModel::new("app", &pairs, phase);
        for (name, _) in &pairs {
            // When a name repeats, the classifier keeps the last insert;
            // either way the lookup must resolve to one of the configs
            // that was associated with this name.
            let candidates: Vec<_> =
                pairs.iter().filter(|(n, _)| n == name).map(|(_, c)| *c).collect();
            let got = tm.lookup(name);
            prop_assert!(candidates.contains(&got), "{name}: {got:?} not in {candidates:?}");
        }
        let fallback = tm.lookup(&probe);
        if !names.contains(&probe) {
            prop_assert_eq!(fallback, phase);
        }
    }

    /// System configurations survive JSON.
    #[test]
    fn config_serde_round_trip(cfg in config()) {
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SystemConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(cfg, back);
    }

    /// Node energy at any configuration is bounded by physical sanity:
    /// a node never draws less than the blade floor nor more than 500 W.
    #[test]
    fn node_power_bounded(c in character(), cfg in config()) {
        let engine = ExecutionEngine::new();
        let node = Node::exact(0);
        let run = engine.run_region(&c, &cfg, &node);
        let watts = run.power.node_w();
        prop_assert!(watts > 70.0, "below blade floor: {watts}");
        prop_assert!(watts < 500.0, "implausible draw: {watts}");
    }
}
