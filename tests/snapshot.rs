//! Concurrency stress tests for the snapshot-serving repository.
//!
//! The PR 9 read path serves from per-shard immutable snapshots
//! ([`snapcell`]-backed), so these tests race writers publishing
//! version-bumped models against readers serving by
//! [`MatchPolicy::Application`] and assert the snapshot discipline:
//!
//! * readers only ever observe *fully published* snapshots — a served
//!   model always equals the exact model some writer published, never a
//!   torn intermediate;
//! * application-lineage versions never regress — per writer on the
//!   publish side, and (under a serialised schedule) per reader on the
//!   serve side;
//! * the global and per-shard statistics stay double-entry equal after
//!   the dust settles.
//!
//! The seeded test drives the race through [`testkit::SpinPermits`], so
//! the interleaving of guarded steps is a pure function of the seed: a
//! failure names the seed, and re-running the test replays the same
//! schedule.

use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use ptf::TuningModel;
use rrl::{CalibrationLatch, CalibrationOutcome, MatchPolicy, ModelKey, SharedRepository};
use simnode::SystemConfig;
use testkit::{taurus_fallback, toy_benchmark, SpinPermits};

const WRITERS: usize = 3;
const READERS: usize = 4;
const WRITES_PER_WRITER: usize = 12;
const READS_PER_READER: usize = 20;

/// The configuration writer `w` publishes at its `k`-th step — a pure
/// function of `(w, k)`, so readers can rebuild the expected model from
/// the label embedded in a served snapshot.
fn config_for(w: usize, k: usize) -> SystemConfig {
    SystemConfig::new(24, 2000 + (w * 100 + k * 10) as u32, 1500 + (k * 20) as u32)
}

/// The model writer `w` publishes at its `k`-th step. The single region
/// name `w{w}-k{k}` tags the model with its origin; a reader decodes the
/// tag and compares the whole served model against this function's
/// output — any torn or partially visible publish fails the equality.
fn model_for(w: usize, k: usize) -> TuningModel {
    TuningModel::new(
        "stress",
        &[(format!("w{w}-k{k}"), config_for(w, k))],
        config_for(w, k),
    )
}

/// Decode the `w{w}-k{k}` origin tag of a served model.
fn decode_tag(tag: &str) -> Option<(usize, usize)> {
    let rest = tag.strip_prefix('w')?;
    let (w, k) = rest.split_once("-k")?;
    Some((w.parse().ok()?, k.parse().ok()?))
}

/// Assert a served model is exactly what some writer published.
fn assert_fully_published(model: &TuningModel, context: &str) {
    assert_eq!(
        model.scenarios.len(),
        1,
        "{context}: published models hold one scenario, got {model:?}"
    );
    let tag = model.scenarios[0]
        .regions
        .first()
        .unwrap_or_else(|| panic!("{context}: scenario without a region: {model:?}"));
    let (w, k) = decode_tag(tag)
        .unwrap_or_else(|| panic!("{context}: unparseable origin tag {tag:?} in {model:?}"));
    assert_eq!(
        *model,
        model_for(w, k),
        "{context}: torn snapshot — served model does not match what writer {w} published at step {k}"
    );
}

/// Run the writer/reader race once. When `schedule` is `Some(seed)`, all
/// repository steps are serialised through a [`SpinPermits`] schedule
/// derived from the seed (deterministic, replayable interleavings); when
/// `None`, the threads free-run (true parallelism, weaker assertions).
fn race(schedule: Option<u64>) {
    let repo = Arc::new(
        SharedRepository::new(4)
            .with_match_policy(MatchPolicy::Application)
            .with_fallback(taurus_fallback()),
    );
    let permits = schedule.map(|seed| Arc::new(SpinPermits::new(seed, WRITERS + READERS)));
    let context = match schedule {
        Some(seed) => format!("SpinPermits seed {seed:#x}"),
        None => "free-running".to_string(),
    };
    let start = Arc::new(Barrier::new(WRITERS + READERS));
    let published = Arc::new(Mutex::new(Vec::new()));
    let served_hits = Arc::new(Mutex::new((0u64, 0u64)));

    thread::scope(|scope| {
        for w in 0..WRITERS {
            let repo = Arc::clone(&repo);
            let permits = permits.clone();
            let published = Arc::clone(&published);
            let start = Arc::clone(&start);
            let context = context.clone();
            scope.spawn(move || {
                // Same application, distinct per-writer fingerprint: all
                // writers bump one shared lineage.
                let bench = toy_benchmark("stress", 1.0 + w as f64, 4);
                start.wait();
                let mut last = 0u32;
                let mut mine = Vec::with_capacity(WRITES_PER_WRITER);
                for k in 0..WRITES_PER_WRITER {
                    let turn = permits.as_ref().map(|p| p.gate(w));
                    let version = repo.publish_online(&bench, &model_for(w, k), Vec::new());
                    drop(turn);
                    assert!(
                        version > last,
                        "{context}: writer {w} saw its lineage regress: {version} after {last}"
                    );
                    last = version;
                    mine.push(version);
                }
                if let Some(p) = &permits {
                    p.retire(w);
                }
                published.lock().unwrap().extend(mine);
            });
        }
        for r in 0..READERS {
            let me = WRITERS + r;
            let repo = Arc::clone(&repo);
            let permits = permits.clone();
            let served_hits = Arc::clone(&served_hits);
            let start = Arc::clone(&start);
            let context = context.clone();
            scope.spawn(move || {
                // A fingerprint nobody publishes: every successful serve
                // goes through the Application-policy approximate match.
                let probe = toy_benchmark("stress", 900.0 + r as f64, 4);
                start.wait();
                let mut high = 0u32;
                let (mut hits, mut misses) = (0u64, 0u64);
                for _ in 0..READS_PER_READER {
                    let turn = permits.as_ref().map(|p| p.gate(me));
                    let outcome = repo.serve_stored(&probe);
                    drop(turn);
                    match outcome {
                        Ok(Some(served)) => {
                            assert_fully_published(&served.model, &context);
                            let version = served
                                .provenance
                                .as_ref()
                                .unwrap_or_else(|| {
                                    panic!("{context}: stored serve without provenance")
                                })
                                .version;
                            // Only the serialised schedule pins the
                            // reader-side high-water mark: free-running
                            // readers may touch an entry resolved from an
                            // older snapshot, legitimately re-ordering
                            // recency.
                            if schedule.is_some() {
                                assert!(
                                    version >= high,
                                    "{context}: reader {r} high-water regressed: \
                                     {version} after {high}"
                                );
                            }
                            let bound = (WRITERS * WRITES_PER_WRITER) as u32;
                            assert!(
                                (1..=bound).contains(&version),
                                "{context}: version {version} outside the published range"
                            );
                            high = high.max(version);
                            hits += 1;
                        }
                        Ok(None) => misses += 1,
                        Err(e) => panic!("{context}: reader {r} serve errored: {e:?}"),
                    }
                }
                if let Some(p) = &permits {
                    p.retire(me);
                }
                let mut totals = served_hits.lock().unwrap();
                totals.0 += hits;
                totals.1 += misses;
            });
        }
    });

    let total_published = (WRITERS * WRITES_PER_WRITER) as u64;
    let mut versions = published.lock().unwrap().clone();
    versions.sort_unstable();
    assert_eq!(
        versions,
        (1..=total_published as u32).collect::<Vec<_>>(),
        "{context}: the shared lineage must hand out every version exactly once"
    );

    let (hits, misses) = *served_hits.lock().unwrap();
    let stats = repo.stats();
    assert_eq!(
        stats,
        repo.shard_stats(),
        "{context}: global and per-shard stats diverged"
    );
    assert_eq!(stats.publications, total_published, "{context}");
    assert_eq!(
        stats.hits + stats.misses,
        (READERS * READS_PER_READER) as u64,
        "{context}: every reader lookup counts exactly once"
    );
    assert_eq!(stats.hits, hits, "{context}");
    assert_eq!(stats.misses, misses, "{context}");
    assert_eq!(
        stats.approx_hits, stats.hits,
        "{context}: probe fingerprints are never stored, so every hit is approximate"
    );
    assert_eq!(stats.errors, 0, "{context}");
    assert_eq!(
        stats.evictions, 0,
        "{context}: no capacity bound configured"
    );

    // After the race the most recent entry is the last one published, so
    // a fresh serve observes the lineage high-water mark.
    let final_serve = repo
        .serve_stored(&toy_benchmark("stress", 999.0, 4))
        .expect("final serve")
        .expect("models were published");
    assert_eq!(
        final_serve.provenance.expect("stored provenance").version,
        total_published as u32,
        "{context}: final serve must observe the lineage high-water mark"
    );
}

/// Deterministic interleavings: the same seed replays the same schedule,
/// so any failure message naming the seed is a complete repro line.
#[test]
fn seeded_schedules_serve_only_fully_published_snapshots() {
    for seed in [0xA11CE, 0x5EED5, 0xF1E1D, 0xCAB1E] {
        race(Some(seed));
    }
}

/// Free-running race: true parallelism, checking the invariants that do
/// not depend on the interleaving (untorn snapshots, unique lineage
/// versions, exact stats accounting).
#[test]
fn free_running_race_serves_only_fully_published_snapshots() {
    for _ in 0..4 {
        race(None);
    }
}

/// Regression test alongside the PR 4 release guard, on the snapshot
/// path: a leader that panics mid-publish must leave no torn snapshot
/// visible to readers and must release its led claims so followers
/// resolve to the calibration fallback instead of parking forever.
#[test]
fn abandoned_leader_releases_claims_and_leaves_no_torn_snapshot() {
    let repo = Arc::new(SharedRepository::new(2).with_fallback(taurus_fallback()));
    let latch = Arc::new(CalibrationLatch::new(2));
    let bench = toy_benchmark("cold-start", 3.0, 4);
    let key = ModelKey::of(&bench);
    assert!(latch.begin(&key), "first claimant leads");
    assert!(!latch.begin(&key), "the claim is exclusive while in flight");

    let followers: Vec<_> = (0..3)
        .map(|_| {
            let latch = Arc::clone(&latch);
            let key = key.clone();
            thread::spawn(move || latch.wait(&key))
        })
        .collect();

    let leader = {
        let latch = Arc::clone(&latch);
        let key = key.clone();
        thread::spawn(move || {
            // The run_parallel worker's release guard, in miniature:
            // resolve every led claim on the way out of a panicking
            // worker ("fail" is first-writer-wins, so a claim that made
            // it to publication is untouched).
            struct ReleaseOnExit {
                latch: Arc<CalibrationLatch>,
                led: Vec<ModelKey>,
            }
            impl Drop for ReleaseOnExit {
                fn drop(&mut self) {
                    for key in &self.led {
                        self.latch.fail(key);
                    }
                }
            }
            let _release = ReleaseOnExit {
                latch,
                led: vec![key],
            };
            let _model = model_for(0, 0);
            panic!("leader aborted mid-publish");
        })
    };
    assert!(leader.join().is_err(), "the leader really panicked");
    for follower in followers {
        assert_eq!(
            follower.join().expect("followers outlive the leader"),
            CalibrationOutcome::Failed,
            "followers must resolve to the fallback path"
        );
    }

    // No torn snapshot: the aborted publish left nothing behind, the
    // miss/fallback path still works, and the books still balance.
    assert!(!repo.contains(&bench), "no partial entry may be visible");
    assert!(repo.serve_stored(&bench).expect("serve succeeds").is_none());
    let served = repo.serve(&bench).expect("fallback configured");
    assert_eq!(served.source, rrl::ModelSource::Fallback);
    assert_eq!(repo.stats(), repo.shard_stats());
    assert_eq!(repo.stats().misses, 2, "both lookups missed");
    assert_eq!(repo.stats().fallbacks, 1);

    // The latch stays resolved (late followers see the failure
    // immediately) and the repository accepts the retry publish.
    assert!(!latch.begin(&key), "resolved claims are not reclaimable");
    assert_eq!(latch.wait(&key), CalibrationOutcome::Failed);
    let version = repo.publish_online(&bench, &model_for(0, 0), Vec::new());
    assert_eq!(version, 1, "retry publish starts the lineage");
    assert!(repo.contains(&bench));
}
