//! Integration tests for the discrete-event cluster service: the
//! three-way equivalence `run_service` ≡ `run` ≡ `run_parallel` on
//! zero-interarrival no-churn traces, the churn-shape guarantees
//! (drained/failed nodes' jobs are re-placed, never dropped; failures
//! truncate running jobs at a phase boundary), and in-loop replication
//! (gossip while serving, replica crash/restart catch-up, read-repair).

use dvfs_ufs_tuning::kernels::BenchmarkSpec;
use dvfs_ufs_tuning::ptf::{RandomSearch, TuningModel};
use dvfs_ufs_tuning::rrl::{
    ChurnEvent, ChurnKind, ClusterReport, ClusterScheduler, FaultInjector, GossipConfig,
    JobArrival, ModelSource, OnlineConfig, OnlineTuning, ReplicaChurnEvent, ReplicaChurnKind,
    ReplicaConfig, ReplicaSet, ServiceConfig, SharedRepository, TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, SystemConfig};
use testkit::{taurus_fallback, toy_benchmark};

fn toy_bench(name: &str, instr: f64, iterations: u32) -> BenchmarkSpec {
    toy_benchmark(name, instr, iterations)
}

/// A zero-interarrival trace over the same (name, bench) pairs a submit
/// loop would enqueue.
fn instant_trace(jobs: &[(String, BenchmarkSpec)]) -> Vec<JobArrival> {
    jobs.iter()
        .map(|(name, bench)| JobArrival {
            name: name.clone(),
            bench: bench.clone(),
            arrival_s: 0.0,
        })
        .collect()
}

/// Every per-job field that must be bit-identical between the service and
/// a sweep loop, plus the submission-ordered floating-point totals.
fn assert_reports_bit_identical(service: &ClusterReport, sweep: &ClusterReport, tag: &str) {
    assert_eq!(service.jobs.len(), sweep.jobs.len(), "{tag}");
    for (a, b) in service.jobs.iter().zip(&sweep.jobs) {
        assert_eq!(a.job, b.job, "{tag}: submission order");
        assert_eq!(a.node_id, b.node_id, "{tag}: placement of {}", a.job);
        assert_eq!(a.accounting.record, b.accounting.record, "{tag}: {}", a.job);
        assert_eq!(
            a.accounting.regions, b.accounting.regions,
            "{tag}: {}",
            a.job
        );
        assert_eq!(a.accounting.switches, b.accounting.switches, "{tag}");
        assert_eq!(a.accounting.source, b.accounting.source, "{tag}: {}", a.job);
        assert_eq!(a.accounting.online, b.accounting.online, "{tag}: {}", a.job);
        assert_eq!(a.default, b.default, "{tag}: baseline");
        assert_eq!(a.savings, b.savings, "{tag}: savings");
        assert_eq!(a.published_version, b.published_version, "{tag}: {}", a.job);
        assert_eq!(a.drift, b.drift, "{tag}: drift events");
        assert_eq!(a.aborted_at, b.aborted_at, "{tag}: {}", a.job);
    }
    assert_eq!(service.total_tuned, sweep.total_tuned, "{tag}");
    assert_eq!(service.total_default, sweep.total_default, "{tag}");
    assert_eq!(service.aggregate, sweep.aggregate, "{tag}");
    assert_eq!(service.nodes_used, sweep.nodes_used, "{tag}");
    assert_eq!(service.repository.hits, sweep.repository.hits, "{tag}");
    assert_eq!(service.repository.misses, sweep.repository.misses, "{tag}");
    assert_eq!(
        service.repository.fallbacks, sweep.repository.fallbacks,
        "{tag}"
    );
}

/// The tentpole's correctness anchor: for 3 cluster seeds × trace sizes
/// {16, 256}, a zero-interarrival no-churn trace produces per-job results
/// bit-identical to both sweep loops — the discrete-event kernel changes
/// *when* things run, never *what* they compute.
#[test]
fn service_bit_identical_to_both_sweep_loops() {
    let fallback = taurus_fallback();
    let tuned = toy_bench("tuned-toy", 2e10, 12);
    let untuned = toy_bench("untuned-toy", 1.2e10, 9);
    let toy_model = TuningModel::new(
        "tuned-toy",
        &[("omp parallel:1".into(), SystemConfig::new(24, 2500, 1500))],
        SystemConfig::new(24, 2500, 1500),
    );

    for (round, seed) in [0x5EED_u64, 0xBEEF, 0xC0FFEE].into_iter().enumerate() {
        let cluster = Cluster::new(4 + round as u32, seed);
        for jobs in [16usize, 256] {
            let queue: Vec<(String, BenchmarkSpec)> = (0..jobs)
                .map(|i| {
                    let bench = if i % 3 == 2 { &untuned } else { &tuned };
                    (format!("svc{seed:x}-{i}"), bench.clone())
                })
                .collect();

            let mut repo = TuningModelRepository::new().with_fallback(fallback);
            repo.insert(&tuned, &toy_model);
            let mut seq = ClusterScheduler::new(&cluster).unwrap();
            for (name, bench) in &queue {
                seq.submit(name.clone(), bench.clone());
            }
            let sequential = seq.run(&mut repo).unwrap();

            let shared = SharedRepository::new(8).with_fallback(fallback);
            shared.insert(&tuned, &toy_model);
            let mut par = ClusterScheduler::new(&cluster).unwrap();
            for (name, bench) in &queue {
                par.submit(name.clone(), bench.clone());
            }
            let parallel = par.run_parallel(&shared, 4).unwrap();

            let mut svc_repo = TuningModelRepository::new().with_fallback(fallback);
            svc_repo.insert(&tuned, &toy_model);
            let mut svc = ClusterScheduler::new(&cluster).unwrap();
            let service = svc
                .run_service(
                    instant_trace(&queue),
                    &mut svc_repo,
                    &ServiceConfig::default(),
                )
                .unwrap();

            let tag = format!("seed={seed:#x} jobs={jobs}");
            assert_reports_bit_identical(&service, &sequential, &format!("{tag} vs run"));
            assert_reports_bit_identical(&service, &parallel, &format!("{tag} vs run_parallel"));

            let summary = service.service.as_ref().expect("service summary present");
            assert!(summary.quiesced && summary.monotone, "{tag}: event core");
            assert!(summary.makespan_s > 0.0, "{tag}");
            assert!(summary.events as usize > jobs, "{tag}: events dispatched");
            // The formatted report surfaces the percentile lines.
            let text = service.format_report();
            assert!(text.contains("latency p50/p95/p99"), "{text}");
        }
    }
}

/// The same equivalence through the online-adaptation admission gate:
/// calibration leaders, parked same-workload waiters released at the
/// leader's finish, and published-model hits all land identically.
#[test]
fn service_online_admission_bit_identical() {
    let strategy = RandomSearch::new(12, 3);
    let cold = toy_bench("cold-toy", 2.5e10, 40);
    let stored = toy_bench("stored-toy", 1.5e10, 10);
    let stored_model = TuningModel::new(
        "stored-toy",
        &[("omp parallel:1".into(), SystemConfig::new(24, 2500, 1600))],
        SystemConfig::new(24, 2500, 1600),
    );
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };

    for seed in [0x5EED_u64, 0xBEEF, 0xC0FFEE] {
        let cluster = Cluster::new(4, seed);
        let queue: Vec<(String, BenchmarkSpec)> = (0..16)
            .map(|i| {
                let bench = if i % 4 == 1 { &stored } else { &cold };
                (format!("osvc{seed:x}-{i}"), bench.clone())
            })
            .collect();

        let mut repo = TuningModelRepository::new();
        repo.insert(&stored, &stored_model);
        let mut seq = ClusterScheduler::new(&cluster).unwrap().with_online(online);
        for (name, bench) in &queue {
            seq.submit(name.clone(), bench.clone());
        }
        let sequential = seq.run(&mut repo).unwrap();

        let mut svc_repo = TuningModelRepository::new();
        svc_repo.insert(&stored, &stored_model);
        let mut svc = ClusterScheduler::new(&cluster).unwrap().with_online(online);
        let service = svc
            .run_service(
                instant_trace(&queue),
                &mut svc_repo,
                &ServiceConfig::default(),
            )
            .unwrap();

        let tag = format!("online seed={seed:#x}");
        assert_reports_bit_identical(&service, &sequential, &tag);
        // Warm-up shape survives the kernel: one calibration for the
        // cold workload, everyone else hits or monitors.
        assert_eq!(service.online_summary().calibrations, 1, "{tag}");
        assert_eq!(service.repository.misses, 1, "{tag}");
    }
}

/// A churn schedule for the shape tests.
struct ChurnPlan(Vec<ChurnEvent>);

impl FaultInjector for ChurnPlan {
    fn node_churn(&self) -> Vec<ChurnEvent> {
        self.0.clone()
    }
}

/// Draining a node re-places its queued jobs onto the remaining nodes —
/// nothing is dropped, nothing lands on the drained node afterwards.
#[test]
fn drain_replaces_queued_jobs_and_drops_nothing() {
    let fallback = taurus_fallback();
    let bench = toy_bench("drain-toy", 2e10, 8);
    // Node 0 drains before any job arrives: every arrival must avoid it.
    let churn = ChurnPlan(vec![ChurnEvent {
        at_s: 0.0,
        node: 0,
        kind: ChurnKind::Drain,
    }]);
    let cluster = Cluster::exact(3);
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_faults(&churn);
    let trace: Vec<JobArrival> = (0..12)
        .map(|i| JobArrival {
            name: format!("drain-{i}"),
            bench: bench.clone(),
            arrival_s: 0.001 + 0.0005 * i as f64,
        })
        .collect();
    let mut repo = TuningModelRepository::new().with_fallback(fallback);
    let report = sched
        .run_service(trace, &mut repo, &ServiceConfig { slots_per_node: 1 })
        .unwrap();

    assert_eq!(report.jobs.len(), 12, "no job dropped");
    for job in &report.jobs {
        assert_ne!(job.node_id, 0, "{}: placed on the drained node", job.job);
        assert!(
            job.aborted_at.is_none(),
            "{}: drain must not abort",
            job.job
        );
    }
    let summary = report.service.as_ref().unwrap();
    assert_eq!(summary.churn_events, 1);
    assert!(summary.quiesced && summary.monotone);
    // One slot per node on two surviving nodes: queues formed and waited.
    assert!(summary.queue_depth.max >= 1.0, "{summary:?}");
    assert!(summary.queue_wait_s.max > 0.0, "{summary:?}");
    let text = report.format_report();
    assert!(text.contains("churn: 1 events"), "{text}");
}

/// Failing a node truncates its *running* jobs at the next phase boundary
/// (reported as aborted) and re-places its queued jobs; a later join lets
/// the node serve again.
#[test]
fn fail_truncates_running_jobs_and_join_restores_the_node() {
    let fallback = taurus_fallback();
    // Long jobs so the failure lands mid-run (each phase is ~0.1 s of
    // virtual time, 40 iterations ≈ 4 s).
    let bench = toy_bench("fail-toy", 2e10, 40);
    let churn = ChurnPlan(vec![
        ChurnEvent {
            at_s: 0.5,
            node: 0,
            kind: ChurnKind::Fail,
        },
        ChurnEvent {
            at_s: 1.0,
            node: 0,
            kind: ChurnKind::Join,
        },
    ]);
    let cluster = Cluster::exact(2);
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_faults(&churn);
    // Two jobs start immediately (one per node), two queue behind them.
    let trace: Vec<JobArrival> = (0..4)
        .map(|i| JobArrival {
            name: format!("fail-{i}"),
            bench: bench.clone(),
            arrival_s: 0.0,
        })
        .collect();
    let mut repo = TuningModelRepository::new().with_fallback(fallback);
    let report = sched
        .run_service(trace, &mut repo, &ServiceConfig { slots_per_node: 1 })
        .unwrap();

    assert_eq!(report.jobs.len(), 4, "no job dropped");
    let summary = report.service.as_ref().unwrap();
    assert_eq!(summary.truncated_jobs, 1, "{summary:?}");
    // The job that was running on node 0 at t=0.5 aborted early.
    let aborted: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.aborted_at.is_some())
        .collect();
    assert_eq!(aborted.len(), 1, "{summary:?}");
    assert_eq!(aborted[0].node_id, 0);
    assert!(aborted[0].aborted_at.unwrap() < 40);
    // Its queued successor moved off the failed node before the re-join.
    assert!(summary.replaced_jobs >= 1, "{summary:?}");
    assert!(summary.quiesced && summary.monotone);
}

/// A replica churn schedule for the in-loop replication tests.
struct ReplicaChurnPlan(Vec<ReplicaChurnEvent>);

impl FaultInjector for ReplicaChurnPlan {
    fn replica_churn(&self) -> Vec<ReplicaChurnEvent> {
        self.0.clone()
    }
}

/// One in-loop replicated run: online tuning over `replicas` replicas,
/// spread arrivals so publications land mid-run.
fn inloop_run(
    replicas: u32,
    gossip: &GossipConfig,
    faults: Option<&dyn FaultInjector>,
    trace: Vec<JobArrival>,
) -> (ClusterReport, ReplicaSet<'static>) {
    let strategy = RandomSearch::new(12, 3);
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };
    let cluster = Cluster::new(3, 0x1009);
    let mut set = ReplicaSet::new(
        replicas,
        ReplicaConfig {
            fallback: Some(taurus_fallback()),
            ..ReplicaConfig::default()
        },
    );
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    if let Some(faults) = faults {
        sched = sched.with_faults(faults);
    }
    let report = sched
        .run_service_replicated(trace, &mut set, gossip, &ServiceConfig::default())
        .unwrap();
    (report, set)
}

fn spread_trace(jobs: usize) -> Vec<JobArrival> {
    // Two cold workloads whose calibrations publish mid-run, staggered
    // so gossip interleaves with serving.
    let a = toy_bench("inloop-a", 2e10, 40);
    let b = toy_bench("inloop-b", 1.4e10, 30);
    (0..jobs)
        .map(|i| JobArrival {
            name: format!("inloop-{i}"),
            bench: if i % 2 == 0 { a.clone() } else { b.clone() },
            arrival_s: 0.4 * i as f64,
        })
        .collect()
}

/// The tentpole invariant: an in-loop run converges *during* the run
/// (no trailing `converge`), a batch `converge` afterwards is a no-op
/// oracle check, and reruns are bit-identical.
#[test]
fn inloop_gossip_converges_while_serving_and_matches_the_batch_oracle() {
    let gossip = GossipConfig {
        cadence_us: 5_000,
        ..GossipConfig::default()
    };
    let (first, mut set) = inloop_run(3, &gossip, None, spread_trace(6));
    let summary = first.service.as_ref().unwrap();
    let replication = summary.replication.expect("replicated run summary");
    assert!(replication.converged, "{replication:?}");
    assert!(replication.net_idle, "{replication:?}");
    assert!(replication.gossip_rounds > 0, "{replication:?}");
    assert!(replication.applied > 0, "publications gossiped mid-run");
    assert_eq!(replication.replicas, 3);
    assert!(summary.quiesced && summary.monotone);

    // Every replica already holds the same non-empty winner map.
    let map0 = set.replica(0).unwrap().model_map();
    assert!(!map0.is_empty());
    for id in 1..3 {
        assert_eq!(set.replica(id).unwrap().model_map(), map0, "replica {id}");
    }

    // Batch oracle: a converge pass over the already-converged set
    // applies nothing and changes no map.
    let before = set.replication_totals();
    set.converge().expect("post-run converge is clean");
    assert_eq!(set.replication_totals(), before, "converge was a no-op");
    assert_eq!(set.replica(0).unwrap().model_map(), map0);

    // Rerun: bit-identical report and replication summary.
    let (second, set2) = inloop_run(3, &gossip, None, spread_trace(6));
    assert_reports_bit_identical(&first, &second, "in-loop rerun");
    assert_eq!(
        second.service.as_ref().unwrap().replication,
        Some(replication),
        "replication counters are deterministic"
    );
    assert_eq!(set2.replica(0).unwrap().model_map(), map0);

    let text = first.format_report();
    assert!(text.contains("replication: 3 replicas"), "{text}");
}

/// Replica crash/restart mid-run: the restarted replica rejoins empty
/// and catches up from its peers before the run ends, deterministically.
#[test]
fn inloop_replica_crash_and_restart_catches_up_before_the_run_ends() {
    let churn = ReplicaChurnPlan(vec![
        ReplicaChurnEvent {
            at_s: 0.5,
            replica: 1,
            kind: ReplicaChurnKind::Crash,
        },
        ReplicaChurnEvent {
            at_s: 1.1,
            replica: 1,
            kind: ReplicaChurnKind::Restart,
        },
    ]);
    let gossip = GossipConfig::default();
    let (first, set) = inloop_run(3, &gossip, Some(&churn), spread_trace(6));
    let replication = first.service.as_ref().unwrap().replication.unwrap();
    assert_eq!(replication.crashes, 1, "{replication:?}");
    assert_eq!(replication.restarts, 1, "{replication:?}");
    assert!(replication.converged, "{replication:?}");
    assert!(replication.net_idle, "{replication:?}");
    assert!(!set.is_down(1));

    // The restarted replica holds the fleet's winners again.
    let map0 = set.replica(0).unwrap().model_map();
    assert!(!map0.is_empty());
    assert_eq!(set.replica(1).unwrap().model_map(), map0, "caught up");
    assert_eq!(set.replica(2).unwrap().model_map(), map0);

    let (second, _) = inloop_run(3, &gossip, Some(&churn), spread_trace(6));
    assert_reports_bit_identical(&first, &second, "churned rerun");
    assert_eq!(
        second.service.as_ref().unwrap().replication,
        Some(replication)
    );
}

/// Read-repair: a miss that an established peer can serve parks the job
/// behind a targeted pull instead of running a second cold calibration.
/// The same trace with read-repair off calibrates twice.
#[test]
fn read_repair_avoids_a_second_cold_calibration() {
    let bench = toy_bench("repair-toy", 2e10, 40);
    let gossip = GossipConfig {
        cadence_us: 10_000,
        ..GossipConfig::default()
    };
    // Probe: when does the first job (and its publication) finish?
    let probe = vec![JobArrival {
        name: "rr-0".into(),
        bench: bench.clone(),
        arrival_s: 0.0,
    }];
    let (probe_report, _) = inloop_run(2, &gossip, None, probe);
    let makespan = probe_report.service.as_ref().unwrap().makespan_s;

    // The second job lands on node 1 (home replica 1) one millisecond
    // after the publication on replica 0 — inside the gossip cadence
    // window, so replica 1 does not hold the entry yet.
    let trace = || {
        vec![
            JobArrival {
                name: "rr-0".into(),
                bench: bench.clone(),
                arrival_s: 0.0,
            },
            JobArrival {
                name: "rr-1".into(),
                bench: bench.clone(),
                arrival_s: makespan + 0.001,
            },
        ]
    };

    let (with_repair, _) = inloop_run(2, &gossip, None, trace());
    let replication = with_repair.service.as_ref().unwrap().replication.unwrap();
    assert!(replication.repair_pulls >= 1, "{replication:?}");
    assert_eq!(replication.repair_released, 1, "{replication:?}");
    assert_eq!(replication.repair_abandoned, 0, "{replication:?}");
    assert_eq!(
        with_repair.online_summary().calibrations,
        1,
        "the repaired job never cold-calibrated"
    );
    assert_eq!(
        with_repair.jobs[1].accounting.source,
        ModelSource::Replicated,
        "the second job served the pulled entry"
    );
    assert!(replication.converged && replication.net_idle);

    let off = GossipConfig {
        read_repair: false,
        ..gossip
    };
    let (without_repair, _) = inloop_run(2, &off, None, trace());
    let replication = without_repair
        .service
        .as_ref()
        .unwrap()
        .replication
        .unwrap();
    assert_eq!(replication.repair_pulls, 0, "{replication:?}");
    assert_eq!(
        without_repair.online_summary().calibrations,
        2,
        "without read-repair the same miss cold-calibrates"
    );
}
