//! Integration tests for the online adaptation engine: in-situ
//! calibration on repository miss, cluster warm-up from a cold
//! repository, drift detection with scoped re-calibration, and the
//! online-tuning error paths.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{ExhaustiveSearch, RandomSearch, TuningSession};
use dvfs_ufs_tuning::rrl::{
    ClusterScheduler, DriftConfig, DriftPolicy, MatchPolicy, ModelSource, OnlineConfig,
    OnlineTuner, OnlineTuning, RuntimeError, TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, Node, SystemConfig};
use kernels::BenchmarkSpec;

fn strategy() -> RandomSearch {
    // A pool strategy needs no trained energy model, which keeps these
    // integration tests fast in debug builds; its seed is part of the
    // design-time/online equivalence contract.
    RandomSearch::new(12, 7)
}

/// Scale one region's work so the workload (and its fingerprint) shifts.
fn shifted_minimd(factor: f64) -> BenchmarkSpec {
    let mut bench = kernels::benchmark("miniMD").unwrap();
    for region in &mut bench.regions {
        if region.name == "compute_force" {
            region.character.instr_per_iter *= factor;
            region.character.dram_bytes_per_iter *= factor;
        }
    }
    bench
}

#[test]
fn online_convergence_matches_design_time_on_stationary_workload() {
    // The satellite property: on a stationary workload (miniMD carries no
    // inter-iteration work variation), the online-converged tuning model
    // selects the same per-region configurations as the design-time
    // analysis run with the same SearchStrategy and seed — across several
    // strategy seeds, i.e. several candidate pools.
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    for seed in [1u64, 5, 7, 9, 13] {
        let strategy = RandomSearch::new(12, seed);
        let advice = TuningSession::builder(&node)
            .with_strategy(&strategy)
            .run(&bench)
            .expect("design-time session succeeds");

        let mut tuner = OnlineTuner::calibrate(
            format!("calib-{seed}"),
            &bench,
            &node,
            &strategy,
            None,
            OnlineConfig::default(),
        )
        .expect("calibration fits the phase loop");
        tuner.run_to_completion().expect("event loop succeeds");
        assert_eq!(tuner.stage(), "exploit", "calibration converged");
        let model = tuner.converged_model().expect("converged").clone();

        for (region, design_cfg, _) in &advice.region_best {
            assert_eq!(
                model.lookup(region),
                *design_cfg,
                "seed {seed}: region `{region}` must converge to the design-time config"
            );
        }
        assert_eq!(
            model.phase_config, advice.phase_best,
            "seed {seed}: phase configs agree on this stationary workload"
        );
        assert_eq!(model.scenario_count(), advice.tuning_model.scenario_count());

        let outcome = tuner.finish().expect("finish succeeds");
        let online = outcome.accounting.online.expect("online activity recorded");
        assert!(online.publishable);
        assert!(online.explored_iterations < bench.phase_iterations);
        let publication = outcome.publication.expect("converged model published");
        assert_eq!(publication.model, model);
        assert_eq!(
            publication.expected.len(),
            model.classifier.len(),
            "one drift expectation per scenario region"
        );
    }
}

#[test]
fn online_convergence_matches_design_time_on_random_stationary_workloads() {
    // Property loop (the offline toolchain has no proptest): random
    // stationary toy workloads — heavy regions with distinct intensities
    // plus an insignificant filler — must converge online to the
    // design-time per-region configurations for the same strategy/seed.
    use dvfs_ufs_tuning::kernels::{ProgrammingModel, RegionSpec, Suite};
    use dvfs_ufs_tuning::simnode::RegionCharacter;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    let node = Node::exact(0);
    let mut rng = StdRng::seed_from_u64(0x000A_11CE);
    for case in 0..8u64 {
        let mut regions = Vec::new();
        let n_regions = 2 + (rng.next_u64() % 3) as usize;
        for r in 0..n_regions {
            // Clearly significant (≫ 100 ms at the calibration point) and
            // with a workload-dependent memory intensity.
            let ins = 1.5e10 + rng.next_f64() * 2.5e10;
            let dram_ratio = 0.3 + rng.next_f64() * 3.0;
            regions.push(RegionSpec::new(
                format!("region_{r}"),
                RegionCharacter::builder(ins)
                    .ipc(1.2 + rng.next_f64())
                    .parallel(0.99)
                    .dram_bytes(dram_ratio * ins)
                    .stalls(0.2 + 0.4 * rng.next_f64())
                    .build(),
            ));
        }
        regions.push(RegionSpec::new(
            "filler",
            RegionCharacter::builder(5e7).build(),
        ));
        let bench = BenchmarkSpec::new(
            format!("toy-{case}"),
            Suite::Npb,
            ProgrammingModel::Hybrid,
            30,
            regions,
        );
        let strategy = RandomSearch::new(10, 100 + case);

        let advice = TuningSession::builder(&node)
            .with_strategy(&strategy)
            .run(&bench)
            .expect("design-time session succeeds");
        let mut tuner = OnlineTuner::calibrate(
            format!("toy-job-{case}"),
            &bench,
            &node,
            &strategy,
            None,
            OnlineConfig::default(),
        )
        .expect("calibration fits");
        tuner.run_to_completion().unwrap();
        let model = tuner.converged_model().expect("converged").clone();
        for (region, design_cfg, _) in &advice.region_best {
            assert_eq!(
                model.lookup(region),
                *design_cfg,
                "case {case}: `{region}` diverged"
            );
        }
        assert_eq!(
            model.lookup("filler"),
            model.phase_config,
            "case {case}: the filler is below the significance threshold"
        );
    }
}

#[test]
fn interleaved_online_calibrations_are_bit_identical_to_solo_runs() {
    // Two jobs of *different* cold workloads calibrate concurrently,
    // interleaved by the cluster scheduler; each must account — and
    // converge — bit-identically to the same job run alone.
    let cluster = Cluster::new(2, 0xC1D);
    let minimd = kernels::benchmark("miniMD").unwrap();
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let strategy = strategy();
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };

    let mut repo = TuningModelRepository::new();
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    sched.submit("calib-md", minimd.clone());
    sched.submit("calib-lulesh", lulesh.clone());
    let report = sched.run(&mut repo).expect("cluster run succeeds");
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.online_summary().calibrations, 2);
    assert_eq!(report.online_summary().publications, 2);

    for outcome in &report.jobs {
        let bench = if outcome.benchmark == "miniMD" {
            &minimd
        } else {
            &lulesh
        };
        let node = cluster
            .iter()
            .find(|n| n.id() == outcome.node_id)
            .expect("placed on a cluster node");
        let mut solo = OnlineTuner::calibrate(
            &outcome.job,
            bench,
            node,
            &strategy,
            None,
            OnlineConfig::default(),
        )
        .unwrap();
        solo.run_to_completion().unwrap();
        let solo_outcome = solo.finish().unwrap();
        assert_eq!(
            outcome.accounting.record, solo_outcome.accounting.record,
            "interleaved calibration accounting must be bit-identical for {}",
            outcome.job
        );
        assert_eq!(outcome.accounting.regions, solo_outcome.accounting.regions);
        // And the published model is the same artefact.
        let solo_publication = solo_outcome.publication.expect("solo converges too");
        let served = repo.serve(bench).expect("published model serves");
        assert_eq!(served.model, solo_publication.model);
        assert_eq!(served.source, ModelSource::Online);
    }
}

#[test]
fn cluster_warms_up_from_a_cold_repository() {
    // The acceptance scenario: starting from an empty repository, job 1
    // of a workload calibrates online and publishes; jobs 2..N serve
    // ModelSource::Online hits whose aggregate savings beat the
    // static-fallback baseline.
    let cluster = Cluster::new(3, 0x5EED);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = strategy();
    let jobs = 8;

    let run_online = || {
        let mut repo = TuningModelRepository::new();
        let mut sched = ClusterScheduler::new(&cluster)
            .unwrap()
            .with_online(OnlineTuning {
                strategy: &strategy,
                energy_model: None,
                config: OnlineConfig::default(),
            });
        for i in 0..jobs {
            sched.submit(format!("job-{i}"), bench.clone());
        }
        let report = sched.run(&mut repo).expect("warm-up run succeeds");
        (report, repo)
    };
    let (report, mut repo) = run_online();

    // Exactly one miss (the calibrator); everyone else hits the
    // published model.
    assert_eq!(report.repository.misses, 1);
    assert_eq!(report.repository.hits, jobs as u64 - 1);
    assert_eq!(report.repository.fallbacks, 0);
    let summary = report.online_summary();
    assert_eq!(summary.calibrations, 1);
    assert_eq!(summary.publications, 1);
    let calibrator = &report.jobs[0];
    assert_eq!(calibrator.published_version, Some(1));
    assert!(
        calibrator
            .accounting
            .online
            .as_ref()
            .unwrap()
            .explored_iterations
            > 0
    );
    for hit in &report.jobs[1..] {
        assert_eq!(hit.accounting.source, ModelSource::Online);
        assert_eq!(hit.published_version, None);
        assert_eq!(
            hit.accounting.online.as_ref().unwrap().explored_iterations,
            0,
            "hits exploit the published model from iteration zero"
        );
    }
    // The published model now serves further submissions.
    assert_eq!(repo.len(), 1);
    assert_eq!(repo.serve(&bench).unwrap().source, ModelSource::Online);

    // Baseline: the same queue served a generic static fallback (a cold
    // start has no Table-V sweep to consult) without online adaptation.
    let mut fb_repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2500, 2200));
    let mut fb_sched = ClusterScheduler::new(&cluster).unwrap();
    for i in 0..jobs {
        fb_sched.submit(format!("job-{i}"), bench.clone());
    }
    let fb_report = fb_sched.run(&mut fb_repo).expect("fallback run succeeds");

    // Jobs 2..N (the hits) must beat the same jobs under the fallback.
    let hit_savings = |jobs: &[dvfs_ufs_tuning::rrl::JobOutcome]| {
        let (mut default_j, mut tuned_j) = (0.0, 0.0);
        for j in &jobs[1..] {
            default_j += j.default.job_energy_j;
            tuned_j += j.accounting.record.job_energy_j;
        }
        100.0 * (default_j - tuned_j) / default_j
    };
    let online_pct = hit_savings(&report.jobs);
    let fallback_pct = hit_savings(&fb_report.jobs);
    assert!(
        online_pct > fallback_pct,
        "online hits must beat the static fallback: {online_pct:.2}% vs {fallback_pct:.2}%"
    );

    // The whole warm-up is deterministic: a second cold run reproduces
    // every record bit-for-bit.
    let (again, _) = run_online();
    for (a, b) in report.jobs.iter().zip(&again.jobs) {
        assert_eq!(a.accounting.record, b.accounting.record);
        assert_eq!(a.accounting.regions, b.accounting.regions);
    }

    // The report surfaces the adaptation activity.
    let text = report.format_report();
    assert!(
        text.contains("online: 1 calibrations, 1 publications"),
        "{text}"
    );
    assert!(text.contains("evicted"), "{text}");
}

#[test]
fn workload_shift_fires_drift_and_recalibrates_deterministically() {
    // W1 calibrates and publishes. The workload then shifts (compute_force
    // grows 45 %): under application-level matching the stale model still
    // serves, the drift detector fires on exactly the shifted region, the
    // region re-explores its neighbourhood in place, and the patched model
    // re-publishes with a bumped version — all bit-reproducibly.
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = strategy();

    let run_scenario = || {
        let mut repo = TuningModelRepository::new().with_match_policy(MatchPolicy::Application);
        let mut calib = OnlineTuner::calibrate(
            "w1-calib",
            &bench,
            &node,
            &strategy,
            None,
            OnlineConfig::default(),
        )
        .unwrap();
        calib.run_to_completion().unwrap();
        let publication = calib.finish().unwrap().publication.expect("converged");
        assert_eq!(
            repo.publish_online(&bench, &publication.model, publication.expected),
            1
        );

        let shifted = shifted_minimd(1.45);
        assert!(!repo.contains(&shifted), "fingerprint changed");
        let served = repo.serve(&shifted).expect("application-level match");
        assert_eq!(served.source, ModelSource::Online);
        assert_eq!(served.provenance.as_ref().unwrap().version, 1);

        let mut monitor =
            OnlineTuner::monitor("w2-job", &shifted, &node, served, OnlineConfig::default())
                .unwrap();
        monitor.run_to_completion().unwrap();
        let outcome = monitor.finish().unwrap();
        (repo, shifted, publication.model, outcome)
    };

    let (mut repo, shifted, w1_model, outcome) = run_scenario();
    assert_eq!(outcome.drift_events.len(), 1, "{:?}", outcome.drift_events);
    let event = &outcome.drift_events[0];
    assert_eq!(
        event.region, "compute_force",
        "only the shifted region drifts"
    );
    assert!(event.ratio > 1.15, "ratio {}", event.ratio);
    let activity = outcome.accounting.online.as_ref().unwrap();
    assert_eq!(activity.drift_events, 1);
    assert_eq!(activity.recalibrated_regions, 1);
    assert_eq!(outcome.refusals, 0);

    // The re-calibration produced a patched model for re-publication.
    let publication = outcome.publication.expect("re-calibrated model publishes");
    let other_regions_unchanged = w1_model
        .classifier
        .len()
        .checked_sub(1)
        .expect("w1 model has scenarios");
    assert!(other_regions_unchanged >= 1);
    assert_eq!(
        publication.model.lookup("neighbor_build"),
        w1_model.lookup("neighbor_build"),
        "undrifted regions keep their configuration"
    );
    assert_eq!(
        repo.publish_online(&shifted, &publication.model, publication.expected),
        2
    );
    let reserved = repo
        .serve(&shifted)
        .expect("exact hit after re-publication");
    assert_eq!(reserved.provenance.unwrap().version, 2);

    // Determinism: the entire shift scenario replays bit-identically.
    let (_, _, _, again) = run_scenario();
    assert_eq!(again.drift_events, outcome.drift_events);
    assert_eq!(again.accounting.record, outcome.accounting.record);
    assert_eq!(
        again.publication.unwrap().model,
        publication.model,
        "re-calibration is deterministic"
    );
}

#[test]
fn scheduler_drift_path_republishes_through_the_repository() {
    // The same shift scenario driven end-to-end by the scheduler: after a
    // warm-up run, a shifted workload is admitted as an application-level
    // hit, drifts, re-calibrates, and its patched model is published so a
    // final job of the shifted workload serves it as an exact hit.
    let cluster = Cluster::exact(2);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = strategy();
    let online = OnlineTuning {
        strategy: &strategy,
        energy_model: None,
        config: OnlineConfig::default(),
    };
    let mut repo = TuningModelRepository::new().with_match_policy(MatchPolicy::Application);

    let mut warmup = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    warmup.submit("w1-0", bench.clone());
    warmup.submit("w1-1", bench.clone());
    warmup.run(&mut repo).expect("warm-up succeeds");
    assert_eq!(repo.len(), 1);

    let shifted = shifted_minimd(1.45);
    let mut shift_run = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    shift_run.submit("w2-0", shifted.clone());
    let report = shift_run.run(&mut repo).expect("shift run succeeds");
    let job = &report.jobs[0];
    assert_eq!(job.drift.len(), 1);
    assert_eq!(job.drift[0].region, "compute_force");
    assert_eq!(job.published_version, Some(2), "patched model re-published");
    assert_eq!(repo.len(), 2, "stale and patched entries coexist");

    let mut exact = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    exact.submit("w2-1", shifted.clone());
    let final_report = exact.run(&mut repo).expect("exact-hit run succeeds");
    let final_job = &final_report.jobs[0];
    assert_eq!(final_job.accounting.source, ModelSource::Online);
    assert!(final_job.drift.is_empty(), "patched model no longer drifts");
    assert_eq!(final_job.published_version, None);
}

#[test]
fn exploration_budget_exhaustion_is_an_error() {
    let node = Node::exact(0);
    // Upfront: a 3-iteration job cannot even fit the thread sweep.
    let short = {
        let mut b = kernels::benchmark("miniMD").unwrap();
        b.phase_iterations = 3;
        b
    };
    let Err(err) = OnlineTuner::calibrate(
        "short",
        &short,
        &node,
        &strategy(),
        None,
        OnlineConfig::default(),
    ) else {
        panic!("3 iterations cannot fund a calibration");
    };
    assert!(
        matches!(err, RuntimeError::ExplorationBudget { needed, available, .. }
            if needed > available && available == 3),
        "{err}"
    );

    // At the planning point: exhaustive search wants the full 252-config
    // space — far beyond miniMD's 25 iterations. The error surfaces at
    // the analysis → phase-search transition.
    let bench = kernels::benchmark("miniMD").unwrap();
    let mut tuner = OnlineTuner::calibrate(
        "exhaustive",
        &bench,
        &node,
        &ExhaustiveSearch,
        None,
        OnlineConfig::default(),
    )
    .expect("the upfront check cannot see the strategy's pool size");
    let err = tuner.run_to_completion().expect_err("budget exhausted");
    match err {
        RuntimeError::ExplorationBudget {
            application,
            needed,
            available,
        } => {
            assert_eq!(application, "miniMD");
            assert!(needed > 252, "needs the full space: {needed}");
            assert_eq!(available, bench.phase_iterations);
        }
        other => panic!("expected ExplorationBudget, got {other}"),
    }
    // The failure is not fatal to the session: the schedule abandons the
    // calibration and the job keeps running (panic-free) as a degraded
    // static run.
    assert_eq!(tuner.stage(), "abandoned");
    tuner
        .run_to_completion()
        .expect("the abandoned tuner stays fully drivable");
    let outcome = tuner.finish().expect("finish succeeds");
    assert!(outcome.publication.is_none(), "nothing converged");
    assert!(!outcome.accounting.online.unwrap().publishable);
}

#[test]
fn scheduler_degrades_failed_calibrations_to_the_fallback() {
    // One workload whose calibration cannot fit must not abort the run:
    // the calibrator degrades to a static job, same-key waiters serve the
    // configured fallback, and healthy workloads calibrate normally.
    let cluster = Cluster::exact(2);
    let minimd = kernels::benchmark("miniMD").unwrap();
    let strategy_ok = strategy();
    let online = OnlineTuning {
        strategy: &ExhaustiveSearch, // 252-config pool ≫ 25 iterations
        energy_model: None,
        config: OnlineConfig::default(),
    };
    let mut repo = TuningModelRepository::new().with_fallback(testkit::taurus_fallback());
    let mut sched = ClusterScheduler::new(&cluster).unwrap().with_online(online);
    for i in 0..3 {
        sched.submit(format!("job-{i}"), minimd.clone());
    }
    let report = sched
        .run(&mut repo)
        .expect("run survives the failed calibration");
    assert_eq!(report.jobs.len(), 3);
    // Job 0 ran to completion as the abandoned calibrator; jobs 1 and 2
    // fell back.
    assert_eq!(report.jobs[0].accounting.source, ModelSource::Online);
    assert!(
        !report.jobs[0]
            .accounting
            .online
            .as_ref()
            .unwrap()
            .publishable
    );
    for job in &report.jobs[1..] {
        assert_eq!(job.accounting.source, ModelSource::Fallback);
    }
    assert_eq!(report.online_summary().publications, 0);
    assert_eq!(repo.stats().fallbacks, 2);

    // A healthy strategy on the same queue still calibrates and warms up.
    let mut repo2 = TuningModelRepository::new();
    let mut sched2 = ClusterScheduler::new(&cluster)
        .unwrap()
        .with_online(OnlineTuning {
            strategy: &strategy_ok,
            energy_model: None,
            config: OnlineConfig::default(),
        });
    for i in 0..3 {
        sched2.submit(format!("job-{i}"), minimd.clone());
    }
    let report2 = sched2.run(&mut repo2).expect("healthy run succeeds");
    assert_eq!(report2.online_summary().publications, 1);
    assert_eq!(repo2.stats().hits, 2);
}

#[test]
fn drift_recalibration_refusals() {
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = strategy();

    // A calibrating session always refuses explicit re-calibration.
    let mut calib = OnlineTuner::calibrate(
        "calib",
        &bench,
        &node,
        &strategy,
        None,
        OnlineConfig::default(),
    )
    .unwrap();
    assert!(matches!(
        calib.recalibrate_region("compute_force"),
        Err(RuntimeError::RecalibrationRefused { .. })
    ));
    assert!(matches!(
        calib.recalibrate_region("no_such_region"),
        Err(RuntimeError::UnknownRegion { .. })
    ));

    // A monitor session refuses when too few visits remain to measure the
    // neighbourhood.
    let mut repo = TuningModelRepository::new();
    let mut first = OnlineTuner::calibrate(
        "w1",
        &bench,
        &node,
        &strategy,
        None,
        OnlineConfig::default(),
    )
    .unwrap();
    first.run_to_completion().unwrap();
    let publication = first.finish().unwrap().publication.unwrap();
    repo.publish_online(&bench, &publication.model, publication.expected);

    let served = repo.serve(&bench).unwrap();
    let mut monitor =
        OnlineTuner::monitor("w2", &bench, &node, served, OnlineConfig::default()).unwrap();
    // Run to two iterations before the end: at most 1 remaining visit of
    // any region, but a radius-1 neighbourhood needs up to 9.
    while monitor.phase_iteration() < bench.phase_iterations - 2 {
        for region in &bench.regions {
            monitor.region_enter(&region.name).unwrap();
            monitor.region_exit(&region.name).unwrap();
        }
        monitor.phase_complete().unwrap();
    }
    let err = monitor
        .recalibrate_region("compute_force")
        .expect_err("too few visits remain");
    match err {
        RuntimeError::RecalibrationRefused {
            region,
            needed,
            remaining,
            ..
        } => {
            assert_eq!(region, "compute_force");
            assert!(needed > remaining, "{needed} vs {remaining}");
            assert_eq!(remaining, 1);
        }
        other => panic!("expected RecalibrationRefused, got {other}"),
    }
    // The refusal left the session healthy.
    monitor.run_to_completion().unwrap();
    let outcome = monitor.finish().unwrap();
    assert!(
        outcome.drift_events.is_empty(),
        "unchanged workload: no drift"
    );
    assert!(outcome.publication.is_none());
}

#[test]
fn drift_policy_ignore_records_but_does_not_recalibrate() {
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = strategy();
    let mut repo = TuningModelRepository::new().with_match_policy(MatchPolicy::Application);
    let mut calib = OnlineTuner::calibrate(
        "w1",
        &bench,
        &node,
        &strategy,
        None,
        OnlineConfig::default(),
    )
    .unwrap();
    calib.run_to_completion().unwrap();
    let publication = calib.finish().unwrap().publication.unwrap();
    repo.publish_online(&bench, &publication.model, publication.expected);

    let shifted = shifted_minimd(1.45);
    let served = repo.serve(&shifted).unwrap();
    let config = OnlineConfig::default()
        .with_drift_policy(DriftPolicy::Ignore)
        .with_drift(DriftConfig::default());
    let mut monitor = OnlineTuner::monitor("w2", &shifted, &node, served, config).unwrap();
    monitor.run_to_completion().unwrap();
    let outcome = monitor.finish().unwrap();
    assert_eq!(outcome.drift_events.len(), 1);
    assert_eq!(
        outcome.accounting.online.unwrap().recalibrated_regions,
        0,
        "Ignore policy only records"
    );
    assert!(outcome.publication.is_none());
}
