//! Integration tests for the event-driven runtime layer: repository
//! serving, `RuntimeSession` event protocol and accounting, and
//! cluster-scale scheduling — including the guarantee that a job
//! multiplexed by the `ClusterScheduler` accounts bit-identically to the
//! same job run alone.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{RandomSearch, TuningModel, TuningSession};
use dvfs_ufs_tuning::rrl::{
    ClusterReport, ClusterScheduler, ModelSource, OnlineConfig, OnlineTuning, Placement,
    RuntimeError, RuntimeSession, Savings, SharedRepository, TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, Node, SystemConfig};
use kernels::BenchmarkSpec;
// The shared builders these tests used to hand-roll locally.
use testkit::{repo_with_lulesh, taurus_fallback};

#[test]
fn design_time_advice_publishes_and_serves() {
    // RandomSearch needs no trained energy model, which keeps this
    // integration test fast in debug builds.
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = RandomSearch::new(16, 2);
    let advice = TuningSession::builder(&node)
        .with_strategy(&strategy)
        .run(&bench)
        .expect("session succeeds");
    assert_eq!(advice.benchmark_fingerprint, bench.fingerprint());

    let mut repo = TuningModelRepository::new();
    repo.publish(&advice);
    assert!(repo.contains(&bench));
    let served = repo.serve(&bench).expect("published model serves");
    assert_eq!(served.source, ModelSource::Repository);
    assert_eq!(served.model, advice.tuning_model);

    // The served model round-tripped through the storage format.
    let mut job = RuntimeSession::start("resubmission", &bench, &node, served)
        .expect("served model validates");
    job.run_to_completion().expect("event loop succeeds");
    let acc = job.finish().expect("finish succeeds");
    assert!(acc.record.elapsed_s > 0.0);
    assert_eq!(repo.stats().hits, 1);
}

#[test]
fn per_region_breakdown_reconstructs_job_totals() {
    let (mut repo, lulesh) = repo_with_lulesh();
    let node = Node::exact(0);
    let served = repo.serve(&lulesh).unwrap();
    let mut job = RuntimeSession::start("breakdown", &lulesh, &node, served).unwrap();
    job.run_to_completion().unwrap();
    let acc = job.finish().unwrap();

    // Every region of the spec appears with one visit per phase iteration.
    assert_eq!(acc.regions.len(), lulesh.regions.len());
    for region in &lulesh.regions {
        let entry = acc.region(&region.name).expect("region accounted");
        assert_eq!(entry.visits, u64::from(lulesh.phase_iterations));
        assert!(entry.time_s > 0.0 && entry.node_energy_j > 0.0);
        assert!(entry.cpu_energy_j < entry.node_energy_j);
    }
    // Region times + switch latency reconstruct the elapsed time, and
    // region CPU energies reconstruct the RAPL total.
    let elapsed = acc.regions_time_s() + acc.switch_time_s;
    assert!(
        (elapsed - acc.record.elapsed_s).abs() / acc.record.elapsed_s < 1e-12,
        "{elapsed} vs {}",
        acc.record.elapsed_s
    );
    let cpu = acc.regions_cpu_energy_j();
    assert!((cpu - acc.record.cpu_energy_j).abs() / acc.record.cpu_energy_j < 1e-12);
    // The HDEEM-measured job energy samples the exact region power trace:
    // slightly below its integral (5 ms start delay + quantisation),
    // never above it by more than the sensor noise.
    let exact = acc.regions_node_energy_j();
    assert!(acc.record.job_energy_j < exact * 1.01);
    assert!(acc.record.job_energy_j > exact * 0.97);
    // And the report surfaces the breakdown.
    let text = acc.format_sacct();
    assert!(text.contains("CalcQForElems"), "{text}");
}

#[test]
fn cluster_run_matches_single_job_sessions_bit_for_bit() {
    // The acceptance criterion: ≥ 8 concurrent jobs over ≥ 2 nodes, with
    // per-job dynamic savings *bit-identical* to the single-job
    // RuntimeSession path.
    let cluster = Cluster::new(3, 0xC1D);
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let minimd = kernels::benchmark("miniMD").unwrap();
    let (mut repo, _) = repo_with_lulesh();

    let mut scheduler = ClusterScheduler::new(&cluster).unwrap();
    for i in 0..8 {
        let (name, bench) = if i < 5 {
            (format!("lulesh-{i}"), &lulesh)
        } else {
            (format!("minimd-{i}"), &minimd)
        };
        scheduler.submit(name, bench.clone());
    }
    assert_eq!(scheduler.pending(), 8);
    let report = scheduler.run(&mut repo).expect("cluster run succeeds");

    assert_eq!(report.jobs.len(), 8);
    assert!(report.nodes_used >= 2, "jobs spread over several nodes");
    assert_eq!(report.repository.hits, 5);
    assert_eq!(report.repository.fallbacks, 3);

    for outcome in &report.jobs {
        let bench = if outcome.benchmark == "Lulesh" {
            &lulesh
        } else {
            &minimd
        };
        let node = cluster
            .iter()
            .find(|n| n.id() == outcome.node_id)
            .expect("placed on a cluster node");
        // Re-serve from a fresh repository with identical contents and
        // replay the job alone on the same node.
        let (mut solo_repo, _) = repo_with_lulesh();
        let served = solo_repo.serve(bench).unwrap();
        let mut solo = RuntimeSession::start(&outcome.job, bench, node, served).unwrap();
        solo.run_to_completion().unwrap();
        let solo_acc = solo.finish().unwrap();
        let solo_default =
            RuntimeSession::static_run(&outcome.job, bench, node, SystemConfig::taurus_default())
                .unwrap();
        let solo_savings = Savings::between(&solo_default.record, &solo_acc.record);

        assert_eq!(
            outcome.accounting.record, solo_acc.record,
            "multiplexed accounting must be bit-identical for {}",
            outcome.job
        );
        assert_eq!(outcome.accounting.regions, solo_acc.regions);
        assert_eq!(outcome.default, solo_default.record);
        assert_eq!(
            outcome.savings, solo_savings,
            "per-job savings must be bit-identical for {}",
            outcome.job
        );
    }

    // The tuned Lulesh jobs save energy; the aggregate is net positive.
    for outcome in report.jobs.iter().filter(|j| j.benchmark == "Lulesh") {
        assert_eq!(outcome.accounting.source, ModelSource::Repository);
        assert!(outcome.savings.job_energy_pct > 0.0, "{outcome:?}");
    }
    assert!(
        report.aggregate.cpu_energy_pct > 0.0,
        "aggregate CPU savings: {:?}",
        report.aggregate
    );
}

/// A one-region OpenMP toy workload (cheap enough for 256-job queues) —
/// the shared [`kernels::toy_benchmark`] builder.
fn toy_bench(name: &str, instr: f64, iterations: u32) -> BenchmarkSpec {
    testkit::toy_benchmark(name, instr, iterations)
}

/// Every per-job field that must be bit-identical between the sequential
/// and the parallel event loop, plus the (submission-ordered, therefore
/// equally deterministic) floating-point totals.
fn assert_reports_bit_identical(parallel: &ClusterReport, sequential: &ClusterReport, tag: &str) {
    assert_eq!(parallel.jobs.len(), sequential.jobs.len(), "{tag}");
    for (p, s) in parallel.jobs.iter().zip(&sequential.jobs) {
        assert_eq!(p.job, s.job, "{tag}: submission order");
        assert_eq!(p.node_id, s.node_id, "{tag}: placement");
        assert_eq!(
            p.accounting.record, s.accounting.record,
            "{tag}: job {} record",
            p.job
        );
        assert_eq!(
            p.accounting.regions, s.accounting.regions,
            "{tag}: {}",
            p.job
        );
        assert_eq!(p.accounting.switches, s.accounting.switches, "{tag}");
        assert_eq!(p.accounting.source, s.accounting.source, "{tag}");
        assert_eq!(p.accounting.online, s.accounting.online, "{tag}");
        assert_eq!(p.default, s.default, "{tag}: baseline");
        assert_eq!(p.savings, s.savings, "{tag}: savings");
        assert_eq!(p.published_version, s.published_version, "{tag}");
        assert_eq!(p.drift, s.drift, "{tag}: drift events");
    }
    assert_eq!(parallel.total_tuned, sequential.total_tuned, "{tag}");
    assert_eq!(parallel.total_default, sequential.total_default, "{tag}");
    assert_eq!(parallel.aggregate, sequential.aggregate, "{tag}");
    assert_eq!(parallel.nodes_used, sequential.nodes_used, "{tag}");
    assert_eq!(
        parallel.repository.hits, sequential.repository.hits,
        "{tag}: hit counts"
    );
    assert_eq!(
        parallel.repository.misses, sequential.repository.misses,
        "{tag}"
    );
    assert_eq!(
        parallel.repository.fallbacks, sequential.repository.fallbacks,
        "{tag}"
    );
}

/// The PR's correctness anchor as a property: for 3 cluster seeds ×
/// queue sizes {8, 64, 256}, a mixed hit/fallback queue produces a
/// bit-identical `ClusterReport` whether the scheduler runs on one
/// thread over a `TuningModelRepository` or across worker threads over a
/// `SharedRepository`.
#[test]
fn parallel_report_bit_identical_across_seeds_and_queue_sizes() {
    let fallback = taurus_fallback();
    let tuned = toy_bench("tuned-toy", 2e10, 12);
    let untuned = toy_bench("untuned-toy", 1.2e10, 9);
    let toy_model = TuningModel::new(
        "tuned-toy",
        &[("omp parallel:1".into(), SystemConfig::new(24, 2500, 1500))],
        SystemConfig::new(24, 2500, 1500),
    );

    for (round, seed) in [0x5EED_u64, 0xBEEF, 0xC0FFEE].into_iter().enumerate() {
        let cluster = Cluster::new(4 + round as u32, seed);
        for jobs in [8usize, 64, 256] {
            let submit = |sched: &mut ClusterScheduler<'_>| {
                for i in 0..jobs {
                    let bench = if i % 3 == 2 { &untuned } else { &tuned };
                    sched.submit(format!("j{seed:x}-{i}"), bench.clone());
                }
            };

            let mut repo = TuningModelRepository::new().with_fallback(fallback);
            repo.insert(&tuned, &toy_model);
            let mut seq = ClusterScheduler::new(&cluster).unwrap();
            submit(&mut seq);
            let sequential = seq.run(&mut repo).unwrap();

            let shared = SharedRepository::new(8).with_fallback(fallback);
            shared.insert(&tuned, &toy_model);
            let mut par = ClusterScheduler::new(&cluster).unwrap();
            submit(&mut par);
            let workers = (jobs / 4).clamp(2, 8);
            let parallel = par.run_parallel(&shared, workers).unwrap();

            let tag = format!("seed={seed:#x} jobs={jobs} workers={workers}");
            assert_reports_bit_identical(&parallel, &sequential, &tag);
        }
    }
}

/// The same property through the online-adaptation admission gate: a
/// cold workload's first job calibrates (the latch leader), same-workload
/// followers park on the latch and then hit the published model — and
/// the whole report still matches the sequential run bit for bit.
#[test]
fn parallel_online_latch_bit_identical_across_seeds() {
    let strategy = RandomSearch::new(12, 3);
    let cold = toy_bench("cold-toy", 2.5e10, 40);
    let stored = toy_bench("stored-toy", 1.5e10, 10);
    let stored_model = TuningModel::new(
        "stored-toy",
        &[("omp parallel:1".into(), SystemConfig::new(24, 2500, 1600))],
        SystemConfig::new(24, 2500, 1600),
    );

    for seed in [0x5EED_u64, 0xBEEF, 0xC0FFEE] {
        let cluster = Cluster::new(4, seed);
        let online = OnlineTuning {
            strategy: &strategy,
            energy_model: None,
            config: OnlineConfig::default(),
        };
        for jobs in [8usize, 24] {
            let submit = |sched: &mut ClusterScheduler<'_>| {
                for i in 0..jobs {
                    let bench = if i % 4 == 1 { &stored } else { &cold };
                    sched.submit(format!("o{seed:x}-{i}"), bench.clone());
                }
            };

            let mut repo = TuningModelRepository::new();
            repo.insert(&stored, &stored_model);
            let mut seq = ClusterScheduler::new(&cluster).unwrap().with_online(online);
            submit(&mut seq);
            let sequential = seq.run(&mut repo).unwrap();

            let shared = SharedRepository::new(4);
            shared.insert(&stored, &stored_model);
            let mut par = ClusterScheduler::new(&cluster).unwrap().with_online(online);
            submit(&mut par);
            let parallel = par.run_parallel(&shared, 4).unwrap();

            let tag = format!("online seed={seed:#x} jobs={jobs}");
            assert_reports_bit_identical(&parallel, &sequential, &tag);
            // Warm-up shape: exactly one calibration for the cold
            // workload, everyone else hits (or monitors the stored one).
            assert_eq!(parallel.online_summary().calibrations, 1, "{tag}");
            assert_eq!(parallel.repository.misses, 1, "{tag}");
        }
    }
}

#[test]
fn placement_policies_differ() {
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let cluster = Cluster::exact(4);
    let mut rr = ClusterScheduler::new(&cluster).unwrap();
    let rr_nodes: Vec<u32> = (0..8)
        .map(|i| rr.submit(format!("j{i}"), lulesh.clone()))
        .collect();
    assert_eq!(rr_nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);

    let mut ll = ClusterScheduler::new(&cluster)
        .unwrap()
        .with_placement(Placement::LeastLoaded);
    // Identical jobs: least-loaded degenerates to round-robin coverage.
    let ll_nodes: Vec<u32> = (0..4)
        .map(|i| ll.submit(format!("j{i}"), lulesh.clone()))
        .collect();
    assert_eq!(ll_nodes, vec![0, 1, 2, 3]);
}

#[test]
fn runtime_errors_cover_the_misuse_paths() {
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let node = Node::exact(0);

    // Serving: miss without fallback.
    let mut empty = TuningModelRepository::new();
    assert!(matches!(
        empty.serve(&lulesh),
        Err(RuntimeError::NoModel { .. })
    ));

    // Session start: model carrying an unservable configuration.
    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2450, 1700));
    let err = repo
        .serve(&lulesh)
        .and_then(|served| RuntimeSession::start("j", &lulesh, &node, served).map(|_| ()))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UnsupportedConfig { .. }));

    // Event protocol misuse.
    let (mut repo, _) = repo_with_lulesh();
    let served = repo.serve(&lulesh).unwrap();
    let mut job = RuntimeSession::start("j", &lulesh, &node, served).unwrap();
    assert!(matches!(
        job.region_enter("no_such_region"),
        Err(RuntimeError::UnknownRegion { .. })
    ));
    assert!(matches!(
        job.region_exit("CalcQForElems"),
        Err(RuntimeError::NoOpenRegion { .. })
    ));
    job.region_enter("CalcQForElems").unwrap();
    assert!(matches!(
        job.region_enter("CalcQForElems"),
        Err(RuntimeError::RegionStillOpen { .. })
    ));
    assert!(matches!(
        job.region_exit("CalcKinematicsForElems"),
        Err(RuntimeError::RegionMismatch { .. })
    ));
    // Every error above left the session usable; the job still completes.
    job.region_exit("CalcQForElems").unwrap();
    job.run_to_completion().unwrap();
    assert!(job.finish().is_ok());
}
