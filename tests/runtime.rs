//! Integration tests for the event-driven runtime layer: repository
//! serving, `RuntimeSession` event protocol and accounting, and
//! cluster-scale scheduling — including the guarantee that a job
//! multiplexed by the `ClusterScheduler` accounts bit-identically to the
//! same job run alone.

use dvfs_ufs_tuning::kernels;
use dvfs_ufs_tuning::ptf::{RandomSearch, TuningModel, TuningSession};
use dvfs_ufs_tuning::rrl::{
    ClusterScheduler, ModelSource, Placement, RuntimeError, RuntimeSession, Savings,
    TuningModelRepository,
};
use dvfs_ufs_tuning::simnode::{Cluster, Node, SystemConfig};
use kernels::BenchmarkSpec;

/// The paper's Table III configurations for Lulesh — a known-good model.
fn lulesh_model() -> TuningModel {
    TuningModel::new(
        "Lulesh",
        &[
            (
                "IntegrateStressForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcFBHourglassForceForElems".into(),
                SystemConfig::new(24, 2500, 2000),
            ),
            (
                "CalcKinematicsForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
            ("CalcQForElems".into(), SystemConfig::new(24, 2500, 2000)),
            (
                "ApplyMaterialPropertiesForElems".into(),
                SystemConfig::new(24, 2400, 2000),
            ),
        ],
        SystemConfig::new(24, 2500, 2100),
    )
}

fn fallback() -> SystemConfig {
    SystemConfig::new(24, 2400, 1700)
}

fn repo_with_lulesh() -> (TuningModelRepository, BenchmarkSpec) {
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let mut repo = TuningModelRepository::new().with_fallback(fallback());
    repo.insert(&lulesh, &lulesh_model());
    (repo, lulesh)
}

#[test]
fn design_time_advice_publishes_and_serves() {
    // RandomSearch needs no trained energy model, which keeps this
    // integration test fast in debug builds.
    let node = Node::exact(0);
    let bench = kernels::benchmark("miniMD").unwrap();
    let strategy = RandomSearch::new(16, 2);
    let advice = TuningSession::builder(&node)
        .with_strategy(&strategy)
        .run(&bench)
        .expect("session succeeds");
    assert_eq!(advice.benchmark_fingerprint, bench.fingerprint());

    let mut repo = TuningModelRepository::new();
    repo.publish(&advice);
    assert!(repo.contains(&bench));
    let served = repo.serve(&bench).expect("published model serves");
    assert_eq!(served.source, ModelSource::Repository);
    assert_eq!(served.model, advice.tuning_model);

    // The served model round-tripped through the storage format.
    let mut job = RuntimeSession::start("resubmission", &bench, &node, served)
        .expect("served model validates");
    job.run_to_completion().expect("event loop succeeds");
    let acc = job.finish().expect("finish succeeds");
    assert!(acc.record.elapsed_s > 0.0);
    assert_eq!(repo.stats().hits, 1);
}

#[test]
fn per_region_breakdown_reconstructs_job_totals() {
    let (mut repo, lulesh) = repo_with_lulesh();
    let node = Node::exact(0);
    let served = repo.serve(&lulesh).unwrap();
    let mut job = RuntimeSession::start("breakdown", &lulesh, &node, served).unwrap();
    job.run_to_completion().unwrap();
    let acc = job.finish().unwrap();

    // Every region of the spec appears with one visit per phase iteration.
    assert_eq!(acc.regions.len(), lulesh.regions.len());
    for region in &lulesh.regions {
        let entry = acc.region(&region.name).expect("region accounted");
        assert_eq!(entry.visits, u64::from(lulesh.phase_iterations));
        assert!(entry.time_s > 0.0 && entry.node_energy_j > 0.0);
        assert!(entry.cpu_energy_j < entry.node_energy_j);
    }
    // Region times + switch latency reconstruct the elapsed time, and
    // region CPU energies reconstruct the RAPL total.
    let elapsed = acc.regions_time_s() + acc.switch_time_s;
    assert!(
        (elapsed - acc.record.elapsed_s).abs() / acc.record.elapsed_s < 1e-12,
        "{elapsed} vs {}",
        acc.record.elapsed_s
    );
    let cpu = acc.regions_cpu_energy_j();
    assert!((cpu - acc.record.cpu_energy_j).abs() / acc.record.cpu_energy_j < 1e-12);
    // The HDEEM-measured job energy samples the exact region power trace:
    // slightly below its integral (5 ms start delay + quantisation),
    // never above it by more than the sensor noise.
    let exact = acc.regions_node_energy_j();
    assert!(acc.record.job_energy_j < exact * 1.01);
    assert!(acc.record.job_energy_j > exact * 0.97);
    // And the report surfaces the breakdown.
    let text = acc.format_sacct();
    assert!(text.contains("CalcQForElems"), "{text}");
}

#[test]
fn cluster_run_matches_single_job_sessions_bit_for_bit() {
    // The acceptance criterion: ≥ 8 concurrent jobs over ≥ 2 nodes, with
    // per-job dynamic savings *bit-identical* to the single-job
    // RuntimeSession path.
    let cluster = Cluster::new(3, 0xC1D);
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let minimd = kernels::benchmark("miniMD").unwrap();
    let (mut repo, _) = repo_with_lulesh();

    let mut scheduler = ClusterScheduler::new(&cluster).unwrap();
    for i in 0..8 {
        let (name, bench) = if i < 5 {
            (format!("lulesh-{i}"), &lulesh)
        } else {
            (format!("minimd-{i}"), &minimd)
        };
        scheduler.submit(name, bench.clone());
    }
    assert_eq!(scheduler.pending(), 8);
    let report = scheduler.run(&mut repo).expect("cluster run succeeds");

    assert_eq!(report.jobs.len(), 8);
    assert!(report.nodes_used >= 2, "jobs spread over several nodes");
    assert_eq!(report.repository.hits, 5);
    assert_eq!(report.repository.fallbacks, 3);

    for outcome in &report.jobs {
        let bench = if outcome.benchmark == "Lulesh" {
            &lulesh
        } else {
            &minimd
        };
        let node = cluster
            .iter()
            .find(|n| n.id() == outcome.node_id)
            .expect("placed on a cluster node");
        // Re-serve from a fresh repository with identical contents and
        // replay the job alone on the same node.
        let (mut solo_repo, _) = repo_with_lulesh();
        let served = solo_repo.serve(bench).unwrap();
        let mut solo = RuntimeSession::start(&outcome.job, bench, node, served).unwrap();
        solo.run_to_completion().unwrap();
        let solo_acc = solo.finish().unwrap();
        let solo_default =
            RuntimeSession::static_run(&outcome.job, bench, node, SystemConfig::taurus_default())
                .unwrap();
        let solo_savings = Savings::between(&solo_default.record, &solo_acc.record);

        assert_eq!(
            outcome.accounting.record, solo_acc.record,
            "multiplexed accounting must be bit-identical for {}",
            outcome.job
        );
        assert_eq!(outcome.accounting.regions, solo_acc.regions);
        assert_eq!(outcome.default, solo_default.record);
        assert_eq!(
            outcome.savings, solo_savings,
            "per-job savings must be bit-identical for {}",
            outcome.job
        );
    }

    // The tuned Lulesh jobs save energy; the aggregate is net positive.
    for outcome in report.jobs.iter().filter(|j| j.benchmark == "Lulesh") {
        assert_eq!(outcome.accounting.source, ModelSource::Repository);
        assert!(outcome.savings.job_energy_pct > 0.0, "{outcome:?}");
    }
    assert!(
        report.aggregate.cpu_energy_pct > 0.0,
        "aggregate CPU savings: {:?}",
        report.aggregate
    );
}

#[test]
fn placement_policies_differ() {
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let cluster = Cluster::exact(4);
    let mut rr = ClusterScheduler::new(&cluster).unwrap();
    let rr_nodes: Vec<u32> = (0..8)
        .map(|i| rr.submit(format!("j{i}"), lulesh.clone()))
        .collect();
    assert_eq!(rr_nodes, vec![0, 1, 2, 3, 0, 1, 2, 3]);

    let mut ll = ClusterScheduler::new(&cluster)
        .unwrap()
        .with_placement(Placement::LeastLoaded);
    // Identical jobs: least-loaded degenerates to round-robin coverage.
    let ll_nodes: Vec<u32> = (0..4)
        .map(|i| ll.submit(format!("j{i}"), lulesh.clone()))
        .collect();
    assert_eq!(ll_nodes, vec![0, 1, 2, 3]);
}

#[test]
fn runtime_errors_cover_the_misuse_paths() {
    let lulesh = kernels::benchmark("Lulesh").unwrap();
    let node = Node::exact(0);

    // Serving: miss without fallback.
    let mut empty = TuningModelRepository::new();
    assert!(matches!(
        empty.serve(&lulesh),
        Err(RuntimeError::NoModel { .. })
    ));

    // Session start: model carrying an unservable configuration.
    let mut repo = TuningModelRepository::new().with_fallback(SystemConfig::new(24, 2450, 1700));
    let err = repo
        .serve(&lulesh)
        .and_then(|served| RuntimeSession::start("j", &lulesh, &node, served).map(|_| ()))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UnsupportedConfig { .. }));

    // Event protocol misuse.
    let (mut repo, _) = repo_with_lulesh();
    let served = repo.serve(&lulesh).unwrap();
    let mut job = RuntimeSession::start("j", &lulesh, &node, served).unwrap();
    assert!(matches!(
        job.region_enter("no_such_region"),
        Err(RuntimeError::UnknownRegion { .. })
    ));
    assert!(matches!(
        job.region_exit("CalcQForElems"),
        Err(RuntimeError::NoOpenRegion { .. })
    ));
    job.region_enter("CalcQForElems").unwrap();
    assert!(matches!(
        job.region_enter("CalcQForElems"),
        Err(RuntimeError::RegionStillOpen { .. })
    ));
    assert!(matches!(
        job.region_exit("CalcKinematicsForElems"),
        Err(RuntimeError::RegionMismatch { .. })
    ));
    // Every error above left the session usable; the job still completes.
    job.region_exit("CalcQForElems").unwrap();
    job.run_to_completion().unwrap();
    assert!(job.finish().is_ok());
}
