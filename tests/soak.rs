//! The soak harness: a fixed scenario matrix for CI, plus an open-ended
//! seed sweep behind `--ignored` for long local soaks.
//!
//! CI runs `timeout 300 cargo test --release --test soak` — the external
//! timeout (and testkit's internal liveness watchdog) is the hang guard.
//! On any invariant violation the panic message carries the
//! `testkit::replay("…")` line; paste it into [`testkit::replay`] (or
//! shrink it first with [`testkit::shrink`]) to reproduce.

use testkit::{ArrivalModel, GeneratorConfig, ScenarioGenerator};

/// The fixed CI matrix: 20 seeds across five generator profiles — a
/// mixed faulted fleet under Poisson traffic, an all-cold
/// eviction-pressure profile whose every workload queues followers on
/// the calibration latch while the LRU bound churns publications, a
/// replication-fault profile that spreads the trace over a 3-replica
/// set syncing through generated drops, duplicates, reorder jitter and
/// a partition window, a churn profile whose bursty trace rides the
/// discrete-event service loop through generated node drain/fail/join
/// events (the `event_core` quiesce guarantees under membership churn),
/// and an in-loop profile that serves the trace through
/// `run_service_replicated` — gossip rounds interleaved with job
/// events, a replica crash/restart pair mid-trace, read-repair on —
/// and must end converged with a batch-`converge` oracle no-op.
fn matrix() -> Vec<(&'static str, ScenarioGenerator, u64)> {
    let mixed = ScenarioGenerator::new(GeneratorConfig {
        jobs: 16,
        nodes: 4,
        workloads: 3,
        fault_fraction: 0.25,
        ..GeneratorConfig::default()
    });
    let pressure = ScenarioGenerator::new(GeneratorConfig {
        jobs: 12,
        nodes: 3,
        workloads: 4,
        stored_fraction: 0.0,
        eviction_pressure: true,
        arrivals: ArrivalModel::Bursty {
            burst: 4,
            gap_s: 120.0,
        },
        fault_fraction: 0.15,
        ..GeneratorConfig::default()
    });
    let replicated = ScenarioGenerator::new(GeneratorConfig {
        jobs: 9,
        nodes: 3,
        workloads: 3,
        fault_fraction: 0.2,
        replicas: 3,
        ..GeneratorConfig::default()
    });
    let churn = ScenarioGenerator::new(GeneratorConfig {
        jobs: 18,
        nodes: 4,
        workloads: 3,
        arrivals: ArrivalModel::Bursty {
            burst: 6,
            gap_s: 60.0,
        },
        fault_fraction: 0.2,
        churn_events: 5,
        ..GeneratorConfig::default()
    });
    let inloop = ScenarioGenerator::new(GeneratorConfig {
        jobs: 8,
        nodes: 3,
        workloads: 3,
        fault_fraction: 0.15,
        replicas: 3,
        inloop_gossip: true,
        replica_churn_events: 1,
        ..GeneratorConfig::default()
    });
    let mut out = Vec::new();
    for seed in [0x01u64, 0x5EED, 0xBEEF, 0xC0FFEE, 0xD1CE] {
        out.push(("mixed", mixed.clone(), seed));
    }
    for seed in [0x02u64, 0x2B, 0xACE, 0xFEED, 0xF00D] {
        out.push(("pressure", pressure.clone(), seed));
    }
    for seed in [0x03u64, 0x9055, 0x51AC] {
        out.push(("replicated", replicated.clone(), seed));
    }
    // The last two churn seeds joined in PR 9: the service loop drains a
    // session's contiguous region events in one batched pass now, and
    // these exercise that path under node drain/fail/join churn.
    for seed in [0x04u64, 0xDEA1, 0xCAB1E, 0xB47C4, 0x5A1AD] {
        out.push(("churn", churn.clone(), seed));
    }
    // The in-loop seeds joined in PR 10, with the in-loop replication
    // invariant (gossip-while-serving converges without a trailing
    // batch pass, and the batch converge oracle confirms it).
    for seed in [0x05u64, 0x60551B] {
        out.push(("inloop", inloop.clone(), seed));
    }
    out
}

/// The CI soak: every matrix cell must pass the full invariant catalog.
/// Failures print the one-line replay repro.
#[test]
fn soak_matrix_20_seeds() {
    for (profile, generator, seed) in matrix() {
        let scenario = generator.generate(seed);
        if let Err(failure) = testkit::check(&scenario) {
            panic!("soak[{profile}] seed {seed:#x} failed:\n{failure}");
        }
    }
}

/// Open-ended soak: sweep seeds until the time budget (default 300 s;
/// override with `TESTKIT_SOAK_SECS`) runs out. Heavy by design — run it
/// with `cargo test --release --test soak -- --ignored --nocapture`.
#[test]
#[ignore = "open-ended soak; run explicitly with --ignored"]
fn soak_open_ended() {
    let budget = std::env::var("TESTKIT_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(std::time::Duration::from_secs)
        .unwrap_or(std::time::Duration::from_secs(300));
    let start = std::time::Instant::now();
    let mut checked = 0u64;
    for seed in 0u64.. {
        if start.elapsed() >= budget {
            break;
        }
        for (profile, generator) in [
            (
                "mixed",
                ScenarioGenerator::new(GeneratorConfig {
                    jobs: 24,
                    nodes: 5,
                    workloads: 4,
                    fault_fraction: 0.3,
                    ..GeneratorConfig::default()
                }),
            ),
            (
                "pressure",
                ScenarioGenerator::new(GeneratorConfig {
                    jobs: 16,
                    workloads: 4,
                    stored_fraction: 0.0,
                    eviction_pressure: true,
                    fault_fraction: 0.2,
                    ..GeneratorConfig::default()
                }),
            ),
            (
                "churn",
                ScenarioGenerator::new(GeneratorConfig {
                    jobs: 20,
                    nodes: 5,
                    workloads: 3,
                    fault_fraction: 0.25,
                    churn_events: 7,
                    ..GeneratorConfig::default()
                }),
            ),
        ] {
            let scenario = generator.generate(seed);
            if let Err(failure) = testkit::check(&scenario) {
                panic!("open soak[{profile}] seed {seed:#x} failed:\n{failure}");
            }
            checked += 1;
        }
    }
    println!(
        "open-ended soak: {checked} scenarios clean in {:?}",
        start.elapsed()
    );
}
