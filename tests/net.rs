//! Replicated serving under network faults, end to end: generated
//! scenarios carrying a [`testkit::NetPlan`] run their trace round-robin
//! over a fault-injected [`rrl::ReplicaSet`], converge by anti-entropy,
//! and must satisfy the replication invariants — identical model maps on
//! every replica, the stamp-maximal winner per application, every
//! session torn down, and bit-identical reruns — no matter which
//! messages the plan drops, duplicates, delays or partitions away.

use dvfs_ufs_tuning::rrl::Stamp;
use testkit::{GeneratorConfig, NetPlan, PartitionWindow, Scenario, ScenarioGenerator};

fn replicated_generator(replicas: usize) -> ScenarioGenerator {
    ScenarioGenerator::new(GeneratorConfig {
        jobs: 8,
        nodes: 3,
        workloads: 2,
        fault_fraction: 0.0,
        capability_gap_fraction: 0.0,
        replicas,
        ..GeneratorConfig::default()
    })
}

/// The property loop: 3 seeds × {2, 4} replicas × three plan shapes
/// (partition-heavy, reorder-heavy, duplicate-heavy). Every cell must
/// pass the full invariant catalog — the replication invariants verify
/// convergence to identical repositories and the deterministic winner —
/// and the replicated execution must actually have exercised its shape's
/// fault.
#[test]
fn replicated_scenarios_converge_under_every_plan_shape() {
    for seed in [0x5EED_u64, 0xBEEF, 0xC0FFEE] {
        for replicas in [2usize, 4] {
            for shape in ["partition", "reorder", "duplicate"] {
                let mut scenario = replicated_generator(replicas).generate(seed);
                let net = scenario.net.as_mut().expect("replicas > 0 draws a plan");
                match shape {
                    // Only the generated partition window; reliable links.
                    "partition" => {
                        net.drop_permille = 0;
                        net.duplicate_permille = 0;
                        net.delay_jitter_ticks = 0;
                    }
                    // Heavy reorder jitter plus real loss; no partition.
                    "reorder" => {
                        net.partitions.clear();
                        net.drop_permille = 80;
                        net.duplicate_permille = 0;
                        net.delay_jitter_ticks = 3;
                    }
                    // Aggressive duplication with mild jitter.
                    _ => {
                        net.partitions.clear();
                        net.drop_permille = 0;
                        net.duplicate_permille = 300;
                        net.delay_jitter_ticks = 1;
                    }
                }

                let run = testkit::check(&scenario).unwrap_or_else(|failure| {
                    panic!("seed {seed:#x} × {replicas} replicas × {shape}:\n{failure}")
                });
                let replicated = run.replicated.expect("net plan ran the replicated path");
                let label = format!("seed {seed:#x} × {replicas} × {shape}");
                assert!(replicated.reruns_match, "{label}");
                assert_eq!(replicated.model_maps.len(), replicas, "{label}");
                assert!(
                    !replicated.model_maps[0].is_empty(),
                    "{label}: something converged"
                );
                assert!(
                    replicated.converge.applied > 0,
                    "{label}: sync shipped models"
                );
                let transport = replicated.converge.transport;
                match shape {
                    "partition" => assert!(transport.partitioned > 0, "{label}"),
                    "reorder" => assert!(transport.dropped > 0, "{label}"),
                    _ => assert!(transport.duplicated > 0, "{label}"),
                }
            }
        }
    }
}

/// Acceptance — the ISSUE's headline scenario: a seeded
/// partition+reorder+duplicate plan over 4 replicas with a concurrent
/// drift re-publish. The drifted workload is stored (and so published on
/// replica 0 at v1); the other replicas serve it cold before sync and
/// publish concurrent v1 stamps of their own; the drift shift fires on a
/// replica-0 job mid-run and re-publishes at v2. After convergence every
/// replica must hold the v2 re-publication — the deterministic winner —
/// bit-identically across independent re-runs.
#[test]
fn drift_republish_wins_everywhere_under_partition_reorder_duplicate() {
    use testkit::{DriftShiftFault, StoredModel};

    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 8,
        nodes: 2,
        workloads: 1,
        stored_fraction: 1.0,
        capability_gap_fraction: 0.0,
        fault_fraction: 0.0,
        replicas: 4,
        ..GeneratorConfig::default()
    });
    let mut scenario = generator.generate(0xD21F7);
    assert_eq!(scenario.workloads[0].stored, StoredModel::Calibrated);
    let bench = scenario.workloads[0].bench.clone();
    // Job 4 runs on replica 4 % 4 = 0, the replica holding the stored
    // model — its injected shift drives the v2 re-publication.
    scenario.faults.drift_shifts.push(DriftShiftFault {
        job: scenario.jobs[4].name.clone(),
        region: bench.regions[0].name.clone(),
        from_iteration: bench.phase_iterations / 4,
        factor: 1.6,
    });
    scenario.net = Some(NetPlan {
        replicas: 4,
        fault_seed: 0x0DD5_EED5,
        drop_permille: 120,
        duplicate_permille: 100,
        delay_jitter_ticks: 3,
        partitions: vec![PartitionWindow {
            from_tick: 0,
            to_tick: 24,
            isolated: vec![2],
        }],
        // Batch-style convergence; the in-loop path has its own tests.
        gossip_cadence_us: 0,
        read_repair: false,
    });

    let first = testkit::check(&scenario).unwrap_or_else(|failure| panic!("{failure}"));
    let replicated = first.replicated.as_ref().expect("replicated path ran");

    // All three fault kinds actually fired during convergence.
    let transport = replicated.converge.transport;
    assert!(transport.partitioned > 0, "partition fired: {transport:?}");
    assert!(transport.dropped > 0, "drops fired: {transport:?}");
    assert!(transport.duplicated > 0, "duplicates fired: {transport:?}");

    // Concurrent publications existed (replica 0's stored v1 + the cold
    // replicas' own v1 stamps) and the drift re-publication superseded
    // them all: the converged winner is v2 from replica 0.
    let v1_publishers: Vec<u32> = replicated
        .published
        .iter()
        .filter(|(app, stamp)| *app == bench.name && stamp.version == 1)
        .map(|(_, stamp)| stamp.publisher)
        .collect();
    assert!(
        v1_publishers.len() >= 2,
        "concurrent v1 publications: {v1_publishers:?}"
    );
    let winner = Stamp {
        version: 2,
        publisher: 0,
    };
    assert!(
        replicated.published.contains(&(bench.name.clone(), winner)),
        "the drift re-publication happened: {:?}",
        replicated.published
    );
    for (replica, map) in replicated.model_maps.iter().enumerate() {
        assert_eq!(
            map.get(&bench.name).map(|digest| digest.stamp),
            Some(winner),
            "replica {replica} holds the re-published winner"
        );
    }

    // Bit-identical across re-runs: within one ScenarioRun (the runner
    // executes twice and compares)…
    assert!(replicated.reruns_match);
    // …and across fully independent executions of the whole scenario.
    let second = testkit::run_scenario(&scenario).expect("re-run succeeds");
    let again = second.replicated.expect("replicated path ran again");
    assert_eq!(again.model_maps, replicated.model_maps);
    assert_eq!(again.published, replicated.published);
    assert_eq!(again.converge, replicated.converge);
    assert_eq!(again.session_states, replicated.session_states);
}

/// Acceptance — the shrinker minimises a failing replicated scenario to
/// a one-line `testkit::replay` repro, stripping every net knob that
/// does not contribute to the failure.
#[test]
fn shrinker_reduces_replicated_scenario_to_replay_line() {
    // The planted "invariant": no replicated execution may converge a
    // non-empty model map. Any publishing workload violates it, so the
    // scenario fails for as long as one calibrating job and the net plan
    // survive — everything else is ballast.
    let generator = ScenarioGenerator::new(GeneratorConfig {
        jobs: 6,
        nodes: 2,
        workloads: 2,
        stored_fraction: 0.0,
        capability_gap_fraction: 0.0,
        fault_fraction: 0.2,
        replicas: 4,
        ..GeneratorConfig::default()
    });
    let scenario = generator.generate(0xFA11);

    let fails = |s: &Scenario| -> Option<String> {
        let run = testkit::run_scenario(s).ok()?;
        run.replicated
            .is_some_and(|r| !r.model_maps[0].is_empty())
            .then(|| "replicated-publication".to_string())
    };

    let shrunk = testkit::shrink(&scenario, &fails).expect("the scenario fails the invariant");
    assert_eq!(shrunk.violation, "replicated-publication");
    assert!(
        shrunk.scenario.jobs.len() <= 2,
        "shrunk to {} jobs after {} attempts",
        shrunk.scenario.jobs.len(),
        shrunk.attempts
    );
    let net = shrunk
        .scenario
        .net
        .as_ref()
        .expect("the plan is load-bearing");
    assert_eq!(net.replicas, 2, "replica count collapsed to the minimum");
    assert_eq!(net.drop_permille, 0);
    assert_eq!(net.duplicate_permille, 0);
    assert_eq!(net.delay_jitter_ticks, 0);
    assert!(net.partitions.is_empty());
    assert_eq!(shrunk.scenario.fleet.nodes.len(), 1);
    assert_eq!(shrunk.scenario.workers, 1);

    // The one-line repro parses back to the minimal scenario and still
    // fails the same way.
    let line = shrunk.replay_line();
    let reparsed = Scenario::from_replay(&line).expect("replay line parses");
    assert_eq!(reparsed, shrunk.scenario);
    assert_eq!(fails(&reparsed).as_deref(), Some("replicated-publication"));
}
